#!/bin/bash
# Regenerate every table and figure of the paper (full grids).
# Datasets are cached under results/cache after first generation.
set -u
cd "$(dirname "$0")"
BIN=target/release
mkdir -p results
for exp in table1 table2 table3 fig2 fig4 fig7 fig8 fig5 fig6 table4 training_time extended_collectives ablation; do
  echo "=== $exp ==="
  start=$SECONDS
  $BIN/$exp > results/$exp.txt 2> results/$exp.log
  rc=$?
  echo "[$exp took $((SECONDS-start))s]"
  tail -3 results/$exp.log
  [ $rc -ne 0 ] && echo "!!! $exp FAILED rc=$rc"
done
echo ALL_EXPERIMENTS_DONE
