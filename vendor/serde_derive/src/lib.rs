//! Offline shim for `serde_derive`: the derives are accepted and emit
//! nothing. The sibling `serde` shim blanket-implements the marker
//! traits, so derived types still satisfy `T: Serialize` bounds.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
