//! Offline shim for `rand` (0.10-flavoured subset).
//!
//! Provides `rngs::StdRng`, [`SeedableRng`], and [`RngExt`] with
//! `random_range` over integer ranges — the surface used by the
//! random-forest learner. `StdRng` here is xoshiro256++ seeded through
//! SplitMix64: fast, well-distributed, and deterministic per seed
//! (sequences differ from upstream `rand`, which is fine — all in-repo
//! uses treat the stream as an arbitrary fixed-seed source).

use std::ops::{Range, RangeInclusive};

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core RNG interface: 64 random bits per call.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types usable as the argument of [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value in the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform draw from an integer range (`lo..hi` or `lo..=hi`).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Uniform draw from `[0, 1)`.
    fn random_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                self.start + (bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in random_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (bounded(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range!(usize, u64, u32, i64, i32);

/// Debiased bounded draw in `[0, span)` (Lemire-style rejection).
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

pub mod rngs {
    //! Concrete RNGs.
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the shim's stand-in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro paper.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000usize), b.random_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..4usize)] = true;
            let v = rng.random_range(0..=3usize);
            assert!(v <= 3);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.random_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
