//! Offline shim for `criterion` — enough of the API to keep the bench
//! targets compiling and producing useful numbers without crates.io.
//!
//! Supported surface: `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `sample_size`, `throughput`,
//! `bench_function` (with `&str` or [`BenchmarkId`]), `Bencher::iter`,
//! and the `--test` CLI smoke mode (each benchmark body runs once) that
//! CI uses. Measurements are wall-clock medians over `sample_size`
//! samples, each sample auto-scaled to at least ~5 ms of work; results
//! print to stdout as `group/name  median  mean  (throughput)`.

use std::fmt;
use std::time::{Duration, Instant};

/// How work per iteration is counted for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterized benchmark name.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Conversion into a benchmark name.
pub trait IntoBenchmarkId {
    /// The final display name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    /// Median/mean nanos per iteration, filled by `iter`.
    result: Option<(f64, f64)>,
}

impl Bencher {
    /// Measure a closure. In `--test` mode it runs exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            self.result = Some((0.0, 0.0));
            return;
        }
        // Calibrate: how many iterations reach ~5 ms per sample?
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 4).max(2);
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                t0.elapsed().as_secs_f64() * 1e9 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        self.result = Some((median, mean));
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Attach throughput accounting to subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Define and immediately run one benchmark.
    pub fn bench_function<ID: IntoBenchmarkId, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            samples: self.sample_size,
            result: None,
        };
        f(&mut b);
        match b.result {
            None => println!("{full:<50} (no measurement: closure never called iter)"),
            Some(_) if self.criterion.test_mode => println!("{full:<50} ok (test mode)"),
            Some((median, mean)) => {
                let thr = match self.throughput {
                    Some(Throughput::Elements(n)) if median > 0.0 => {
                        format!("  {:>12.0} elem/s", n as f64 * 1e9 / median)
                    }
                    Some(Throughput::Bytes(n)) if median > 0.0 => {
                        format!("  {:>12.0} B/s", n as f64 * 1e9 / median)
                    }
                    _ => String::new(),
                };
                println!(
                    "{full:<50} median {:>12}  mean {:>12}{thr}",
                    fmt_nanos(median),
                    fmt_nanos(mean)
                );
            }
        }
        self
    }

    /// End the group (prints nothing; parity with criterion's API).
    pub fn finish(&mut self) {}
}

fn fmt_nanos(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Benchmark driver.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::from_args()
    }
}

impl Criterion {
    /// Build from CLI arguments (`cargo bench` passes `--bench`; `--test`
    /// selects smoke mode; a bare positional filters benchmark names).
    pub fn from_args() -> Criterion {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                s if s.starts_with("--") => {} // ignore unknown flags
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Ungrouped benchmark.
    pub fn bench_function<ID: IntoBenchmarkId, F>(&mut self, id: ID, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_id();
        self.benchmark_group(name.clone()).bench_function("single", f);
        self
    }
}

/// Re-export matching upstream: `criterion::black_box`.
pub use std::hint::black_box;

/// Group benchmark functions under one runner fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::from_args();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_shapes_compile_and_run() {
        let mut c = Criterion { test_mode: true, filter: None };
        let mut g = c.benchmark_group("g");
        g.sample_size(3).throughput(Throughput::Elements(10));
        let mut ran = 0;
        g.bench_function("a", |b| b.iter(|| 1 + 1));
        g.bench_function(BenchmarkId::from_parameter("p"), |b| {
            b.iter(|| {
                // count side effects through a captured var
                ran += 1;
            })
        });
        g.finish();
        assert_eq!(ran, 1, "test mode runs the body exactly once");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { test_mode: true, filter: Some("match_me".into()) };
        let mut g = c.benchmark_group("g");
        let mut ran = false;
        g.bench_function("other", |b| {
            ran = true;
            b.iter(|| ());
        });
        assert!(!ran);
        g.bench_function("match_me_exactly", |b| {
            ran = true;
            b.iter(|| ());
        });
        assert!(ran);
    }
}
