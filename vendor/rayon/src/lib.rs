//! Offline shim for `rayon` — the indexed-parallel-iterator subset this
//! repository uses, with genuine parallelism.
//!
//! The model: every parallel iterator is an *indexed source* (`len` +
//! `get(i)`); adaptors (`map`, `enumerate`) compose over it; a terminal
//! operation (`collect`, `for_each`, `sum`) splits the index space into
//! one contiguous chunk per worker and evaluates chunks on scoped
//! `std::thread`s. There is no work-stealing pool — chunks are static —
//! which is a fine trade for the coarse-grained units in this repo
//! (model fits, grid cells, batched predictions). Small inputs run
//! inline to avoid spawn overhead.

use std::sync::OnceLock;

/// Number of worker threads (`available_parallelism`, cached).
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

/// Run two closures, the first on a spawned scoped thread.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let ha = s.spawn(a);
        let rb = b();
        (ha.join().expect("rayon::join worker panicked"), rb)
    })
}

/// Minimum per-call work below which terminals run sequentially.
const SEQ_CUTOFF: usize = 2;

/// An indexed parallel source: `get(i)` for `i < len()`, callable from
/// any thread.
pub trait ParallelIterator: Sized + Sync {
    /// Element type produced.
    type Item: Send;

    /// Number of elements.
    fn len(&self) -> usize;

    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produce element `i`.
    fn get(&self, i: usize) -> Self::Item;

    /// Transform every element.
    fn map<F, U>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> U + Sync,
        U: Send,
    {
        Map { base: self, f }
    }

    /// Pair every element with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Evaluate all elements in parallel into a collection.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Evaluate `f` on every element in parallel, discarding results.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        drive_chunks(&self, |start, end| {
            for i in start..end {
                f(self.get(i));
            }
        });
    }

    /// Parallel sum.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let parts = drive_collect_parts(&self, |start, end| {
            (start..end).map(|i| self.get(i)).sum::<S>()
        });
        parts.into_iter().sum()
    }
}

/// `map` adaptor.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, U> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> U + Sync,
    U: Send,
{
    type Item = U;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn get(&self, i: usize) -> U {
        (self.f)(self.base.get(i))
    }
}

/// `enumerate` adaptor.
pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    fn len(&self) -> usize {
        self.base.len()
    }
    fn get(&self, i: usize) -> (usize, I::Item) {
        (i, self.base.get(i))
    }
}

/// Split `0..it.len()` into one chunk per worker and run `body` on each.
fn drive_chunks<I, B>(it: &I, body: B)
where
    I: ParallelIterator,
    B: Fn(usize, usize) + Sync,
{
    let n = it.len();
    let workers = current_num_threads().min(n.max(1));
    if workers <= 1 || n < SEQ_CUTOFF {
        body(0, n);
        return;
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|s| {
        for t in 1..workers {
            let body = &body;
            let (start, end) = (t * chunk, ((t + 1) * chunk).min(n));
            if start < end {
                s.spawn(move || body(start, end));
            }
        }
        body(0, chunk.min(n));
    });
}

/// Like [`drive_chunks`] but each chunk returns a value; parts come back
/// in chunk order.
fn drive_collect_parts<I, B, R>(it: &I, body: B) -> Vec<R>
where
    I: ParallelIterator,
    B: Fn(usize, usize) -> R + Sync,
    R: Send,
{
    let n = it.len();
    let workers = current_num_threads().min(n.max(1));
    if workers <= 1 || n < SEQ_CUTOFF {
        return vec![body(0, n)];
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 1..workers {
            let body = &body;
            let (start, end) = (t * chunk, ((t + 1) * chunk).min(n));
            if start < end {
                handles.push(s.spawn(move || body(start, end)));
            }
        }
        let first = body(0, chunk.min(n));
        let mut out = vec![first];
        for h in handles {
            out.push(h.join().expect("rayon worker panicked"));
        }
        out
    })
}

/// Collections buildable from a parallel iterator.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build from the fully evaluated source.
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Vec<T> {
        let parts = drive_collect_parts(&it, |start, end| {
            (start..end).map(|i| it.get(i)).collect::<Vec<T>>()
        });
        let mut out = Vec::with_capacity(it.len());
        for p in parts {
            out.extend(p);
        }
        out
    }
}

/// Conversion into an owned parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over `Range<usize>`.
pub struct RangePar {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangePar {
    type Item = usize;
    fn len(&self) -> usize {
        self.len
    }
    fn get(&self, i: usize) -> usize {
        self.start + i
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = RangePar;
    fn into_par_iter(self) -> RangePar {
        RangePar { start: self.start, len: self.end.saturating_sub(self.start) }
    }
}

/// Parallel iterator borrowing a slice.
pub struct SlicePar<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SlicePar<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.items.len()
    }
    fn get(&self, i: usize) -> &'a T {
        &self.items[i]
    }
}

/// `.par_iter()` on slice-like containers.
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a reference).
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SlicePar<'a, T>;
    fn par_iter(&'a self) -> SlicePar<'a, T> {
        SlicePar { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SlicePar<'a, T>;
    fn par_iter(&'a self) -> SlicePar<'a, T> {
        SlicePar { items: self }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_enumerate_collect_matches_sequential() {
        let xs: Vec<u64> = (0..10_000).collect();
        let par: Vec<(usize, u64)> = xs.par_iter().map(|&x| x * 2).enumerate().collect();
        for (i, (j, v)) in par.iter().enumerate() {
            assert_eq!(i, *j);
            assert_eq!(*v, xs[i] * 2);
        }
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        assert_eq!(squares[31], 961);
    }

    #[test]
    fn sum_and_for_each() {
        let total: u64 = (0..1000usize).into_par_iter().map(|i| i as u64).sum();
        assert_eq!(total, 499_500);
        let flags: Vec<std::sync::atomic::AtomicBool> =
            (0..64).map(|_| std::sync::atomic::AtomicBool::new(false)).collect();
        (0..64usize).into_par_iter().for_each(|i| {
            flags[i].store(true, std::sync::atomic::Ordering::Relaxed);
        });
        assert!(flags.iter().all(|f| f.load(std::sync::atomic::Ordering::Relaxed)));
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<i32> = Vec::new();
        let out: Vec<i32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let out2: Vec<usize> = (5..5).into_par_iter().collect();
        assert!(out2.is_empty());
    }
}
