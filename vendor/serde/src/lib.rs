//! Offline shim for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names (as blanket-implemented
//! marker traits) and re-exports the no-op derive macros, so existing
//! `#[derive(Serialize, Deserialize)]` annotations compile unchanged.
//! No actual serialization happens — nothing in this repository
//! serializes through serde yet.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
