//! Offline shim for `proptest` — the strategy/runner subset this
//! repository's property tests use.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! deterministic `(test, case)` seed instead of a minimized input), and
//! generation is uniform rather than bias-weighted. Each test function
//! derives its RNG stream from a hash of its name, so runs are fully
//! deterministic and independent of execution order.

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};

/// RNG handed to strategies.
pub type TestRng = StdRng;

/// Failure raised by `prop_assert*` or test bodies.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Construct a failure with a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError { message: message.into() }
    }

    /// Reject the current case (treated as failure here: the shim has
    /// no rejection budget, and in-repo tests never reject).
    pub fn reject(message: impl Into<String>) -> TestCaseError {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Case count after the `PROPTEST_CASES` environment override (used by
/// the Miri CI job to scale interpreted runs down without forking the
/// test code). Unset, empty, or unparsable values fall back to the
/// test's own configuration.
pub fn effective_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.trim().parse().unwrap_or(configured),
        Err(_) => configured,
    }
}

/// Deterministic per-test, per-case RNG.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// A value generator.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<F, U>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        MapStrategy { base: self, f }
    }

    /// Retry generation until `pred` holds (bounded; panics if the
    /// predicate looks unsatisfiable).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> FilterStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        FilterStrategy { base: self, pred, reason }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// `prop_map` adaptor.
pub struct MapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S: Clone, F: Clone> Clone for MapStrategy<S, F> {
    fn clone(&self) -> Self {
        MapStrategy { base: self.base.clone(), f: self.f.clone() }
    }
}

impl<S, F, U> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// `prop_filter` adaptor.
pub struct FilterStrategy<S, F> {
    base: S,
    pred: F,
    reason: &'static str,
}

impl<S, F> Strategy for FilterStrategy<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.base.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter never satisfied: {}", self.reason);
    }
}

/// Constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from type-erased arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

// --- Primitive strategies -------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(usize, u64, u32, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = rng.random_f64();
        self.start + u * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range");
        let u = rng.random_f64() as f32;
        self.start + u * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// Canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range strategy for a primitive.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}
arbitrary_uint!(u64, u32, u16, u8, usize, i64, i32);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    //! Collection strategies.
    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy { element: self.element.clone(), len: self.len.clone() }
        }
    }

    /// Length specifications accepted by [`vec`] (upstream `SizeRange`).
    pub trait IntoSizeRange {
        /// Convert to a half-open length range.
        fn into_size_range(self) -> Range<usize>;
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> Range<usize> {
            self
        }
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn into_size_range(self) -> Range<usize> {
            *self.start()..*self.end() + 1
        }
    }

    /// Vector of values from `element`, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy { element, len: len.into_size_range() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Uniform choice from a fixed list.
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Uniformly select one of `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.random_range(0..self.options.len())].clone()
        }
    }
}

pub mod strategy {
    //! Re-exports mirroring upstream's module layout.
    pub use super::{BoxedStrategy, Just, Strategy, Union};
}

pub mod test_runner {
    //! Re-exports mirroring upstream's module layout.
    pub use super::{ProptestConfig, TestCaseError};
}

pub mod prelude {
    //! Everything a property-test file needs.
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    pub mod prop {
        //! `prop::...` paths (`collection`, `sample`).
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

// --- Macros ---------------------------------------------------------------

/// Uniform choice over heterogeneous strategy expressions.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert inside a property body (early-returns a `TestCaseError`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}: {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            )));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "{} == {} failed: {:?} vs {:?}", stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "{} == {} failed: {:?} vs {:?}: {}",
            stringify!($a), stringify!($b), a, b, format!($($fmt)+)
        );
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "{} != {} failed: both {:?}", stringify!($a), stringify!($b), a
        );
    }};
}

/// Assumption: the shim treats a failed assumption as a silently passed
/// case (no rejection budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `#[test] fn name(args in
/// strategies) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Internal: expand each test fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let cases = $crate::effective_cases(config.cases);
            for case in 0..cases {
                let mut rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{} (deterministic seed: name+case): {}",
                        stringify!($name), case, cases, e
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in -5.0f64..5.0, n in 1usize..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5.0..5.0).contains(&y));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn vec_and_select_and_oneof(
            v in prop::collection::vec(0u32..100, 2..9),
            s in prop::sample::select(vec![10u64, 20, 30]),
            o in prop_oneof![Just(1i32), 5i32..8, (0i32..2).prop_map(|z| z + 100)],
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&e| e < 100));
            prop_assert!([10, 20, 30].contains(&s));
            prop_assert!(o == 1 || (5..8).contains(&o) || (100..102).contains(&o));
        }

        #[test]
        fn any_generates(seed in any::<u64>(), flag in any::<bool>()) {
            // Smoke: both compile and vary; determinism checked below.
            let _ = (seed, flag);
            prop_assert!(true);
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use crate::Strategy;
        let s = 0.0f64..1.0;
        let a = s.generate(&mut crate::case_rng("t", 7));
        let b = s.generate(&mut crate::case_rng("t", 7));
        let c = s.generate(&mut crate::case_rng("t", 8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failures_panic_with_context() {
        // No #[test] attribute on the inner fn: it is invoked manually.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
