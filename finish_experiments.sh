#!/bin/bash
# Final experiment pass. Full grids for the budget-accounting check (d4
# regenerates in ~3 min); the extension/ablation experiments run at
# whatever scale the remaining session budget allows (MPCP_FAST=1 for
# smoke scale — rerun without it for full grids).
set -u
cd "$(dirname "$0")"
BIN=target/release
run() {
  local name=$1; shift
  echo "=== $name ==="
  "$@" > results/$name.txt 2> results/$name.log
  echo "rc=$?"
}
run training_time env MPCP_DATASETS=${TT_DATASETS:-d4} $BIN/training_time
run extended_collectives env ${EXT_FAST:+MPCP_FAST=1} $BIN/extended_collectives
run ablation env ${EXT_FAST:+MPCP_FAST=1} $BIN/ablation
echo FINISH_DONE
