//! Quickstart: simulate MPI collectives, benchmark a small grid, train a
//! runtime-regression selector, and ask it for the best broadcast
//! algorithm on an unseen node count.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mpcp_benchmark::{BenchConfig, DatasetSpec, LibKind};
use mpcp_collectives::{AlgKind, Collective};
use mpcp_core::{splits, Instance, Selector};
use mpcp_ml::Learner;
use mpcp_simnet::{Machine, Simulator, Topology};

fn main() {
    // --- 1. Simulate a single collective by hand. -----------------------
    let machine = Machine::hydra();
    let topo = Topology::new(8, 16); // 8 nodes x 16 ppn = 128 ranks
    let msize = 1 << 20; // 1 MiB broadcast
    let sim = Simulator::new(&machine.model, &topo);

    for kind in [
        AlgKind::BcastLinear,
        AlgKind::BcastBinomial { seg: 0 },
        AlgKind::BcastChain { chains: 4, seg: 64 << 10 },
    ] {
        let programs = kind.build(&topo, msize);
        let result = sim.run(&programs).expect("schedule deadlocked?");
        println!(
            "{:<32} {:>10.1} us   ({} messages, {:.1} MiB over the fabric)",
            format!("{}({})", kind.family(), kind.param_string()),
            result.makespan().as_micros_f64(),
            result.messages,
            result.bytes_inter as f64 / (1 << 20) as f64
        );
    }

    // --- 2. Benchmark a small grid and train a selector. ----------------
    let spec = DatasetSpec {
        id: "quickstart",
        coll: Collective::Bcast,
        lib: LibKind::OpenMpi,
        machine: Machine::hydra(),
        nodes: vec![2, 4, 6, 8],
        ppn: vec![1, 8, 16],
        msizes: vec![16, 1 << 10, 16 << 10, 256 << 10, 1 << 20],
        seed: 1,
    };
    let library = spec.library(None);
    println!(
        "\nbenchmarking {} cells ({} bcast configurations) ...",
        spec.sample_count(&library),
        library.configs(spec.coll).len()
    );
    let data = spec.generate(&library, &BenchConfig::quick());

    // Train on nodes {2, 4, 8}; node 6 stays unseen.
    let train = splits::filter_records(&data.records, &[2, 4, 8]);
    let selector = Selector::train(&Learner::gam(), &train, library.configs(spec.coll))
        .expect("selector training failed: no configuration could be trained");

    // --- 3. Query for an unseen allocation. ------------------------------
    let configs = library.configs(spec.coll);
    println!("\npredictions for the unseen allocation 6 nodes x 16 ppn:");
    for m in [16u64, 16 << 10, 1 << 20] {
        let inst = Instance::new(Collective::Bcast, m, 6, 16);
        let (uid, pred_us) = selector.select(&inst);
        let default_uid = library.default_choice(Collective::Bcast, m, &Topology::new(6, 16));
        println!(
            "  m = {:>8} B:  predicted {} (~{:.1} us)   [library default would be {}]",
            m,
            configs[uid as usize].label(),
            pred_us,
            configs[default_uid].label()
        );
    }
}
