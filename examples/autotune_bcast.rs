//! Autotuning workflow (the paper's Section II deployment story):
//! benchmark once per machine, then — when a SLURM allocation is known —
//! query the models for a handful of message sizes and emit a tuning
//! file that overrides the MPI library's algorithm selection.
//!
//! ```sh
//! cargo run --release --example autotune_bcast
//! ```

use mpcp_benchmark::{BenchConfig, DatasetSpec, LibKind};
use mpcp_collectives::Collective;
use mpcp_core::tuning_file::{default_query_sizes, TuningFile};
use mpcp_core::{splits, Selector};
use mpcp_ml::Learner;
use mpcp_simnet::Machine;

fn main() {
    // Offline phase: benchmark the machine (here: a reduced grid so the
    // example runs in seconds).
    let spec = DatasetSpec {
        id: "autotune",
        coll: Collective::Bcast,
        lib: LibKind::OpenMpi,
        machine: Machine::hydra(),
        nodes: vec![4, 8, 16, 24],
        ppn: vec![1, 8, 16, 32],
        msizes: vec![16, 256, 4 << 10, 64 << 10, 512 << 10, 2 << 20],
        seed: 7,
    };
    let library = spec.library(None);
    println!("offline benchmarking: {} cells ...", spec.sample_count(&library));
    let data = spec.generate(&library, &BenchConfig::quick());

    let train = splits::filter_records(&data.records, &spec.nodes);
    let selector = Selector::train(&Learner::xgboost(), &train, library.configs(spec.coll))
        .expect("selector training failed: no configuration could be trained");

    // Online phase: SLURM hands us 12 nodes x 16 ppn (never benchmarked).
    let (nodes, ppn) = (12u32, 16u32);
    let t0 = std::time::Instant::now();
    let tf = TuningFile::generate(
        &selector,
        library.configs(spec.coll),
        Collective::Bcast,
        nodes,
        ppn,
        &default_query_sizes(),
    );
    let query_time = t0.elapsed();
    println!(
        "\ngenerated tuning file for {nodes} x {ppn} in {:.1} ms ({} queries):\n",
        query_time.as_secs_f64() * 1e3,
        default_query_sizes().len()
    );
    print!("{}", tf.render());

    let path = std::env::temp_dir().join("mpcp_bcast.tune");
    tf.write(&path).expect("write tuning file");
    println!("\nwritten to {}", path.display());
}
