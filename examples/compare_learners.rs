//! Learner comparison — including the baselines the paper *rejected*
//! (random forest from the authors' earlier PMBS'18 work, and linear
//! regression): cross-validated prediction error and end-to-end
//! selection quality on one dataset.
//!
//! ```sh
//! cargo run --release --example compare_learners
//! ```

use mpcp_benchmark::{BenchConfig, DatasetSpec, LibKind};
use mpcp_collectives::Collective;
use mpcp_core::{evaluate, mean_speedup, splits, Selector};
use mpcp_ml::cv::cv_mape;
use mpcp_ml::{Dataset, Learner};
use mpcp_simnet::Machine;

fn main() {
    let spec = DatasetSpec {
        id: "compare",
        coll: Collective::Allreduce,
        lib: LibKind::OpenMpi,
        machine: Machine::jupiter(),
        nodes: vec![4, 6, 8, 12, 16, 20],
        ppn: vec![1, 4, 8, 16],
        msizes: vec![16, 1 << 10, 16 << 10, 128 << 10, 1 << 20],
        seed: 99,
    };
    let library = spec.library(None);
    println!("benchmarking {} cells ...", spec.sample_count(&library));
    let data = spec.generate(&library, &BenchConfig::quick());

    let train = splits::filter_records(&data.records, &[4, 8, 16, 20]);
    let test = splits::filter_records(&data.records, &[6, 12]);

    // Per-configuration regression quality (5-fold CV on one config's
    // records), plus end-to-end selection quality.
    let probe_uid = 2; // recursive doubling
    let mut probe = Dataset::new(4);
    for r in train.iter().filter(|r| r.uid == probe_uid) {
        probe.push(
            &[
                ((r.msize + 1) as f64).log2(),
                r.nodes as f64,
                r.ppn as f64,
                (r.nodes * r.ppn) as f64,
            ],
            (r.runtime * 1e6).max(1e-3),
        );
    }

    println!(
        "\n{:<14} {:>12} {:>14} {:>16}",
        "learner", "cv MAPE", "mean speedup", "norm. runtime"
    );
    for learner in [
        Learner::knn(),
        Learner::gam(),
        Learner::xgboost(),
        Learner::forest(),
        Learner::linear(),
    ] {
        let err = cv_mape(&probe, &learner, 5);
        let selector = Selector::train(&learner, &train, library.configs(spec.coll))
            .expect("selector training failed: no configuration could be trained");
        let evals = evaluate(&selector, &test, &library, spec.coll);
        let speedup = mean_speedup(&evals);
        let norm: f64 =
            evals.iter().map(|e| e.normalized_predicted()).sum::<f64>() / evals.len() as f64;
        println!(
            "{:<14} {:>11.1}% {:>14.2} {:>16.2}",
            learner.name(),
            err * 100.0,
            speedup,
            norm
        );
    }
    println!("\n(The paper keeps KNN/GAM/XGBoost and rejects forests and linear");
    println!(" models; 'norm. runtime' is relative to the exhaustive best = 1.0.)");
}
