//! Process-skew sensitivity: MPI benchmarks synchronize process starts
//! (ReproMPI's time-window scheme) precisely because collective runtimes
//! are skew-sensitive — and different algorithms absorb skew differently.
//! This example injects controlled start-time skew into the simulator and
//! compares how broadcast algorithms degrade.
//!
//! ```sh
//! cargo run --release --example skew_sensitivity
//! ```

use mpcp_benchmark::noise::SplitMix64;
use mpcp_collectives::AlgKind;
use mpcp_simnet::{Machine, SimTime, Simulator, Topology};

fn main() {
    let machine = Machine::hydra();
    let topo = Topology::new(8, 8);
    let sim = Simulator::new(&machine.model, &topo);
    let m = 256 << 10;
    let kinds = [
        AlgKind::BcastLinear,
        AlgKind::BcastBinomial { seg: 16 << 10 },
        AlgKind::BcastChain { chains: 4, seg: 16 << 10 },
        AlgKind::BcastScatterAllgatherRing,
    ];

    println!(
        "median broadcast runtime (us) of {} bytes on {}x{} under random start skew",
        m,
        topo.nodes(),
        topo.ppn()
    );
    print!("{:<34}", "algorithm \\ max skew");
    let skews_us = [0.0f64, 5.0, 20.0, 100.0];
    for s in skews_us {
        print!("{:>10}", format!("{s} us"));
    }
    println!();

    for kind in kinds {
        let progs = kind.build(&topo, m);
        print!("{:<34}", format!("{}({})", kind.family(), kind.param_string()));
        for max_skew in skews_us {
            // Median over a few random skew vectors (deterministic seed).
            let mut rng = SplitMix64::new(42);
            let mut times: Vec<f64> = (0..9)
                .map(|_| {
                    let starts: Vec<SimTime> = (0..topo.size())
                        .map(|_| SimTime::from_micros_f64(rng.next_f64() * max_skew))
                        .collect();
                    sim.run_with_skew(&progs, &starts).unwrap().makespan().as_micros_f64()
                })
                .collect();
            times.sort_by(|a, b| a.partial_cmp(b).unwrap());
            print!("{:>10.1}", times[times.len() / 2]);
        }
        println!();
    }
    println!("\n(The skew-tolerance differences are why ReproMPI uses window-based");
    println!(" process synchronization between repetitions; see mpcp-benchmark.)");
}
