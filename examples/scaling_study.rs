//! Scaling study: how the *predicted best algorithm* changes with node
//! count and message size — the crossover structure that makes static
//! defaults lose. Also shows prediction generalizing to node counts the
//! benchmark never visited (the paper's odd/even test protocol).
//!
//! ```sh
//! cargo run --release --example scaling_study
//! ```

use mpcp_benchmark::{BenchConfig, DatasetSpec, LibKind};
use mpcp_collectives::Collective;
use mpcp_core::{splits, Instance, RuntimeTable, Selector};
use mpcp_ml::Learner;
use mpcp_simnet::Machine;

fn main() {
    let all_nodes: Vec<u32> = vec![2, 3, 4, 6, 8, 10, 12, 14, 16];
    let train_nodes = [2u32, 4, 8, 12, 16];
    let test_nodes = [3u32, 6, 10, 14];

    let spec = DatasetSpec {
        id: "scaling",
        coll: Collective::Bcast,
        lib: LibKind::OpenMpi,
        machine: Machine::hydra(),
        nodes: all_nodes,
        ppn: vec![8],
        msizes: vec![16, 1 << 10, 16 << 10, 256 << 10, 4 << 20],
        seed: 5,
    };
    let library = spec.library(None);
    println!("benchmarking {} cells ...", spec.sample_count(&library));
    let data = spec.generate(&library, &BenchConfig::quick());

    let train = splits::filter_records(&data.records, &train_nodes);
    let selector = Selector::train(&Learner::gam(), &train, library.configs(spec.coll))
        .expect("selector training failed: no configuration could be trained");
    let table = RuntimeTable::new(&data.records);
    let configs = library.configs(spec.coll);

    println!("\npredicted best broadcast algorithm id (ppn = 8), * = unseen node count:\n");
    print!("{:>10}", "msize\\n");
    for &n in &spec.nodes {
        let marker = if test_nodes.contains(&n) { "*" } else { " " };
        print!("{:>7}{marker}", n);
    }
    println!();
    for &m in &spec.msizes {
        print!("{:>10}", m);
        for &n in &spec.nodes {
            let inst = Instance::new(Collective::Bcast, m, n, 8);
            let (uid, _) = selector.select(&inst);
            print!("{:>8}", configs[uid as usize].alg_id);
        }
        println!();
    }

    println!("\nprediction quality on unseen node counts:");
    for &n in &test_nodes {
        let mut worst: f64 = 1.0;
        let mut mean = 0.0;
        let mut count = 0;
        for &m in &spec.msizes {
            let inst = Instance::new(Collective::Bcast, m, n, 8);
            let Some((_, best)) = table.best(&inst) else { continue };
            let (uid, _) = selector.select(&inst);
            let t = table.runtime(&inst, uid).unwrap();
            let norm = t / best;
            worst = worst.max(norm);
            mean += norm;
            count += 1;
        }
        println!(
            "  n = {:>2}: mean normalized runtime {:.2}, worst {:.2} (1.0 = exhaustive best)",
            n,
            mean / count as f64,
            worst
        );
    }
}
