//! Experiment-harness integration: the shared pipeline helpers produce
//! coherent figure/table rows on a miniature dataset (no full paper
//! grids here — those run via the release binaries).

use mpcp_benchmark::{BenchConfig, DatasetSpec};
use mpcp_core::splits;
use mpcp_experiments::{comparison_figure, render_table, Prepared};
use mpcp_ml::Learner;

/// Build a `Prepared` around the miniature test dataset, with a split we
/// control (node 3 is the "odd unseen" test allocation).
fn tiny_prepared() -> Prepared {
    let spec = DatasetSpec::tiny_for_tests();
    let library = spec.library(None);
    let data = spec.generate(&library, &BenchConfig::quick());
    Prepared {
        spec,
        library,
        data,
        split: splits::Split {
            train_full: vec![2, 4],
            train_small: vec![2],
            test: vec![3],
        },
    }
}

#[test]
fn comparison_rows_cover_the_requested_panels() {
    let prepared = tiny_prepared();
    let rows = comparison_figure(&prepared, &Learner::knn(), &[3], &[1, 2]);
    // 2 ppn x 3 msizes.
    assert_eq!(rows.len(), 2 * prepared.spec.msizes.len());
    for r in rows {
        assert!(r.norm_default >= 1.0 - 1e-12);
        assert!(r.norm_predicted >= 1.0 - 1e-12);
        assert!(r.best_us > 0.0);
        assert_eq!(r.nodes, 3);
    }
}

#[test]
fn train_records_respect_split_size() {
    let prepared = tiny_prepared();
    let full = prepared.train_records(false);
    let small = prepared.train_records(true);
    let test = prepared.test_records();
    assert!(small.len() < full.len());
    assert!(!test.is_empty());
    // No leakage: test nodes never appear in training.
    assert!(full.iter().all(|r| r.nodes != 3));
    assert!(test.iter().all(|r| r.nodes == 3));
}

#[test]
fn evaluate_learner_is_consistent_with_manual_pipeline() {
    let prepared = tiny_prepared();
    let evals = prepared.evaluate_learner(&Learner::knn(), false);
    let manual = {
        let selector = prepared.train_selector(&Learner::knn(), false);
        mpcp_core::evaluate(
            &selector,
            &prepared.test_records(),
            &prepared.library,
            prepared.spec.coll,
        )
    };
    assert_eq!(evals.len(), manual.len());
    for (a, b) in evals.iter().zip(&manual) {
        assert_eq!(a.predicted_uid, b.predicted_uid);
        assert_eq!(a.best_uid, b.best_uid);
    }
}

#[test]
fn render_table_handles_ragged_rows() {
    let out = render_table(&["x", "y"], &[vec!["1".into()], vec!["22".into(), "3".into()]]);
    assert!(out.contains("22"));
}
