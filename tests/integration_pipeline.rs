//! End-to-end pipeline integration: simulate → benchmark → train →
//! select → evaluate, across all three paper learners, on a miniature
//! dataset (kept small so the suite runs quickly in debug builds).

use mpcp_benchmark::{BenchConfig, DatasetSpec};
use mpcp_core::{evaluate, mean_speedup, splits, Instance, Selector};
use mpcp_ml::Learner;

#[test]
fn full_pipeline_runs_for_all_paper_learners() {
    let spec = DatasetSpec::tiny_for_tests();
    let library = spec.library(None);
    let data = spec.generate(&library, &BenchConfig::quick());
    assert_eq!(data.records.len(), spec.sample_count(&library));

    let train = splits::filter_records(&data.records, &[2, 4]);
    let test = splits::filter_records(&data.records, &[3]);
    assert!(!train.is_empty() && !test.is_empty());

    for (name, learner) in Learner::paper_learners() {
        let selector = Selector::train(&learner, &train, library.configs(spec.coll)).unwrap();
        let evals = evaluate(&selector, &test, &library, spec.coll);
        assert!(!evals.is_empty(), "{name}: no evaluations");
        for e in &evals {
            // Exhaustive best is a lower bound for both strategies.
            assert!(e.best <= e.default + 1e-15, "{name}: {e:?}");
            assert!(e.best <= e.predicted + 1e-15, "{name}: {e:?}");
            assert!(e.speedup().is_finite());
        }
        let s = mean_speedup(&evals);
        // On a tiny grid the selector must at least be in the same league
        // as the default heuristic.
        assert!(s > 0.4, "{name}: mean speedup {s}");
    }
}

#[test]
fn selector_generalizes_across_node_counts() {
    // Train including the largest/smallest nodes, query strictly inside.
    let spec = DatasetSpec::tiny_for_tests();
    let library = spec.library(None);
    let data = spec.generate(&library, &BenchConfig::quick());
    let selector = Selector::train(&Learner::knn(), &data.records, library.configs(spec.coll)).unwrap();
    for m in [16u64, 4 << 10, 256 << 10] {
        let inst = Instance::new(spec.coll, m, 3, 2);
        let (uid, pred) = selector.select(&inst);
        assert!(pred > 0.0);
        assert!((uid as usize) < library.configs(spec.coll).len());
    }
}

#[test]
fn small_and_large_training_sets_give_similar_quality() {
    // The paper's Table IV(b) point: a reduced training set is almost as
    // good as the full one.
    let spec = DatasetSpec::tiny_for_tests();
    let library = spec.library(None);
    let data = spec.generate(&library, &BenchConfig::quick());
    let test = splits::filter_records(&data.records, &[3]);

    let full = splits::filter_records(&data.records, &[2, 4]);
    let small = splits::filter_records(&data.records, &[2]);

    let s_full = {
        let sel = Selector::train(&Learner::knn(), &full, library.configs(spec.coll)).unwrap();
        mean_speedup(&evaluate(&sel, &test, &library, spec.coll))
    };
    let s_small = {
        let sel = Selector::train(&Learner::knn(), &small, library.configs(spec.coll)).unwrap();
        mean_speedup(&evaluate(&sel, &test, &library, spec.coll))
    };
    assert!(s_full.is_finite() && s_small.is_finite());
    // Within a factor 2 of each other on this miniature grid.
    assert!(s_small > 0.5 * s_full, "small {s_small} vs full {s_full}");
}
