//! End-to-end pipeline integration: simulate → benchmark → train →
//! select → evaluate, across all three paper learners, on a miniature
//! dataset (kept small so the suite runs quickly in debug builds).
//!
//! The grid is benchmarked once and every selector is trained once —
//! then saved and reloaded as a binary artifact — by the shared
//! [`fixture`] module; each test consumes the cached artifact.

mod fixture;

use mpcp_core::{evaluate, mean_speedup, splits, Instance};
use mpcp_ml::Learner;

#[test]
fn full_pipeline_runs_for_all_paper_learners() {
    let spec = fixture::spec();
    let library = fixture::library();
    let data = fixture::dataset();
    assert_eq!(data.records.len(), spec.sample_count(library));

    let test = splits::filter_records(&data.records, &[3]);
    assert!(!test.is_empty());

    for (name, learner) in Learner::paper_learners() {
        let artifact = fixture::trained(&learner, &[2, 4]);
        let evals = evaluate(&artifact.selector, &test, library, spec.coll);
        assert!(!evals.is_empty(), "{name}: no evaluations");
        for e in &evals {
            // Exhaustive best is a lower bound for both strategies.
            assert!(e.best <= e.default + 1e-15, "{name}: {e:?}");
            assert!(e.best <= e.predicted + 1e-15, "{name}: {e:?}");
            assert!(e.speedup().is_finite());
        }
        let s = mean_speedup(&evals);
        // On a tiny grid the selector must at least be in the same league
        // as the default heuristic.
        assert!(s > 0.4, "{name}: mean speedup {s}");
    }
}

#[test]
fn selector_generalizes_across_node_counts() {
    // Train on every benchmarked node count, query strictly inside.
    let spec = fixture::spec();
    let library = fixture::library();
    let artifact = fixture::trained(&Learner::knn(), &[]);
    for m in [16u64, 4 << 10, 256 << 10] {
        let inst = Instance::new(spec.coll, m, 3, 2);
        let (uid, pred) = artifact.selector.select(&inst);
        assert!(pred > 0.0);
        assert!((uid as usize) < library.configs(spec.coll).len());
    }
}

#[test]
fn small_and_large_training_sets_give_similar_quality() {
    // The paper's Table IV(b) point: a reduced training set is almost as
    // good as the full one.
    let spec = fixture::spec();
    let library = fixture::library();
    let data = fixture::dataset();
    let test = splits::filter_records(&data.records, &[3]);

    let s_full = {
        let sel = fixture::trained(&Learner::knn(), &[2, 4]).selector;
        mean_speedup(&evaluate(&sel, &test, library, spec.coll))
    };
    let s_small = {
        let sel = fixture::trained(&Learner::knn(), &[2]).selector;
        mean_speedup(&evaluate(&sel, &test, library, spec.coll))
    };
    assert!(s_full.is_finite() && s_small.is_finite());
    // Within a factor 2 of each other on this miniature grid.
    assert!(s_small > 0.5 * s_full, "small {s_small} vs full {s_full}");
}
