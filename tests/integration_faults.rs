//! Fault-injected end-to-end pipeline: benchmark a grid under a
//! deterministic fault plan (so it comes out partial), train all three
//! paper learners on the surviving records, and verify that selection
//! degrades gracefully instead of panicking — with the coverage
//! accounting exact at every stage.

mod fixture;

use std::collections::HashMap;

use mpcp_benchmark::{BenchConfig, FaultPlan, RetryPolicy};
use mpcp_core::{evaluate_report, splits, Selector, TrainOptions};
use mpcp_ml::Learner;

/// Per-instance worst measured runtime among selectable configurations:
/// the bar any sane selection strategy must clear.
fn worst_per_instance(records: &[mpcp_benchmark::Record]) -> HashMap<(u32, u32, u64), f64> {
    let mut worst: HashMap<(u32, u32, u64), f64> = HashMap::new();
    for r in records.iter().filter(|r| !r.excluded) {
        let w = worst.entry((r.nodes, r.ppn, r.msize)).or_insert(r.runtime);
        *w = w.max(r.runtime);
    }
    worst
}

#[test]
fn pipeline_degrades_gracefully_at_ten_and_thirty_percent_faults() {
    let spec = fixture::spec();
    let library = fixture::library();
    let bench = BenchConfig::quick();
    let full = spec.sample_count(library);

    for fail_rate in [0.10, 0.30] {
        let plan = FaultPlan::uniform(fail_rate, 0xFA_0715);
        // No retries: every failed attempt is a lost cell, so the
        // fault-summary arithmetic below is exact by construction.
        let retry = RetryPolicy { max_retries: 0, ..RetryPolicy::default() };
        let data = spec.generate_with_faults(library, &bench, Some(&plan), &retry);

        // Coverage accounting is exact: every grid cell is attempted
        // once and lands in exactly one bucket.
        assert_eq!(data.faults.total(), full, "rate {fail_rate}");
        assert_eq!(data.faults.cells_ok, data.records.len(), "rate {fail_rate}");
        assert_eq!(
            data.faults.cells_ok + data.faults.cells_failed + data.faults.cells_timed_out
                + data.faults.sim_errors,
            full,
        );
        assert_eq!(data.faults.retries, 0);
        // The grid really is partial (P(no cell fails) is negligible at
        // these rates and grid sizes), but most of it survived.
        assert!(data.faults.cells_failed > 0, "rate {fail_rate}: nothing failed");
        assert!(
            data.faults.coverage() > 1.0 - fail_rate - 0.15,
            "rate {fail_rate}: coverage {} implausibly low",
            data.faults.coverage()
        );

        let train = splits::filter_records(&data.records, &[2, 4]);
        let test = splits::filter_records(&data.records, &[3]);
        assert!(!train.is_empty() && !test.is_empty(), "rate {fail_rate}");
        let worst = worst_per_instance(&test);

        for (name, learner) in Learner::paper_learners() {
            let (selector, trained) = Selector::train_with_report(
                &learner,
                &train,
                library.configs(spec.coll),
                &TrainOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{name} at {fail_rate}: {e}"));

            let report = evaluate_report(&selector, &test, library, spec.coll);
            // Every distinct test instance is accounted for: scored or
            // skipped, never silently dropped.
            assert_eq!(
                report.evals.len()
                    + report.skipped_no_best
                    + report.skipped_missing_default
                    + report.skipped_missing_predicted,
                report.instances,
                "{name} at {fail_rate}"
            );
            assert!(!report.evals.is_empty(), "{name} at {fail_rate}: nothing scored");
            assert_eq!(
                report.degraded_selections,
                report.evals.iter().filter(|e| e.degraded).count(),
                "{name} at {fail_rate}"
            );
            // Fallback selections happen only when some configuration
            // has no trained model.
            if trained.degraded() == 0 {
                assert_eq!(report.degraded_selections, 0, "{name} at {fail_rate}");
            }
            for e in &report.evals {
                // Selection (trained or fallback) beats the worst
                // measured configuration; exhaustive best bounds it.
                let key = (e.instance.nodes, e.instance.ppn, e.instance.msize);
                let w = worst[&key];
                assert!(
                    e.predicted <= w + 1e-15,
                    "{name} at {fail_rate}: picked {} vs worst {w} on {key:?}",
                    e.predicted
                );
                assert!(e.best <= e.predicted + 1e-15, "{name} at {fail_rate}: {e:?}");
                assert!(e.speedup().is_finite());
            }
        }
    }
}

#[test]
fn fault_injected_runs_are_seed_deterministic() {
    let spec = fixture::spec();
    let library = fixture::library();
    let bench = BenchConfig::quick();
    let plan = FaultPlan { fail_prob: 0.25, timeout_prob: 0.05, seed: 42, ..FaultPlan::none() };
    let run = || spec.generate_with_faults(library, &bench, Some(&plan), &RetryPolicy::default());
    let (a, b) = (run(), run());
    assert_eq!(a.records, b.records);
    assert_eq!(a.faults.cells_ok, b.faults.cells_ok);
    assert_eq!(a.faults.cells_failed, b.faults.cells_failed);
    assert_eq!(a.faults.cells_timed_out, b.faults.cells_timed_out);
    assert_eq!(a.faults.retries, b.faults.retries);
    assert_eq!(a.faults.retry_time, b.faults.retry_time);
}

#[test]
fn retries_strictly_improve_coverage_under_heavy_faults() {
    let spec = fixture::spec();
    let library = fixture::library();
    let bench = BenchConfig::quick();
    let plan = FaultPlan::uniform(0.30, 7);
    let none = RetryPolicy { max_retries: 0, ..RetryPolicy::default() };
    let some = RetryPolicy { max_retries: 3, ..RetryPolicy::default() };
    let flaky = spec.generate_with_faults(library, &bench, Some(&plan), &none);
    let healed = spec.generate_with_faults(library, &bench, Some(&plan), &some);
    assert!(healed.faults.retries > 0);
    assert!(
        healed.faults.cells_ok > flaky.faults.cells_ok,
        "retries did not recover any of the {} lost cells",
        flaky.faults.cells_failed
    );
}
