//! Shared train-once fixture for the integration suite.
//!
//! Several integration tests used to regenerate the tiny benchmark
//! grid and retrain identical selectors in every `#[test]` fn. This
//! module does each expensive step exactly once per test binary:
//!
//! * [`dataset`] benchmarks the tiny grid once (no faults) and hands
//!   out a `&'static` reference;
//! * [`trained`] trains a selector once per `(learner, node split)`,
//!   **saves it as a binary artifact and loads it back from disk** —
//!   so every consumer of the fixture also exercises the PR 5
//!   persistence path — then caches the artifact bytes and serves
//!   later calls via [`SelectorArtifact::from_bytes`].
//!
//! Each `[[test]]` binary compiles its own copy of this module, so the
//! caches are per-binary, not cross-process; that is exactly the
//! granularity at which the old redundancy lived.

#![allow(dead_code)] // not every test binary uses every helper

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

use mpcp_benchmark::{BenchConfig, DatasetResult, DatasetSpec};
use mpcp_collectives::MpiLibrary;
use mpcp_core::{splits, ArtifactMeta, Selector, SelectorArtifact, TrainOptions};
use mpcp_ml::Learner;

/// The canonical tiny dataset spec shared by the integration tests.
pub fn spec() -> &'static DatasetSpec {
    static SPEC: OnceLock<DatasetSpec> = OnceLock::new();
    SPEC.get_or_init(DatasetSpec::tiny_for_tests)
}

/// The library under test for [`spec`].
pub fn library() -> &'static MpiLibrary {
    static LIB: OnceLock<MpiLibrary> = OnceLock::new();
    LIB.get_or_init(|| spec().library(None))
}

/// The tiny grid, benchmarked exactly once per test binary.
pub fn dataset() -> &'static DatasetResult {
    static DATA: OnceLock<DatasetResult> = OnceLock::new();
    DATA.get_or_init(|| spec().generate(library(), &BenchConfig::quick()))
}

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mpcp_fixture_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("fixture scratch dir");
    dir
}

/// A selector trained on [`dataset`] restricted to `train_nodes`
/// (empty slice = all records), persisted through `Selector::save` /
/// `Selector::load` on first use and decoded from the cached artifact
/// bytes on every use after that.
///
/// Returns the whole [`SelectorArtifact`] so callers get the coverage
/// report and provenance manifest alongside the selector.
pub fn trained(learner: &Learner, train_nodes: &[u32]) -> SelectorArtifact {
    static CACHE: OnceLock<Mutex<HashMap<String, Vec<u8>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = format!("{}@{:?}", learner.name(), train_nodes);

    let mut map = cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let bytes = map.entry(key.clone()).or_insert_with(|| {
        let data = dataset();
        let records = if train_nodes.is_empty() {
            data.records.clone()
        } else {
            splits::filter_records(&data.records, train_nodes)
        };
        let s = spec();
        let lib = library();
        let (selector, report) = Selector::train_with_report(
            learner,
            &records,
            lib.configs(s.coll),
            &TrainOptions::default(),
        )
        .unwrap_or_else(|e| panic!("fixture: training {key} failed: {e}"));
        let meta = ArtifactMeta::capture(
            s.coll,
            &format!("{} {}", lib.name, lib.version),
            &s.machine.name,
            Some(s.seed),
            &TrainOptions::default(),
        );
        // Dogfood the on-disk path once: save, load back, keep bytes.
        let path = scratch_dir().join(format!("{}.mpcp", key.replace(['[', ']', ',', ' '], "_")));
        selector.save(&path, &report, &meta).expect("fixture: save artifact");
        Selector::load(&path).expect("fixture: reload artifact");
        let bytes = std::fs::read(&path).expect("fixture: read artifact bytes");
        std::fs::remove_file(&path).ok();
        bytes
    });
    SelectorArtifact::from_bytes(bytes).expect("fixture: cached artifact decodes")
}
