//! Library-level integration: every registered algorithm configuration
//! of both simulated MPI libraries builds, runs deadlock-free on the
//! simulator, and satisfies its collective's volume invariants; the
//! default decision logics always pick valid configurations.

mod fixture;

use mpcp_collectives::decision::TuningGrid;
use mpcp_collectives::{verify, Collective, MpiLibrary};
use mpcp_simnet::{Machine, Simulator, Topology};

#[test]
fn every_open_mpi_config_satisfies_collective_invariants() {
    let lib = fixture::library();
    let machine = Machine::hydra();
    for (nodes, ppn) in [(2u32, 2u32), (3, 2)] {
        let topo = Topology::new(nodes, ppn);
        let sim = Simulator::new(&machine.model, &topo);
        for coll in Collective::ALL {
            let m = if coll == Collective::Alltoall { 4096 } else { 65536 };
            for cfg in lib.configs(coll) {
                let progs = cfg.build(&topo, m);
                let result = sim
                    .run(&progs)
                    .unwrap_or_else(|e| panic!("{} on {nodes}x{ppn}: {e}", cfg.label()));
                verify::check(coll, &topo, m, &result)
                    .unwrap_or_else(|e| panic!("{} on {nodes}x{ppn}: {e}", cfg.label()));
            }
        }
    }
}

#[test]
fn every_intel_config_satisfies_collective_invariants() {
    let machine = Machine::jupiter();
    let lib = MpiLibrary::intel_mpi_2019(&machine, TuningGrid::tiny());
    let topo = Topology::new(3, 2);
    let sim = Simulator::new(&machine.model, &topo);
    for coll in Collective::ALL {
        let m = if coll == Collective::Alltoall { 2048 } else { 32768 };
        for cfg in lib.configs(coll) {
            let progs = cfg.build(&topo, m);
            let result = sim.run(&progs).unwrap_or_else(|e| panic!("{}: {e}", cfg.label()));
            verify::check(coll, &topo, m, &result)
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.label()));
        }
    }
}

#[test]
fn default_logics_cover_the_paper_grids() {
    // The Open MPI fixed rules must return a valid, runnable config for
    // every instance in the d1/d2-style grids.
    let lib = fixture::library();
    let machine = Machine::hydra();
    for coll in Collective::ALL {
        for &n in &[2u32, 4, 7, 13, 36] {
            for &ppn in &[1u32, 16, 32] {
                let topo = Topology::new(n, ppn);
                for &m in &[1u64, 256, 4096, 65536, 1 << 20, 4 << 20] {
                    let uid = lib.default_choice(coll, m, &topo);
                    let cfg = &lib.configs(coll)[uid];
                    assert!(!cfg.excluded);
                    // Spot-check that it actually runs on a small topo.
                    if n <= 4 && ppn <= 16 && m <= 65536 {
                        let progs = cfg.build(&topo, m);
                        Simulator::new(&machine.model, &topo)
                            .run(&progs)
                            .unwrap_or_else(|e| panic!("{}: {e}", cfg.label()));
                    }
                }
            }
        }
    }
}

#[test]
fn intel_default_is_near_optimal_on_its_tuning_grid() {
    // The vendor sweep tunes on the same machine, so on tuned grid
    // points the default must match the exhaustive best exactly
    // (noise-free simulator, same grid).
    let machine = Machine::hydra();
    let lib =
        MpiLibrary::intel_mpi_2019_for(&machine, TuningGrid::tiny(), &[Collective::Allreduce]);
    let topo = Topology::new(4, 2);
    let sim = Simulator::new(&machine.model, &topo);
    for &m in &[16u64, 16 << 10, 1 << 20] {
        let uid = lib.default_choice(Collective::Allreduce, m, &topo);
        let t_default =
            sim.run(&lib.build(Collective::Allreduce, uid, &topo, m)).unwrap().makespan();
        let t_best = lib
            .selectable(Collective::Allreduce)
            .map(|(i, _)| {
                sim.run(&lib.build(Collective::Allreduce, i, &topo, m)).unwrap().makespan()
            })
            .min()
            .unwrap();
        assert_eq!(t_default, t_best, "m={m}");
    }
}
