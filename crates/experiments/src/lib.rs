//! # mpcp-experiments — regeneration of every table and figure
//!
//! One binary per experiment (see DESIGN.md §5 for the index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table I — hardware overview |
//! | `table2` | Table II — dataset overview |
//! | `table3` | Table III — train/test splits |
//! | `fig2` | Fig. 2 — chain vs linear broadcast speed-ups |
//! | `fig4` | Fig. 4 — Bcast, Open MPI, Hydra: Best/Default/Prediction |
//! | `fig5` | Fig. 5 — predicted algorithm ids per learner |
//! | `fig6` | Fig. 6 — Allreduce, Intel MPI, Hydra |
//! | `fig7` | Fig. 7 — Allreduce, Open MPI, Jupiter |
//! | `fig8` | Fig. 8 — Bcast, Open MPI, SuperMUC-NG |
//! | `table4` | Table IV — mean speed-up over the default |
//! | `training_time` | §V text — benchmark-budget accounting |
//!
//! Binaries print the paper's rows/series and write CSVs under
//! `results/`. `MPCP_FAST=1` shrinks grids for smoke runs.
//!
//! This library crate holds the shared pipeline: dataset generation with
//! caching, selector training for the three learners, per-instance
//! comparison rows, and plain-text table rendering.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};

use mpcp_benchmark::{BenchConfig, DatasetResult, DatasetSpec, Record};
use mpcp_collectives::MpiLibrary;
use mpcp_core::{evaluate, splits, InstanceEval, Selector};
use mpcp_ml::Learner;

/// Stamp the provenance header every experiment binary prints first:
/// git SHA (+dirty), the binary/config it ran as, optional seed, and
/// wall time — so any `results/` artifact can be traced to the exact
/// tree that produced it.
pub fn print_provenance(config: &str, seed: Option<u64>) {
    let config = if std::env::var("MPCP_FAST").is_ok() {
        format!("{config} MPCP_FAST=1")
    } else {
        config.to_string()
    };
    println!("{}", mpcp_obs::provenance::Provenance::capture(&config, seed).header());
}

/// Where experiment outputs land (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("MPCP_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let p = PathBuf::from(dir);
    std::fs::create_dir_all(&p).expect("cannot create results dir");
    p
}

/// Dataset cache directory.
pub fn cache_dir() -> PathBuf {
    let p = results_dir().join("cache");
    std::fs::create_dir_all(&p).expect("cannot create cache dir");
    p
}

/// Whether fast (smoke-test) mode is requested via `MPCP_FAST=1`.
pub fn fast_mode() -> bool {
    std::env::var("MPCP_FAST").map(|v| v == "1").unwrap_or(false)
}

/// Shrink a dataset spec for smoke runs: half the node list, three ppn
/// values, message sizes capped at 64 KiB.
pub fn shrink_spec(mut spec: DatasetSpec) -> DatasetSpec {
    let split = splits::paper_split(&spec.machine.name);
    let mut nodes: Vec<u32> = spec
        .nodes
        .iter()
        .copied()
        .filter(|n| {
            split.train_small.contains(n) || split.test.first() == Some(n) || split.test.last() == Some(n)
        })
        .collect();
    nodes.dedup();
    spec.nodes = nodes;
    let keep: Vec<u32> = [1, spec.ppn[spec.ppn.len() / 2], *spec.ppn.last().unwrap()]
        .into_iter()
        .collect();
    spec.ppn.retain(|p| keep.contains(p));
    spec.msizes.retain(|&m| m <= 64 << 10);
    spec
}

/// A fully prepared dataset: spec, library, generated records, split.
pub struct Prepared {
    /// The (possibly shrunk) dataset spec.
    pub spec: DatasetSpec,
    /// The library with its default decision logic.
    pub library: MpiLibrary,
    /// Generated (or cache-loaded) records.
    pub data: DatasetResult,
    /// Table III split for the machine.
    pub split: splits::Split,
}

impl Prepared {
    /// Generate (with caching) everything needed to evaluate a dataset.
    pub fn load(spec: DatasetSpec) -> Prepared {
        let spec = if fast_mode() { shrink_spec(spec) } else { spec };
        let bench = BenchConfig::paper_default(&spec.machine.name);
        let library = spec.library(None);
        eprintln!(
            "[{}] generating {} cells ({} configs) ...",
            spec.id,
            spec.sample_count(&library),
            library.configs(spec.coll).len()
        );
        let t0 = std::time::Instant::now();
        let data = spec.generate_cached(&library, &bench, &cache_dir());
        eprintln!("[{}] ready in {:.1}s", spec.id, t0.elapsed().as_secs_f64());
        let split = splits::paper_split(&spec.machine.name);
        Prepared { spec, library, data, split }
    }

    /// Training records for the full or small Table III training set.
    pub fn train_records(&self, small: bool) -> Vec<Record> {
        let nodes = if small { &self.split.train_small } else { &self.split.train_full };
        let nodes: Vec<u32> =
            nodes.iter().copied().filter(|n| self.spec.nodes.contains(n)).collect();
        splits::filter_records(&self.data.records, &nodes)
    }

    /// Test records (unseen node counts).
    pub fn test_records(&self) -> Vec<Record> {
        let nodes: Vec<u32> =
            self.split.test.iter().copied().filter(|n| self.spec.nodes.contains(n)).collect();
        splits::filter_records(&self.data.records, &nodes)
    }

    /// Train a selector on this dataset.
    pub fn train_selector(&self, learner: &Learner, small: bool) -> Selector {
        Selector::train(learner, &self.train_records(small), self.library.configs(self.spec.coll))
            .expect("selector training failed: no configuration could be trained")
    }

    /// Train + evaluate one learner; returns per-instance evaluations on
    /// the test split.
    pub fn evaluate_learner(&self, learner: &Learner, small: bool) -> Vec<InstanceEval> {
        let selector = self.train_selector(learner, small);
        evaluate(&selector, &self.test_records(), &self.library, self.spec.coll)
    }
}

/// Render an aligned plain-text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Write a CSV file into the results directory.
pub fn write_result_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    use std::io::Write;
    let path = results_dir().join(name);
    let mut f = std::fs::File::create(&path).expect("cannot write result csv");
    writeln!(f, "{header}").unwrap();
    for r in rows {
        writeln!(f, "{r}").unwrap();
    }
    eprintln!("wrote {}", path.display());
    path
}

/// Format a byte count the way the paper's axes do.
pub fn fmt_bytes(b: u64) -> String {
    b.to_string()
}

/// Human-readable duration from seconds.
pub fn fmt_duration(secs: f64) -> String {
    if secs >= 3600.0 {
        format!("{:.1} h", secs / 3600.0)
    } else if secs >= 60.0 {
        format!("{:.1} min", secs / 60.0)
    } else {
        format!("{secs:.1} s")
    }
}

/// Load a dataset by id, as the binaries do.
pub fn load_dataset(id: &str) -> Prepared {
    let spec = DatasetSpec::by_id(id).unwrap_or_else(|| panic!("unknown dataset {id}"));
    Prepared::load(spec)
}

/// Check whether `path` exists (test helper).
pub fn exists(path: &Path) -> bool {
    path.exists()
}

/// Rows of a Fig.4-style comparison: for each `(nodes, ppn, msize)` test
/// instance, the runtimes of Best / Default / Prediction normalized to
/// Best.
pub struct ComparisonRow {
    /// Node count of the instance.
    pub nodes: u32,
    /// Processes per node.
    pub ppn: u32,
    /// Message size in bytes.
    pub msize: u64,
    /// Default strategy runtime / best runtime (>= 1).
    pub norm_default: f64,
    /// Predicted strategy runtime / best runtime (>= 1).
    pub norm_predicted: f64,
    /// Best absolute runtime in microseconds (context).
    pub best_us: f64,
    /// Chosen uids (best, default, predicted).
    pub uids: (u32, u32, u32),
}

/// Produce a Fig. 4/6/7/8-style comparison on a dataset: train the given
/// learner on the full Table III training split, evaluate on the listed
/// test nodes and ppn values.
pub fn comparison_figure(
    prepared: &Prepared,
    learner: &Learner,
    show_nodes: &[u32],
    show_ppn: &[u32],
) -> Vec<ComparisonRow> {
    let evals = prepared.evaluate_learner(learner, false);
    let mut rows: Vec<ComparisonRow> = evals
        .iter()
        .filter(|e| {
            show_nodes.contains(&e.instance.nodes) && show_ppn.contains(&e.instance.ppn)
        })
        .map(|e| ComparisonRow {
            nodes: e.instance.nodes,
            ppn: e.instance.ppn,
            msize: e.instance.msize,
            norm_default: e.normalized_default(),
            norm_predicted: e.normalized_predicted(),
            best_us: e.best * 1e6,
            uids: (e.best_uid, e.default_uid, e.predicted_uid),
        })
        .collect();
    rows.sort_by_key(|r| (r.nodes, r.ppn, r.msize));
    rows
}

/// Print a comparison figure as panels (one per nodes × ppn) and write
/// its CSV; returns the rows for further summary.
pub fn print_comparison(
    name: &str,
    title: &str,
    prepared: &Prepared,
    learner: &Learner,
    show_nodes: &[u32],
    show_ppn: &[u32],
) -> Vec<ComparisonRow> {
    let rows = comparison_figure(prepared, learner, show_nodes, show_ppn);
    println!("{title}");
    println!("(normalized running time; Exhaustive Search (Best) = 1.00)\n");
    let mut csv = Vec::new();
    for &n in show_nodes {
        for &ppn in show_ppn {
            let panel: Vec<&ComparisonRow> =
                rows.iter().filter(|r| r.nodes == n && r.ppn == ppn).collect();
            if panel.is_empty() {
                continue;
            }
            println!("nodes: {n}   ppn: {ppn}");
            let table_rows: Vec<Vec<String>> = panel
                .iter()
                .map(|r| {
                    vec![
                        r.msize.to_string(),
                        "1.00".to_string(),
                        format!("{:.2}", r.norm_default),
                        format!("{:.2}", r.norm_predicted),
                        format!("{:.1}", r.best_us),
                    ]
                })
                .collect();
            println!(
                "{}",
                render_table(
                    &["msize [B]", "Best", "Default", "Prediction", "best [us]"],
                    &table_rows
                )
            );
            for r in &panel {
                csv.push(format!(
                    "{},{},{},{:.6},{:.6},{:.3},{},{},{}",
                    r.nodes,
                    r.ppn,
                    r.msize,
                    r.norm_default,
                    r.norm_predicted,
                    r.best_us,
                    r.uids.0,
                    r.uids.1,
                    r.uids.2
                ));
            }
        }
    }
    let mean_def: f64 = rows.iter().map(|r| r.norm_default).sum::<f64>() / rows.len().max(1) as f64;
    let mean_pred: f64 =
        rows.iter().map(|r| r.norm_predicted).sum::<f64>() / rows.len().max(1) as f64;
    println!(
        "mean normalized runtime over shown panels: default {mean_def:.2}, prediction {mean_pred:.2}"
    );
    write_result_csv(
        &format!("{name}.csv"),
        "nodes,ppn,msize,norm_default,norm_predicted,best_us,best_uid,default_uid,predicted_uid",
        &csv,
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns() {
        let t = render_table(&["a", "bb"], &[
            vec!["1".into(), "2".into()],
            vec!["333".into(), "4".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("1"));
    }

    #[test]
    fn shrink_reduces_grid() {
        let spec = DatasetSpec::d1();
        let small = shrink_spec(spec.clone());
        assert!(small.nodes.len() < spec.nodes.len());
        assert!(small.ppn.len() <= 3);
        assert!(small.msizes.iter().all(|&m| m <= 64 << 10));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(10.0), "10.0 s");
        assert_eq!(fmt_duration(120.0), "2.0 min");
        assert_eq!(fmt_duration(7200.0), "2.0 h");
    }
}
