//! Ablation study of the design choices DESIGN.md calls out:
//!
//! 1. **Target transform** — absolute runtimes (this paper) vs the
//!    rejected alternatives: speed-up-over-default ratios (the authors'
//!    PMBS'18 approach) and direct best-algorithm classification, both of
//!    which the paper argues introduce bias (§III-A).
//! 2. **Learner family** — the kept learners vs rejected baselines.
//! 3. **Feature set** — with/without the explicit `n·N` interaction and
//!    the log transform on message size.
//!
//! All ablations run on a mid-size Open MPI broadcast grid on Hydra.

use std::collections::HashMap;

use mpcp_benchmark::{BenchConfig, DatasetSpec, LibKind, Record};
use mpcp_collectives::Collective;
use mpcp_core::{evaluate, mean_speedup, splits, Instance, RuntimeTable, Selector};
use mpcp_experiments::{render_table, write_result_csv};
use mpcp_ml::{Dataset, Learner};
use mpcp_simnet::{Machine, Topology};

fn spec() -> DatasetSpec {
    let fast = mpcp_experiments::fast_mode();
    DatasetSpec {
        id: "ablation",
        coll: Collective::Bcast,
        lib: LibKind::OpenMpi,
        machine: Machine::hydra(),
        nodes: if fast { vec![2, 3, 4, 6] } else { vec![4, 7, 8, 13, 16, 20, 24] },
        ppn: if fast { vec![1, 4] } else { vec![1, 8, 16, 32] },
        msizes: if fast {
            vec![16, 4 << 10, 64 << 10]
        } else {
            vec![1, 16, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 512 << 10, 1 << 20, 4 << 20]
        },
        seed: 0xAB1A,
    }
}

/// A hand-rolled feature encoding `(msize, nodes, ppn) -> features`.
type FeatFn = fn(u64, u32, u32) -> Vec<f64>;

/// Custom-feature selector: same argmin machinery, hand-rolled features.
struct FeatSelector {
    models: Vec<Option<mpcp_ml::Model>>,
    feat: FeatFn,
}

impl FeatSelector {
    fn train(
        records: &[Record],
        n_configs: usize,
        excluded: &[bool],
        feat: FeatFn,
        learner: &Learner,
    ) -> FeatSelector {
        let nfeat = feat(1, 1, 1).len();
        let mut per: Vec<Dataset> = (0..n_configs).map(|_| Dataset::new(nfeat)).collect();
        for r in records {
            if !excluded[r.uid as usize] {
                per[r.uid as usize].push(&feat(r.msize, r.nodes, r.ppn), (r.runtime * 1e6).max(1e-3));
            }
        }
        let models = per
            .iter()
            .enumerate()
            .map(|(u, d)| (!excluded[u] && !d.is_empty()).then(|| learner.fit(d)))
            .collect();
        FeatSelector { models, feat }
    }

    fn select(&self, m: u64, n: u32, ppn: u32) -> u32 {
        let x = (self.feat)(m, n, ppn);
        self.models
            .iter()
            .enumerate()
            .filter_map(|(u, mo)| mo.as_ref().map(|mo| (u as u32, mo.predict(&x))))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
            .0
    }
}

fn eval_feat(
    table: &RuntimeTable,
    library: &mpcp_collectives::MpiLibrary,
    test: &[Record],
    sel: &FeatSelector,
) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    let mut seen = std::collections::HashSet::new();
    for r in test {
        if !seen.insert((r.nodes, r.ppn, r.msize)) {
            continue;
        }
        let inst = Instance::new(Collective::Bcast, r.msize, r.nodes, r.ppn);
        let uid = sel.select(r.msize, r.nodes, r.ppn);
        let t = table.runtime(&inst, uid).unwrap();
        let d_uid = library.default_choice(
            Collective::Bcast,
            r.msize,
            &Topology::new(r.nodes, r.ppn),
        ) as u32;
        let d = table.runtime(&inst, d_uid).unwrap();
        sum += d / t;
        n += 1;
    }
    sum / n as f64
}

/// PMBS'18-style ratio learner: predict speedup over the default, pick
/// argmax — reproduced here to show why the paper abandoned it.
fn ratio_strategy_speedup(
    train: &[Record],
    test: &[Record],
    library: &mpcp_collectives::MpiLibrary,
    learner: &Learner,
    n_configs: usize,
    excluded: &[bool],
) -> f64 {
    // Default runtime per instance (training side).
    let mut default_t: HashMap<(u32, u32, u64), f64> = HashMap::new();
    for r in train {
        let d_uid =
            library.default_choice(Collective::Bcast, r.msize, &Topology::new(r.nodes, r.ppn));
        if r.uid as usize == d_uid {
            default_t.insert((r.nodes, r.ppn, r.msize), r.runtime);
        }
    }
    let mut per: Vec<Dataset> = (0..n_configs).map(|_| Dataset::new(4)).collect();
    for r in train {
        if excluded[r.uid as usize] {
            continue;
        }
        let Some(&d) = default_t.get(&(r.nodes, r.ppn, r.msize)) else { continue };
        let ratio = (d / r.runtime).clamp(1e-3, 1e3); // speed-up over default
        per[r.uid as usize].push(
            &[((r.msize + 1) as f64).log2(), r.nodes as f64, r.ppn as f64,
              (r.nodes * r.ppn) as f64],
            ratio,
        );
    }
    let models: Vec<Option<mpcp_ml::Model>> = per
        .iter()
        .enumerate()
        .map(|(u, d)| (!excluded[u] && !d.is_empty()).then(|| learner.fit(d)))
        .collect();
    let table = RuntimeTable::new(test);
    let mut sum = 0.0;
    let mut n = 0;
    let mut seen = std::collections::HashSet::new();
    for r in test {
        if !seen.insert((r.nodes, r.ppn, r.msize)) {
            continue;
        }
        let x = [((r.msize + 1) as f64).log2(), r.nodes as f64, r.ppn as f64,
                 (r.nodes * r.ppn) as f64];
        let uid = models
            .iter()
            .enumerate()
            .filter_map(|(u, m)| m.as_ref().map(|m| (u as u32, m.predict(&x))))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
            .0;
        let inst = Instance::new(Collective::Bcast, r.msize, r.nodes, r.ppn);
        let t = table.runtime(&inst, uid).unwrap();
        let d_uid = library
            .default_choice(Collective::Bcast, r.msize, &Topology::new(r.nodes, r.ppn))
            as u32;
        let d = table.runtime(&inst, d_uid).unwrap();
        sum += d / t;
        n += 1;
    }
    sum / n as f64
}

/// Direct classification of the best algorithm id (the paper's §III-A
/// third rejected scheme): label each training instance with its best
/// uid, classify unseen instances by majority vote over the K nearest
/// training instances. Biased toward the few algorithms that win most
/// instances — reproduced to show the effect.
fn classification_strategy_speedup(
    train: &[Record],
    test: &[Record],
    library: &mpcp_collectives::MpiLibrary,
) -> f64 {
    use mpcp_ml::kdtree::KdTree;
    use mpcp_ml::scaling::StandardScaler;
    // Best uid per training instance.
    let train_table = RuntimeTable::new(train);
    let mut rows: Vec<(Vec<f64>, f64)> = Vec::new();
    let mut feat_ds = mpcp_ml::Dataset::new(4);
    let mut labels = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for r in train {
        if !seen.insert((r.nodes, r.ppn, r.msize)) {
            continue;
        }
        let inst = Instance::new(Collective::Bcast, r.msize, r.nodes, r.ppn);
        let Some((uid, _)) = train_table.best(&inst) else { continue };
        let x = vec![((r.msize + 1) as f64).log2(), r.nodes as f64, r.ppn as f64,
                     (r.nodes * r.ppn) as f64];
        feat_ds.push(&x, 0.0);
        labels.push(uid);
        rows.push((x, uid as f64));
    }
    let scaler = StandardScaler::fit(&feat_ds);
    let scaled: Vec<(Vec<f64>, f64)> =
        rows.iter().map(|(x, y)| (scaler.transform(x), *y)).collect();
    let tree = KdTree::build(scaled);
    let table = RuntimeTable::new(test);
    let mut sum = 0.0;
    let mut n = 0;
    let mut test_seen = std::collections::HashSet::new();
    for r in test {
        if !test_seen.insert((r.nodes, r.ppn, r.msize)) {
            continue;
        }
        let x = scaler.transform(&[((r.msize + 1) as f64).log2(), r.nodes as f64,
                                   r.ppn as f64, (r.nodes * r.ppn) as f64]);
        // Majority vote over the 5 nearest labels.
        let nn = tree.nearest(&x, 5);
        let mut votes: HashMap<u32, usize> = HashMap::new();
        for (_, y) in nn {
            *votes.entry(y as u32).or_default() += 1;
        }
        let uid = *votes.iter().max_by_key(|(_, c)| **c).unwrap().0;
        let inst = Instance::new(Collective::Bcast, r.msize, r.nodes, r.ppn);
        let t = table.runtime(&inst, uid).unwrap();
        let d_uid = library
            .default_choice(Collective::Bcast, r.msize, &Topology::new(r.nodes, r.ppn))
            as u32;
        let d = table.runtime(&inst, d_uid).unwrap();
        sum += d / t;
        n += 1;
    }
    sum / n as f64
}

fn main() {
    mpcp_experiments::print_provenance("ablation", None);
    let spec = spec();
    let library = spec.library(None);
    eprintln!("[ablation] generating {} cells ...", spec.sample_count(&library));
    let data = spec.generate(&library, &BenchConfig::paper_default("Hydra"));
    let split = splits::paper_split("Hydra");
    let keep =
        |ns: &Vec<u32>| ns.iter().copied().filter(|n| spec.nodes.contains(n)).collect::<Vec<_>>();
    let train_nodes = if mpcp_experiments::fast_mode() { vec![2, 4, 6] } else { keep(&split.train_full) };
    let test_nodes = if mpcp_experiments::fast_mode() { vec![3] } else { keep(&split.test) };
    let train = splits::filter_records(&data.records, &train_nodes);
    let test = splits::filter_records(&data.records, &test_nodes);
    let configs = library.configs(spec.coll);
    let excluded: Vec<bool> = configs.iter().map(|c| c.excluded).collect();
    let table = RuntimeTable::new(&test);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut add = |group: &str, variant: &str, speedup: f64| {
        rows.push(vec![group.to_string(), variant.to_string(), format!("{speedup:.2}")]);
        csv.push(format!("{group},{variant},{speedup:.4}"));
    };

    // 1. Target transform.
    let sel = Selector::train(&Learner::xgboost(), &train, configs).expect("training failed");
    add("target", "absolute runtime (paper)", mean_speedup(&evaluate(&sel, &test, &library, spec.coll)));
    add(
        "target",
        "speedup ratio (PMBS'18, rejected)",
        ratio_strategy_speedup(&train, &test, &library, &Learner::xgboost(), configs.len(), &excluded),
    );
    add(
        "target",
        "best-id classification (rejected)",
        classification_strategy_speedup(&train, &test, &library),
    );

    // 2. Learner family.
    for learner in
        [Learner::knn(), Learner::gam(), Learner::xgboost(), Learner::forest(), Learner::linear()]
    {
        let sel = Selector::train(&learner, &train, configs).expect("training failed");
        add("learner", learner.name(), mean_speedup(&evaluate(&sel, &test, &library, spec.coll)));
    }

    // 3. Feature set (XGBoost).
    let feats: [(&str, FeatFn); 3] = [
        ("log2(m), n, N, nN (paper)", |m, n, ppn| {
            vec![((m + 1) as f64).log2(), n as f64, ppn as f64, (n * ppn) as f64]
        }),
        ("no interaction term", |m, n, ppn| {
            vec![((m + 1) as f64).log2(), n as f64, ppn as f64]
        }),
        ("raw m (no log)", |m, n, ppn| {
            vec![m as f64, n as f64, ppn as f64, (n * ppn) as f64]
        }),
    ];
    for (name, f) in feats {
        let sel = FeatSelector::train(&train, configs.len(), &excluded, f, &Learner::xgboost());
        add("features", name, eval_feat(&table, &library, &test, &sel));
    }

    println!("Ablation study (mean speed-up over the library default; higher is better)");
    println!("{}", render_table(&["group", "variant", "speedup"], &rows));
    write_result_csv("ablation.csv", "group,variant,speedup", &csv);
}
