//! Fig. 2 — speed-up of the chain broadcast (algorithm 2) in all its
//! configurations (segment size × chain count) over the basic linear
//! broadcast (algorithm 1), on 32 × 32 processes, Open MPI, Hydra.
//!
//! The paper reports speed-ups between 10 and 50 at 4 MiB depending on
//! the parameters — the motivating evidence for modelling algorithmic
//! parameters in the prediction.

use mpcp_benchmark::datasets::paper_msizes;
use mpcp_collectives::registry::{CHAIN_COUNTS, SEG_SIZES};
use mpcp_collectives::AlgKind;
use mpcp_experiments::{fast_mode, render_table, write_result_csv};
use mpcp_simnet::{Machine, Simulator, Topology};

fn main() {
    mpcp_experiments::print_provenance("fig2", None);
    let machine = Machine::hydra();
    let topo = if fast_mode() { Topology::new(8, 8) } else { Topology::new(32, 32) };
    let sim = Simulator::new(&machine.model, &topo);
    let msizes = paper_msizes();

    println!(
        "Fig. 2: Speed-up of chain broadcast configurations over linear; {}x{} processes, Open MPI 4.0.2, Hydra",
        topo.nodes(),
        topo.ppn()
    );

    // Baseline: algorithm 1 (linear).
    let mut linear_t = Vec::new();
    for &m in &msizes {
        let progs = AlgKind::BcastLinear.build(&topo, m);
        linear_t.push(sim.run(&progs).expect("linear bcast").makespan().as_secs_f64());
    }

    let segs: Vec<u64> = SEG_SIZES.iter().copied().filter(|&s| s != 0).collect();
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut max_speedup_4m = 0.0f64;
    let mut min_speedup_4m = f64::INFINITY;
    for &seg in &segs {
        for &chains in &CHAIN_COUNTS {
            let mut row = vec![format!("seg {}K", seg / 1024), chains.to_string()];
            for (i, &m) in msizes.iter().enumerate() {
                let progs = AlgKind::BcastChain { chains, seg }.build(&topo, m);
                let t = sim.run(&progs).expect("chain bcast").makespan().as_secs_f64();
                let speedup = linear_t[i] / t;
                if m == 4 << 20 {
                    max_speedup_4m = max_speedup_4m.max(speedup);
                    min_speedup_4m = min_speedup_4m.min(speedup);
                }
                row.push(format!("{speedup:.1}"));
                csv.push(format!("{seg},{chains},{m},{speedup:.4}"));
            }
            rows.push(row);
        }
    }
    let mut headers: Vec<String> = vec!["segment".into(), "chains".into()];
    headers.extend(msizes.iter().map(|m| m.to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("{}", render_table(&headers_ref, &rows));
    if let Some(&m) = msizes.last() {
        println!(
            "speed-up range at m={} bytes: {:.1} .. {:.1} (paper: ~10 .. ~50)",
            m, min_speedup_4m, max_speedup_4m
        );
    }
    write_result_csv("fig2.csv", "seg_bytes,chains,msize,speedup_vs_linear", &csv);
}
