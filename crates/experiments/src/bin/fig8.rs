//! Fig. 8 — comparison of selection strategies for `MPI_Bcast`,
//! Open MPI 4.0.2, SuperMUC-NG, test nodes 27/35 at ppn 1/24/48.

use mpcp_experiments::{load_dataset, print_comparison};
use mpcp_ml::Learner;

fn main() {
    mpcp_experiments::print_provenance("fig8", None);
    let prepared = load_dataset("d8");
    let ppn: Vec<u32> = [1u32, 24, 48]
        .into_iter()
        .filter(|p| prepared.spec.ppn.contains(p))
        .collect();
    let nodes: Vec<u32> = [27u32, 35]
        .into_iter()
        .filter(|n| prepared.spec.nodes.contains(n))
        .collect();
    print_comparison(
        "fig8",
        "Fig. 8: Algorithm selection strategies for MPI_Bcast; Open MPI 4.0.2; SuperMUC-NG (GAM prediction)",
        &prepared,
        &Learner::gam(),
        &nodes,
        &ppn,
    );
}
