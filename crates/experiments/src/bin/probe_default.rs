//! Diagnostic: compare candidate "default rule" algorithms against the
//! per-instance best, to calibrate the Open MPI fixed decision rules.

use mpcp_collectives::{registry, AlgKind};
use mpcp_simnet::{Machine, Simulator, Topology};

fn main() {
    mpcp_experiments::print_provenance("probe_default", None);
    let machine = Machine::hydra();
    let configs = registry::open_mpi_bcast();
    for &(n, ppn) in &[(27u32, 32u32), (27, 16), (27, 1), (13, 16), (35, 4)] {
        let topo = Topology::new(n, ppn);
        let sim = Simulator::new(&machine.model, &topo);
        for &m in &[4096u64, 16 << 10, 64 << 10, 512 << 10, 4 << 20] {
            let mut best = (f64::INFINITY, String::new());
            for c in &configs {
                if c.excluded {
                    continue;
                }
                let t = sim.run(&c.build(&topo, m)).unwrap().makespan().as_secs_f64();
                if t < best.0 {
                    best = (t, c.label());
                }
            }
            let candidates = [
                AlgKind::BcastBinomial { seg: 0 },
                AlgKind::BcastBinomial { seg: 4 << 10 },
                AlgKind::BcastSplitBinary { seg: 4 << 10 },
                AlgKind::BcastSplitBinary { seg: 64 << 10 },
                AlgKind::BcastSplitBinary { seg: 128 << 10 },
                AlgKind::BcastBinary { seg: 16 << 10 },
                AlgKind::BcastBinary { seg: 64 << 10 },
                AlgKind::BcastPipeline { seg: 128 << 10 },
            ];
            let mut line = format!("n={n:<3} ppn={ppn:<3} m={m:<8} best {:>9.1}us ({})  |", best.0 * 1e6, best.1);
            for c in candidates {
                let t = sim.run(&c.build(&topo, m)).unwrap().makespan().as_secs_f64();
                line.push_str(&format!(" {:.1}", t / best.0));
            }
            println!("{line}");
        }
        println!();
    }
    println!("candidate order: binom0 binom4K splitbin4K splitbin64K splitbin128K binary16K binary64K pipe128K");
}
