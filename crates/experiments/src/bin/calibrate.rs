//! Calibration probe: runs a reduced d1-style sweep and reports how the
//! machine model + decision rules shape up against the paper's expected
//! result (Open MPI default beaten substantially on Hydra broadcast).
//! Useful when adjusting `simnet::machine` parameters; not part of the
//! paper regeneration set.

use mpcp_benchmark::{BenchConfig, DatasetSpec};
use mpcp_core::{evaluate, mean_speedup, splits, Instance, Selector};
use mpcp_ml::Learner;

fn main() {
    mpcp_experiments::print_provenance("calibrate", None);
    let t0 = std::time::Instant::now();
    let mut spec = DatasetSpec::d1();
    spec.nodes = vec![4, 8, 13, 16, 24, 27, 32];
    spec.ppn = vec![1, 16, 32];
    let library = spec.library(None);
    let bench = BenchConfig::paper_default(&spec.machine.name);
    println!(
        "probe grid: {} cells, {} configs",
        spec.sample_count(&library),
        library.configs(spec.coll).len()
    );
    let data = spec.generate(&library, &bench);
    println!("generation: {:.1}s", t0.elapsed().as_secs_f64());

    let train = splits::filter_records(&data.records, &[4, 8, 16, 24, 32]);
    let test = splits::filter_records(&data.records, &[13, 27]);

    for learner in [Learner::knn(), Learner::gam(), Learner::xgboost()] {
        let t1 = std::time::Instant::now();
        let selector = Selector::train(&learner, &train, library.configs(spec.coll)).expect("training failed");
        let fit_t = t1.elapsed().as_secs_f64();
        let evals = evaluate(&selector, &test, &library, spec.coll);
        let s = mean_speedup(&evals);
        let norm_pred: f64 =
            evals.iter().map(|e| e.normalized_predicted()).sum::<f64>() / evals.len() as f64;
        let norm_def: f64 =
            evals.iter().map(|e| e.normalized_default()).sum::<f64>() / evals.len() as f64;
        println!(
            "{:<8} fit {:>6.1}s  mean speedup {:.2}  norm(pred) {:.2}  norm(default) {:.2}",
            selector.learner_name(),
            fit_t,
            s,
            norm_pred,
            norm_def
        );
    }

    // What wins where (noise-free best), for model calibration.
    let table = mpcp_core::RuntimeTable::new(&data.records);
    let configs = library.configs(spec.coll);
    for &(m, n, ppn) in &[
        (16u64, 27u32, 32u32),
        (16 << 10, 27, 32),
        (512 << 10, 27, 32),
        (4 << 20, 27, 32),
        (4 << 20, 27, 1),
        (4 << 20, 13, 16),
    ] {
        let inst = Instance::new(spec.coll, m, n, ppn);
        if let Some((uid, t)) = table.best(&inst) {
            let d_uid = library.default_choice(
                spec.coll,
                m,
                &mpcp_simnet::Topology::new(n, ppn),
            );
            let d_t = table.runtime(&inst, d_uid as u32).unwrap();
            println!(
                "m={m:<9} n={n:<3} ppn={ppn:<3} best={:<28} {:>10.1}us | default={:<28} {:>10.1}us  ratio {:.2}",
                configs[uid as usize].label(),
                t * 1e6,
                configs[d_uid].label(),
                d_t * 1e6,
                d_t / t
            );
        }
    }
    println!("total {:.1}s", t0.elapsed().as_secs_f64());
}
