//! Table I — hardware overview of the three simulated machines.

use mpcp_experiments::{render_table, write_result_csv};
use mpcp_simnet::Machine;

fn main() {
    mpcp_experiments::print_provenance("table1", None);
    let rows: Vec<Vec<String>> = Machine::all()
        .into_iter()
        .map(|m| {
            vec![
                m.name.clone(),
                m.max_nodes.to_string(),
                m.max_ppn.to_string(),
                m.processor.clone(),
                m.interconnect.clone(),
                format!(
                    "alpha={:.2}us, {}x{:.1}GB/s rails",
                    m.model.alpha_inter * 1e6,
                    m.model.rails,
                    1e-9 / m.model.beta_rail
                ),
            ]
        })
        .collect();
    println!("Table I: Hardware overview (simulated profiles)");
    println!(
        "{}",
        render_table(
            &["Machine", "n", "Max ppn", "Processor", "Interconnect", "Model"],
            &rows
        )
    );
    let csv_rows: Vec<String> = rows.iter().map(|r| r.join(";")).collect();
    write_result_csv(
        "table1.csv",
        "machine;nodes;max_ppn;processor;interconnect;model",
        &csv_rows,
    );
}
