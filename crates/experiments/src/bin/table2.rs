//! Table II — overview of datasets d1..d8: routine, library, machine,
//! and grid dimensions. `#samples` is re-derived from our configuration
//! registries (`#configs × #nodes × #ppn × #msizes`).

use mpcp_benchmark::DatasetSpec;
use mpcp_collectives::registry;
use mpcp_experiments::{render_table, write_result_csv};

fn main() {
    mpcp_experiments::print_provenance("table2", None);
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for spec in DatasetSpec::all() {
        let configs = match spec.lib {
            mpcp_benchmark::LibKind::OpenMpi => registry::open_mpi(spec.coll),
            mpcp_benchmark::LibKind::IntelMpi => registry::intel(spec.coll),
        };
        let alg_ids: std::collections::BTreeSet<u32> = configs.iter().map(|c| c.alg_id).collect();
        let samples = configs.len() * spec.nodes.len() * spec.ppn.len() * spec.msizes.len();
        rows.push(vec![
            spec.id.to_string(),
            spec.coll.mpi_name().to_string(),
            spec.lib.name().to_string(),
            spec.lib.version().to_string(),
            spec.machine.name.clone(),
            alg_ids.len().to_string(),
            spec.nodes.len().to_string(),
            spec.ppn.len().to_string(),
            spec.msizes.len().to_string(),
            samples.to_string(),
        ]);
        csv.push(format!(
            "{},{},{},{},{},{},{},{},{},{}",
            spec.id,
            spec.coll.mpi_name(),
            spec.lib.name(),
            spec.lib.version(),
            spec.machine.name,
            alg_ids.len(),
            spec.nodes.len(),
            spec.ppn.len(),
            spec.msizes.len(),
            samples
        ));
    }
    println!("Table II: Overview of datasets");
    println!(
        "{}",
        render_table(
            &[
                "Dataset", "MPI routine", "MPI", "Version", "Machine", "#algorithms", "#nodes",
                "#ppn", "#msg.sizes", "#samples"
            ],
            &rows
        )
    );
    println!("(#algorithms counts distinct library algorithm ids; #samples =");
    println!(" #configurations x #nodes x #ppn x #msizes, see DESIGN.md)");
    write_result_csv(
        "table2.csv",
        "dataset,routine,mpi,version,machine,algorithms,nodes,ppn,msizes,samples",
        &csv,
    );
}
