//! Table IV — overall prediction quality: mean speed-up of the predicted
//! algorithm over the library's default selection, per dataset and
//! learner, for (a) the full and (b) the small training dataset.
//!
//! Run with `MPCP_DATASETS=d1,d2` to restrict the sweep (all eight by
//! default; d1..d8 take a while on one core).

use mpcp_benchmark::DatasetSpec;
use mpcp_core::mean_speedup;
use mpcp_experiments::{load_dataset, render_table, write_result_csv};
use mpcp_ml::Learner;

fn main() {
    mpcp_experiments::print_provenance("table4", None);
    let ids: Vec<String> = std::env::var("MPCP_DATASETS")
        .map(|s| s.split(',').map(|x| x.trim().to_string()).collect())
        .unwrap_or_else(|_| DatasetSpec::all().iter().map(|d| d.id.to_string()).collect());

    let learners = Learner::paper_learners();
    // speedups[small][learner][dataset]
    let mut cells = vec![vec![vec![f64::NAN; ids.len()]; learners.len()]; 2];

    for (di, id) in ids.iter().enumerate() {
        let prepared = load_dataset(id);
        for (li, (name, learner)) in learners.iter().enumerate() {
            for (si, small) in [false, true].into_iter().enumerate() {
                let evals = prepared.evaluate_learner(learner, small);
                let s = mean_speedup(&evals);
                cells[si][li][di] = s;
                eprintln!(
                    "[{id}] {name} {} training: mean speed-up {s:.2} over {} instances",
                    if small { "small" } else { "large" },
                    evals.len()
                );
            }
        }
    }

    let mut csv = Vec::new();
    for (si, label) in [(0, "(a) Large training dataset"), (1, "(b) Small training dataset")] {
        println!("\nTable IV{label}: relative speed-up over the default selection (higher is better)");
        let mut headers: Vec<String> = vec!["method".into()];
        headers.extend(ids.iter().cloned());
        headers.push("mean".into());
        let mut rows = Vec::new();
        for (li, (name, _)) in learners.iter().enumerate() {
            let vals = &cells[si][li];
            let mean = vals.iter().copied().filter(|v| v.is_finite()).sum::<f64>()
                / vals.iter().filter(|v| v.is_finite()).count().max(1) as f64;
            let mut row = vec![name.to_string()];
            for (di, v) in vals.iter().enumerate() {
                row.push(format!("{v:.2}"));
                csv.push(format!(
                    "{},{},{},{v:.4}",
                    if si == 0 { "large" } else { "small" },
                    name,
                    ids[di]
                ));
            }
            row.push(format!("{mean:.2}"));
            rows.push(row);
        }
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        println!("{}", render_table(&headers_ref, &rows));
    }
    println!("(paper, large training set: KNN 1.37, GAM 1.48, XGBoost 1.41 mean)");
    write_result_csv("table4.csv", "training,method,dataset,mean_speedup", &csv);
}
