//! Fig. 5 — which broadcast algorithm each regression learner (KNN, GAM,
//! XGBoost) predicts for every test process configuration and message
//! size; `MPI_Bcast`, Open MPI 4.0.2, Hydra.
//!
//! The paper's observations reproduced here: the learners produce
//! genuinely different selection maps, (almost) all algorithm ids get
//! used, and algorithm 8 never appears (excluded as buggy).

use std::collections::BTreeSet;

use mpcp_core::Instance;
use mpcp_experiments::{load_dataset, render_table, write_result_csv};
use mpcp_ml::Learner;

fn main() {
    mpcp_experiments::print_provenance("fig5", None);
    let prepared = load_dataset("d1");
    let spec = &prepared.spec;
    let configs = prepared.library.configs(spec.coll);
    let show_nodes: Vec<u32> =
        [7u32, 19, 35].into_iter().filter(|n| spec.nodes.contains(n)).collect();
    let show_ppn: Vec<u32> = spec.ppn.clone();
    let msizes = spec.msizes.clone();

    println!("Fig. 5: Predicted broadcast algorithm id per process configuration (nodes x ppn)");
    println!("        and message size, for each learner; Open MPI 4.0.2; Hydra\n");

    let mut csv = Vec::new();
    for (name, learner) in Learner::paper_learners() {
        let selector = prepared.train_selector(&learner, false);
        let mut used = BTreeSet::new();
        // One table: rows = msize, cols = configurations.
        let mut headers: Vec<String> = vec!["msize".into()];
        for &n in &show_nodes {
            for &ppn in &show_ppn {
                headers.push(format!("{n:02}x{ppn:02}"));
            }
        }
        let mut rows = Vec::new();
        for &m in &msizes {
            let mut row = vec![m.to_string()];
            for &n in &show_nodes {
                for &ppn in &show_ppn {
                    let (uid, _) = selector.select(&Instance::new(spec.coll, m, n, ppn));
                    let alg = configs[uid as usize].alg_id;
                    used.insert(alg);
                    row.push(alg.to_string());
                    csv.push(format!("{name},{n},{ppn},{m},{alg},{uid}"));
                }
            }
            rows.push(row);
        }
        println!("--- {name} ---");
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        println!("{}", render_table(&headers_ref, &rows));
        println!(
            "algorithm ids used by {name}: {:?}  (8 must be absent: excluded as buggy)\n",
            used
        );
        assert!(!used.contains(&8), "excluded algorithm 8 was selected");
    }
    write_result_csv("fig5.csv", "learner,nodes,ppn,msize,alg_id,uid", &csv);
}
