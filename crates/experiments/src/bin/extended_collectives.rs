//! Extension experiment (beyond the paper's datasets): the selection
//! framework applied to `MPI_Reduce`, `MPI_Allgather` and `MPI_Gather` —
//! the paper's §II claims the approach "is generic and could be applied
//! to all collective communications"; this binary demonstrates it.

use mpcp_benchmark::{BenchConfig, DatasetSpec, LibKind};
use mpcp_collectives::Collective;
use mpcp_core::{evaluate, mean_speedup, splits, Selector};
use mpcp_experiments::{render_table, write_result_csv};
use mpcp_ml::Learner;
use mpcp_simnet::Machine;

fn main() {
    mpcp_experiments::print_provenance("extended_collectives", None);
    let fast = mpcp_experiments::fast_mode();
    let nodes: Vec<u32> =
        if fast { vec![2, 3, 4, 6] } else { vec![4, 7, 8, 13, 16, 19, 20, 24] };
    let train: Vec<u32> = if fast { vec![2, 4, 6] } else { vec![4, 8, 16, 20, 24] };
    let test: Vec<u32> = if fast { vec![3] } else { vec![7, 13, 19] };
    let ppn: Vec<u32> = if fast { vec![1, 4] } else { vec![1, 8, 16, 32] };
    let msizes: Vec<u64> = if fast {
        vec![16, 4 << 10, 64 << 10]
    } else {
        vec![1, 16, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 512 << 10, 1 << 20]
    };

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for coll in [Collective::Reduce, Collective::Allgather, Collective::Gather] {
        let spec = DatasetSpec {
            id: match coll {
                Collective::Reduce => "ext-reduce",
                Collective::Allgather => "ext-allgather",
                _ => "ext-gather",
            },
            coll,
            lib: LibKind::OpenMpi,
            machine: Machine::hydra(),
            nodes: nodes.clone(),
            ppn: ppn.clone(),
            msizes: msizes.clone(),
            seed: 0xE07 + coll as u64,
        };
        let library = spec.library(None);
        eprintln!(
            "[{}] generating {} cells ({} configs) ...",
            spec.id,
            spec.sample_count(&library),
            library.configs(coll).len()
        );
        let data = spec.generate(&library, &BenchConfig::paper_default("Hydra"));
        let train_rec = splits::filter_records(&data.records, &train);
        let test_rec = splits::filter_records(&data.records, &test);
        for (name, learner) in Learner::paper_learners() {
            let selector = Selector::train(&learner, &train_rec, library.configs(coll)).expect("training failed");
            let evals = evaluate(&selector, &test_rec, &library, coll);
            let speedup = mean_speedup(&evals);
            let norm: f64 =
                evals.iter().map(|e| e.normalized_predicted()).sum::<f64>() / evals.len() as f64;
            let norm_def: f64 =
                evals.iter().map(|e| e.normalized_default()).sum::<f64>() / evals.len() as f64;
            rows.push(vec![
                coll.mpi_name().to_string(),
                name.to_string(),
                format!("{speedup:.2}"),
                format!("{norm:.2}"),
                format!("{norm_def:.2}"),
            ]);
            csv.push(format!("{},{name},{speedup:.4},{norm:.4},{norm_def:.4}", coll.mpi_name()));
        }
    }
    println!("Extension: algorithm selection for collectives beyond the paper's datasets");
    println!("(Open MPI defaults on Hydra; test node counts unseen in training)\n");
    println!(
        "{}",
        render_table(
            &["collective", "method", "speedup vs default", "norm(prediction)", "norm(default)"],
            &rows
        )
    );
    write_result_csv(
        "extended_collectives.csv",
        "collective,method,mean_speedup,norm_predicted,norm_default",
        &csv,
    );
}
