//! Fig. 6 — comparison of selection strategies for `MPI_Allreduce`,
//! Intel MPI 2019, Hydra. The paper's finding: the Intel default is
//! already near-optimal and the prediction matches it (robustness).

use mpcp_experiments::{load_dataset, print_comparison};
use mpcp_ml::Learner;

fn main() {
    mpcp_experiments::print_provenance("fig6", None);
    let prepared = load_dataset("d5");
    let ppn: Vec<u32> = [1u32, 16, 32]
        .into_iter()
        .filter(|p| prepared.spec.ppn.contains(p))
        .collect();
    let nodes: Vec<u32> = [27u32, 35]
        .into_iter()
        .filter(|n| prepared.spec.nodes.contains(n))
        .collect();
    let rows = print_comparison(
        "fig6",
        "Fig. 6: Algorithm selection strategies for MPI_Allreduce; Intel MPI 2019; Hydra (GAM prediction)",
        &prepared,
        &Learner::gam(),
        &nodes,
        &ppn,
    );
    let close = rows
        .iter()
        .filter(|r| (r.norm_default - r.norm_predicted).abs() < 0.25)
        .count();
    println!(
        "instances where default and prediction are within 25% of each other: {}/{}",
        close,
        rows.len()
    );
}
