//! Table III — training and test node counts per machine.

use mpcp_core::splits;
use mpcp_experiments::{render_table, write_result_csv};

fn main() {
    mpcp_experiments::print_provenance("table3", None);
    let fmt = |v: &[u32]| {
        v.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(", ")
    };
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for machine in ["Hydra", "Jupiter", "SuperMUC-NG"] {
        let s = splits::paper_split(machine);
        rows.push(vec![
            machine.to_string(),
            fmt(&s.train_full),
            fmt(&s.train_small),
            fmt(&s.test),
        ]);
        csv.push(format!(
            "{};{};{};{}",
            machine,
            fmt(&s.train_full),
            fmt(&s.train_small),
            fmt(&s.test)
        ));
    }
    println!("Table III: Training and test datasets by machine and number of compute nodes (n)");
    println!(
        "{}",
        render_table(
            &["Machine", "Full training dataset (n)", "Small training dataset (n)", "Test dataset (n)"],
            &rows
        )
    );
    write_result_csv("table3.csv", "machine;train_full;train_small;test", &csv);
}
