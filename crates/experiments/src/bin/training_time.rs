//! §V text — predictable training time: the benchmark budget bound vs
//! the actually consumed (simulated) benchmarking time, per dataset.
//! The paper's example: SuperMUC-NG (d8) is bounded by ~3 h and actually
//! took ~56 min.

use mpcp_benchmark::{BenchConfig, DatasetSpec};
use mpcp_experiments::{fast_mode, fmt_duration, render_table, shrink_spec, write_result_csv};

fn main() {
    mpcp_experiments::print_provenance("training_time", None);
    let ids: Vec<String> = std::env::var("MPCP_DATASETS")
        .map(|s| s.split(',').map(|x| x.trim().to_string()).collect())
        .unwrap_or_else(|_| vec!["d8".to_string()]);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for id in &ids {
        let spec = DatasetSpec::by_id(id).unwrap_or_else(|| panic!("unknown dataset {id}"));
        let spec = if fast_mode() { shrink_spec(spec) } else { spec };
        let bench = BenchConfig::paper_default(&spec.machine.name);
        let library = spec.library(None);
        // Budget accounting needs a fresh generation (cache holds no
        // consumed-time info).
        let result = spec.generate(&library, &bench);
        let bound = result.budget_bound(&bench);
        rows.push(vec![
            spec.id.to_string(),
            spec.machine.name.clone(),
            result.records.len().to_string(),
            format!("{:.1} s", bench.budget.as_secs_f64()),
            fmt_duration(bound.as_secs_f64()),
            fmt_duration(result.total_bench.as_secs_f64()),
            format!(
                "{:.0}%",
                100.0 * result.total_bench.as_secs_f64() / bound.as_secs_f64()
            ),
        ]);
        csv.push(format!(
            "{},{},{},{},{:.1},{:.1}",
            spec.id,
            spec.machine.name,
            result.records.len(),
            bench.budget.as_secs_f64(),
            bound.as_secs_f64(),
            result.total_bench.as_secs_f64()
        ));
    }
    println!("Benchmark-time accounting (simulated wall time of the benchmarking step)");
    println!(
        "{}",
        render_table(
            &["dataset", "machine", "#cells", "budget/cell", "upper bound", "actual", "used"],
            &rows
        )
    );
    println!("(paper, d8 on SuperMUC-NG: bound ~3.2 h from 23184 x 0.5 s; actual ~56 min)");
    write_result_csv(
        "training_time.csv",
        "dataset,machine,cells,budget_per_cell_s,bound_s,actual_s",
        &csv,
    );
}
