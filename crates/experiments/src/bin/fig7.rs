//! Fig. 7 — comparison of selection strategies for `MPI_Allreduce`,
//! Open MPI 4.0.2, Jupiter, at ppn 1/8/16. The paper finds the default
//! mostly good except a mid-size band (~16 KiB) where prediction wins.

use mpcp_experiments::{load_dataset, print_comparison};
use mpcp_ml::Learner;

fn main() {
    mpcp_experiments::print_provenance("fig7", None);
    let prepared = load_dataset("d4");
    let ppn: Vec<u32> = [1u32, 8, 16]
        .into_iter()
        .filter(|p| prepared.spec.ppn.contains(p))
        .collect();
    let nodes: Vec<u32> = [27u32, 19]
        .into_iter()
        .filter(|n| prepared.spec.nodes.contains(n))
        .collect();
    let rows = print_comparison(
        "fig7",
        "Fig. 7: Algorithm selection strategies for MPI_Allreduce; Open MPI 4.0.2; Jupiter (GAM prediction)",
        &prepared,
        &Learner::gam(),
        &nodes,
        &ppn,
    );
    // Paper's observation: a mid-size band where the default loses.
    let mid: Vec<_> = rows
        .iter()
        .filter(|r| (4 << 10..=64 << 10).contains(&r.msize))
        .collect();
    if !mid.is_empty() {
        let worst = mid.iter().map(|r| r.norm_default).fold(0.0f64, f64::max);
        println!("worst default normalized runtime in the 4..64 KiB band: {worst:.2}");
    }
}
