//! Fig. 4 — comparison of selection strategies for `MPI_Bcast`,
//! Open MPI 4.0.2, Hydra: Exhaustive Search (Best) vs Default vs
//! Prediction (GAM), on test nodes 27 and 35 at ppn 1/16/32.

use mpcp_experiments::{load_dataset, print_comparison};
use mpcp_ml::Learner;

fn main() {
    mpcp_experiments::print_provenance("fig4", None);
    let prepared = load_dataset("d1");
    let ppn: Vec<u32> = [1u32, 16, 32]
        .into_iter()
        .filter(|p| prepared.spec.ppn.contains(p))
        .collect();
    let nodes: Vec<u32> = [27u32, 35]
        .into_iter()
        .filter(|n| prepared.spec.nodes.contains(n))
        .collect();
    print_comparison(
        "fig4",
        "Fig. 4: Algorithm selection strategies for MPI_Bcast; Open MPI 4.0.2; Hydra (GAM prediction)",
        &prepared,
        &Learner::gam(),
        &nodes,
        &ppn,
    );
}
