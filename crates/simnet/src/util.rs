//! Small utilities: a fast integer hash map for message matching.
//!
//! Message matching keys are dense `(source_rank, tag)` pairs packed into
//! a `u64`; SipHash is needlessly slow for them. This multiplicative
//! hasher (Fibonacci hashing on a 64-bit mix) is the standard fast choice
//! for integer keys and keeps matching O(1) even for all-to-all schedules
//! with thousands of concurrently posted receives.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for small integer keys.
#[derive(Default)]
pub struct IntHasher {
    state: u64,
}

impl Hasher for IntHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path (rarely used): fold bytes into the state.
        for &b in bytes {
            self.state = (self.state ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        // SplitMix64-style finalizer: full-avalanche, one multiply chain.
        let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.state = z ^ (z >> 31);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `HashMap` keyed by packed integers with the fast hasher.
pub type IntMap<V> = HashMap<u64, V, BuildHasherDefault<IntHasher>>;

/// Pack a `(rank, tag)` matching key.
#[inline]
pub fn match_key(src: u32, tag: u32) -> u64 {
    ((src as u64) << 32) | tag as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_key_is_injective_on_halves() {
        assert_ne!(match_key(1, 2), match_key(2, 1));
        assert_eq!(match_key(7, 9) >> 32, 7);
        assert_eq!(match_key(7, 9) & 0xFFFF_FFFF, 9);
    }

    #[test]
    fn intmap_works() {
        let mut m: IntMap<u32> = IntMap::default();
        for i in 0..1000u32 {
            m.insert(match_key(i, i * 3), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&match_key(i, i * 3)), Some(&i));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn hasher_spreads_sequential_keys() {
        // Sequential keys must not collide in low bits (HashMap uses them).
        use std::collections::HashSet;
        let mut low_bits = HashSet::new();
        for i in 0..64u64 {
            let mut h = IntHasher::default();
            h.write_u64(i);
            low_bits.insert(h.finish() & 0xFF);
        }
        // With 64 keys into 256 buckets, expect a healthy spread.
        assert!(low_bits.len() > 40, "only {} distinct low bytes", low_bits.len());
    }
}
