//! The discrete-event simulation engine.
//!
//! The engine executes one [`Program`] per rank with MPI-like semantics:
//!
//! * **Eager** messages (≤ eager threshold) are buffered: the sender's
//!   blocking `Send` completes once the payload has been injected into the
//!   sender-side resource (NIC rail or memory channel); the payload then
//!   drains at the receiver and is matched against posted receives, or
//!   parked in an unexpected-message queue (a later match pays an extra
//!   copy).
//! * **Rendezvous** messages (&gt; eager threshold) first exchange a
//!   request-to-send / clear-to-send control round trip; the payload only
//!   moves once the receive is posted, and the sender stays engaged until
//!   injection finishes (synchronous-send behaviour).
//! * Nonblocking `ISend`/`IRecv` operations complete in the background and
//!   are collected by `WaitAll`.
//!
//! Bandwidth contention is modelled with per-node FIFO resources (NIC
//! transmit, NIC receive, shared-memory channels); see
//! [`crate::resource::FifoResource`]. One deliberate approximation keeps
//! the event count low: a message's receive-side drain slot is reserved at
//! injection time rather than at wire arrival, so two messages arriving
//! nearly simultaneously from different sources are drained in
//! *reservation* order, which can differ from arrival order by at most the
//! sender-side queueing difference. Collective schedules are insensitive
//! to this reordering.
//!
//! The engine is exactly deterministic: ties are broken by event sequence
//! number, and no randomness exists below the benchmark layer.

use std::cmp::Reverse;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, VecDeque};

use crate::error::SimError;
use crate::model::NetworkModel;
use crate::program::{Instr, LoopBytes, Program, SegInstr, Tag};
use crate::resource::FifoResource;
use crate::stats::SimResult;
use crate::time::SimTime;
use crate::topology::{Rank, Topology};
use crate::util::{match_key, IntMap};

/// A configured simulator for one machine model and topology.
///
/// `run` may be called many times with different programs; each run is
/// independent.
pub struct Simulator<'m> {
    model: &'m NetworkModel,
    topo: Topology,
}

impl<'m> Simulator<'m> {
    /// Create a simulator for `model` and `topo`.
    pub fn new(model: &'m NetworkModel, topo: &Topology) -> Self {
        Simulator { model, topo: topo.clone() }
    }

    /// Execute one program per rank, all starting at t = 0.
    pub fn run(&self, programs: &[Program]) -> Result<SimResult, SimError> {
        self.run_skewed(programs, None)
    }

    /// Execute with per-rank start offsets (process skew injection).
    pub fn run_with_skew(
        &self,
        programs: &[Program],
        starts: &[SimTime],
    ) -> Result<SimResult, SimError> {
        self.run_skewed(programs, Some(starts))
    }

    fn run_skewed(
        &self,
        programs: &[Program],
        starts: Option<&[SimTime]>,
    ) -> Result<SimResult, SimError> {
        let p = self.topo.size();
        if programs.len() != p as usize {
            return Err(SimError::ProgramCountMismatch { programs: programs.len(), ranks: p });
        }
        if let Some(s) = starts {
            if s.len() != p as usize {
                return Err(SimError::ProgramCountMismatch { programs: s.len(), ranks: p });
            }
        }
        for (r, prog) in programs.iter().enumerate() {
            prog.validate(r as Rank, p)
                .map_err(|reason| SimError::InvalidProgram { rank: r as Rank, reason })?;
        }
        let mut span = mpcp_obs::span("simulate")
            .attr("nodes", self.topo.nodes())
            .attr("ranks", p);
        let wall = mpcp_obs::maybe_now();
        let mut exec = Exec::new(self.model, &self.topo, programs, starts);
        let result = exec.run();
        if let Ok(r) = &result {
            mpcp_obs::counter_add!("simnet.runs", 1);
            mpcp_obs::counter_add!("simnet.events", r.events);
            mpcp_obs::counter_add!("simnet.messages", r.messages);
            mpcp_obs::counter_add!("simnet.bytes_inter", r.bytes_inter);
            mpcp_obs::counter_add!("simnet.bytes_intra", r.bytes_intra);
            mpcp_obs::hist_record!("simnet.run.events", r.events);
            span.set_attr("events", r.events);
            span.set_attr("messages", r.messages);
            span.set_attr("bytes_inter", r.bytes_inter);
            span.set_attr("bytes_intra", r.bytes_intra);
            span.set_attr("sim_us", r.makespan().as_micros_f64());
        }
        mpcp_obs::record_elapsed("simnet.run.wall_ns", wall);
        result
    }
}

// ---------------------------------------------------------------------------
// internal execution state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// Rank CPU becomes free; fetch and issue the next instruction.
    Advance { rank: Rank },
    /// A completion for the rank's current blocking instruction.
    CurDone { rank: Rank },
    /// A completion for a nonblocking operation.
    NbDone { rank: Rank },
    /// Sender-side injection finished.
    SenderDone { msg: u32 },
    /// Payload fully drained at the receiver node.
    Delivery { msg: u32 },
    /// Rendezvous request-to-send reached the receiver.
    RtsArrive { msg: u32 },
    /// Rendezvous clear-to-send reached the sender.
    CtsArrive { msg: u32 },
}

#[derive(Clone, Copy, PartialEq, Eq)]
struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Msg {
    src: Rank,
    dst: Rank,
    bytes: u64,
    tag: Tag,
    /// Blocking send: sender-side completion unblocks the current instr.
    send_counts: bool,
    /// Matched receive was blocking (set at match time).
    recv_counts: bool,
    rendezvous: bool,
}

struct PostedRecv {
    bytes: u64,
    counts_current: bool,
}

/// Per-rank interpreter and matching state.
struct RankState<'p> {
    pc: usize,
    body: Option<&'p [SegInstr]>,
    loop_bytes: LoopBytes,
    loop_iters: u32,
    loop_iter: u32,
    loop_pc: usize,
    /// Completions the current blocking instruction still needs.
    pending_current: u8,
    /// Nonblocking operations in flight.
    outstanding: u32,
    waiting_all: bool,
    finished: bool,
    finish_time: SimTime,
    /// Posted-but-unmatched receives, keyed by (src, tag).
    posted: IntMap<VecDeque<PostedRecv>>,
    /// Arrived-but-unmatched messages (eager payloads or rendezvous RTS).
    arrived: IntMap<VecDeque<u32>>,
}

impl<'p> RankState<'p> {
    fn new() -> Self {
        RankState {
            pc: 0,
            body: None,
            loop_bytes: LoopBytes::Fixed(0),
            loop_iters: 0,
            loop_iter: 0,
            loop_pc: 0,
            pending_current: 0,
            outstanding: 0,
            waiting_all: false,
            finished: false,
            finish_time: SimTime::ZERO,
            posted: IntMap::default(),
            arrived: IntMap::default(),
        }
    }
}

/// An instruction with loop bytes/tags resolved.
enum RInstr {
    Send { peer: Rank, bytes: u64, tag: Tag, blocking: bool },
    Recv { peer: Rank, bytes: u64, tag: Tag, blocking: bool },
    SendRecv { s_peer: Rank, s_bytes: u64, s_tag: Tag, r_peer: Rank, r_bytes: u64, r_tag: Tag },
    Compute { bytes: u64 },
    WaitAll,
}

struct Exec<'m, 'p> {
    model: &'m NetworkModel,
    topo: &'p Topology,
    programs: &'p [Program],
    ranks: Vec<RankState<'p>>,
    nic_tx: Vec<FifoResource>,
    nic_rx: Vec<FifoResource>,
    mem: Vec<FifoResource>,
    heap: BinaryHeap<Reverse<Event>>,
    msgs: Vec<Msg>,
    free_msgs: Vec<u32>,
    seq: u64,
    events: u64,
    delivered: u64,
    bytes_inter: u64,
    bytes_intra: u64,
    recv_bytes: Vec<u64>,
    sent_bytes: Vec<u64>,
    starts: Vec<SimTime>,
    error: Option<SimError>,
}

impl<'m, 'p> Exec<'m, 'p> {
    fn new(
        model: &'m NetworkModel,
        topo: &'p Topology,
        programs: &'p [Program],
        starts: Option<&[SimTime]>,
    ) -> Self {
        let p = topo.size() as usize;
        let n = topo.nodes() as usize;
        let starts: Vec<SimTime> = match starts {
            Some(s) => s.to_vec(),
            None => vec![SimTime::ZERO; p],
        };
        Exec {
            model,
            topo,
            programs,
            ranks: (0..p).map(|_| RankState::new()).collect(),
            nic_tx: (0..n).map(|_| FifoResource::new(model.rails)).collect(),
            nic_rx: (0..n).map(|_| FifoResource::new(model.rails)).collect(),
            mem: (0..n).map(|_| FifoResource::new(model.mem_channels)).collect(),
            heap: BinaryHeap::with_capacity(p * 2),
            msgs: Vec::with_capacity(256),
            free_msgs: Vec::new(),
            seq: 0,
            events: 0,
            delivered: 0,
            bytes_inter: 0,
            bytes_intra: 0,
            recv_bytes: vec![0; p],
            sent_bytes: vec![0; p],
            starts,
            error: None,
        }
    }

    #[inline]
    fn push_event(&mut self, time: SimTime, kind: EventKind) {
        self.seq += 1;
        self.heap.push(Reverse(Event { time, seq: self.seq, kind }));
    }

    fn alloc_msg(&mut self, msg: Msg) -> u32 {
        if let Some(id) = self.free_msgs.pop() {
            self.msgs[id as usize] = msg;
            id
        } else {
            self.msgs.push(msg);
            (self.msgs.len() - 1) as u32
        }
    }

    #[inline]
    fn free_msg(&mut self, id: u32) {
        self.free_msgs.push(id);
    }

    fn run(&mut self) -> Result<SimResult, SimError> {
        for r in 0..self.topo.size() {
            self.push_event(self.starts[r as usize], EventKind::Advance { rank: r });
        }
        while let Some(Reverse(ev)) = self.heap.pop() {
            self.events += 1;
            let t = ev.time;
            match ev.kind {
                EventKind::Advance { rank } | EventKind::CurDone { rank } => {
                    if matches!(ev.kind, EventKind::CurDone { .. }) {
                        let st = &mut self.ranks[rank as usize];
                        debug_assert!(st.pending_current > 0);
                        st.pending_current -= 1;
                        if st.pending_current > 0 {
                            continue;
                        }
                    }
                    self.advance(rank, t);
                }
                EventKind::NbDone { rank } => {
                    let st = &mut self.ranks[rank as usize];
                    debug_assert!(st.outstanding > 0);
                    st.outstanding -= 1;
                    if st.waiting_all && st.outstanding == 0 {
                        st.waiting_all = false;
                        self.advance(rank, t);
                    }
                }
                EventKind::SenderDone { msg } => self.on_sender_done(msg, t),
                EventKind::Delivery { msg } => self.on_delivery(msg, t),
                EventKind::RtsArrive { msg } => self.on_rts(msg, t),
                EventKind::CtsArrive { msg } => self.on_cts(msg, t),
            }
            if self.error.is_some() {
                break;
            }
        }
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let blocked: Vec<Rank> = (0..self.topo.size())
            .filter(|&r| !self.ranks[r as usize].finished)
            .collect();
        if !blocked.is_empty() {
            return Err(SimError::Deadlock { blocked });
        }
        Ok(SimResult {
            finish: self.ranks.iter().map(|r| r.finish_time).collect(),
            start: std::mem::take(&mut self.starts),
            events: self.events,
            messages: self.delivered,
            bytes_inter: self.bytes_inter,
            bytes_intra: self.bytes_intra,
            recv_bytes: std::mem::take(&mut self.recv_bytes),
            sent_bytes: std::mem::take(&mut self.sent_bytes),
        })
    }

    /// Fetch the next resolved instruction for `rank`, handling loop state.
    fn fetch_next(&mut self, rank: Rank) -> Option<RInstr> {
        let st = &mut self.ranks[rank as usize];
        loop {
            if let Some(body) = st.body {
                if st.loop_pc >= body.len() {
                    st.loop_iter += 1;
                    st.loop_pc = 0;
                    if st.loop_iter >= st.loop_iters {
                        st.body = None;
                        st.pc += 1;
                        continue;
                    }
                }
                let k = st.loop_iter;
                let b = st.loop_bytes.bytes_at(k, st.loop_iters);
                let si = body[st.loop_pc];
                st.loop_pc += 1;
                return Some(match si {
                    SegInstr::Send { peer, tag_base } => {
                        RInstr::Send { peer, bytes: b, tag: tag_base + k, blocking: true }
                    }
                    SegInstr::Recv { peer, tag_base } => {
                        RInstr::Recv { peer, bytes: b, tag: tag_base + k, blocking: true }
                    }
                    SegInstr::IRecv { peer, tag_base } => {
                        RInstr::Recv { peer, bytes: b, tag: tag_base + k, blocking: false }
                    }
                    SegInstr::ISend { peer, tag_base } => {
                        RInstr::Send { peer, bytes: b, tag: tag_base + k, blocking: false }
                    }
                    SegInstr::WaitAll => RInstr::WaitAll,
                    SegInstr::SendRecv { send_peer, send_tag_base, recv_peer, recv_tag_base } => {
                        RInstr::SendRecv {
                            s_peer: send_peer,
                            s_bytes: b,
                            s_tag: send_tag_base + k,
                            r_peer: recv_peer,
                            r_bytes: b,
                            r_tag: recv_tag_base + k,
                        }
                    }
                    SegInstr::Compute => RInstr::Compute { bytes: b },
                });
            }
            let instrs = self.programs[rank as usize].instrs();
            if st.pc >= instrs.len() {
                return None;
            }
            match &instrs[st.pc] {
                Instr::Send { peer, bytes, tag } => {
                    st.pc += 1;
                    return Some(RInstr::Send { peer: *peer, bytes: *bytes, tag: *tag, blocking: true });
                }
                Instr::Recv { peer, bytes, tag } => {
                    st.pc += 1;
                    return Some(RInstr::Recv { peer: *peer, bytes: *bytes, tag: *tag, blocking: true });
                }
                Instr::ISend { peer, bytes, tag } => {
                    st.pc += 1;
                    return Some(RInstr::Send { peer: *peer, bytes: *bytes, tag: *tag, blocking: false });
                }
                Instr::IRecv { peer, bytes, tag } => {
                    st.pc += 1;
                    return Some(RInstr::Recv { peer: *peer, bytes: *bytes, tag: *tag, blocking: false });
                }
                Instr::SendRecv { send_peer, send_bytes, send_tag, recv_peer, recv_bytes, recv_tag } => {
                    st.pc += 1;
                    return Some(RInstr::SendRecv {
                        s_peer: *send_peer,
                        s_bytes: *send_bytes,
                        s_tag: *send_tag,
                        r_peer: *recv_peer,
                        r_bytes: *recv_bytes,
                        r_tag: *recv_tag,
                    });
                }
                Instr::Compute { bytes } => {
                    st.pc += 1;
                    return Some(RInstr::Compute { bytes: *bytes });
                }
                Instr::WaitAll => {
                    st.pc += 1;
                    return Some(RInstr::WaitAll);
                }
                Instr::Loop { iters, bytes, body } => {
                    st.body = Some(body);
                    st.loop_bytes = *bytes;
                    st.loop_iters = *iters;
                    st.loop_iter = 0;
                    st.loop_pc = 0;
                    // Loop re-enters at top; body items resolved there.
                }
            }
        }
    }

    /// Issue instructions for `rank` starting at `now` until it blocks or
    /// finishes. Cheap nonblocking instructions continue inline without
    /// heap traffic.
    fn advance(&mut self, rank: Rank, mut now: SimTime) {
        loop {
            let Some(instr) = self.fetch_next(rank) else {
                let st = &mut self.ranks[rank as usize];
                st.finished = true;
                st.finish_time = now;
                return;
            };
            match instr {
                RInstr::Compute { bytes } => {
                    // Must yield a real event: continuing inline would let
                    // later instructions mutate matching state (post
                    // receives, reserve resources) at the *current* event
                    // time while claiming a future logical time, breaking
                    // causality for any message arriving in between.
                    self.push_event(now + self.model.reduce_time(bytes), EventKind::Advance {
                        rank,
                    });
                    return;
                }
                RInstr::WaitAll => {
                    let st = &mut self.ranks[rank as usize];
                    if st.outstanding > 0 {
                        st.waiting_all = true;
                        return;
                    }
                }
                RInstr::Send { peer, bytes, tag, blocking } => {
                    let cpu_done = now + self.model.o_send_t();
                    self.start_send(rank, peer, bytes, tag, blocking, cpu_done);
                    if blocking {
                        self.ranks[rank as usize].pending_current = 1;
                        return;
                    }
                    // ISend: CPU cost serializes posts; injection proceeds
                    // in the background.
                    self.ranks[rank as usize].outstanding += 1;
                    now = cpu_done;
                }
                RInstr::Recv { peer, bytes, tag, blocking } => {
                    if blocking {
                        self.ranks[rank as usize].pending_current = 1;
                        self.post_recv(rank, peer, bytes, tag, true, now);
                        return;
                    }
                    self.ranks[rank as usize].outstanding += 1;
                    self.post_recv(rank, peer, bytes, tag, false, now);
                }
                RInstr::SendRecv { s_peer, s_bytes, s_tag, r_peer, r_bytes, r_tag } => {
                    self.ranks[rank as usize].pending_current = 2;
                    let cpu_done = now + self.model.o_send_t();
                    self.start_send(rank, s_peer, s_bytes, s_tag, true, cpu_done);
                    self.post_recv(rank, r_peer, r_bytes, r_tag, true, now);
                    return;
                }
            }
            if self.error.is_some() {
                return;
            }
        }
    }

    /// Begin a send whose CPU posting completes at `ready`. For eager
    /// messages the payload is injected immediately; rendezvous messages
    /// first fly an RTS to the receiver.
    fn start_send(
        &mut self,
        src: Rank,
        dst: Rank,
        bytes: u64,
        tag: Tag,
        send_counts: bool,
        ready: SimTime,
    ) {
        let intra = self.topo.same_node(src, dst);
        let eager = if intra {
            self.model.is_eager_intra(bytes)
        } else {
            self.model.is_eager_inter(bytes)
        };
        let id = self.alloc_msg(Msg {
            src,
            dst,
            bytes,
            tag,
            send_counts,
            recv_counts: false,
            rendezvous: !eager,
        });
        if eager {
            self.inject(id, ready);
        } else {
            let alpha = if intra { self.model.alpha_intra_t() } else { self.model.alpha_inter_t() };
            self.push_event(ready + alpha, EventKind::RtsArrive { msg: id });
        }
    }

    /// Reserve transfer resources for message `id` starting no earlier
    /// than `ready`; schedules sender-side completion and delivery.
    fn inject(&mut self, id: u32, ready: SimTime) {
        let (src, dst, bytes) = {
            let m = &self.msgs[id as usize];
            (m.src, m.dst, m.bytes)
        };
        let src_node = self.topo.node_of(src) as usize;
        let dst_node = self.topo.node_of(dst) as usize;
        if src_node == dst_node {
            let dur = self.model.mem_time(bytes);
            let (_, copy_end) = self.mem[src_node].reserve(ready, dur);
            self.push_event(copy_end, EventKind::SenderDone { msg: id });
            self.push_event(copy_end + self.model.alpha_intra_t(), EventKind::Delivery { msg: id });
        } else {
            let dur = self.model.rail_time(bytes);
            let (_, tx_end) = self.nic_tx[src_node].reserve(ready, dur);
            let arrival = tx_end + self.model.alpha_inter_t();
            let (_, rx_end) = self.nic_rx[dst_node].reserve(arrival, dur);
            self.push_event(tx_end, EventKind::SenderDone { msg: id });
            self.push_event(rx_end, EventKind::Delivery { msg: id });
        }
    }

    /// Post a receive: match an already-arrived message, grant a waiting
    /// rendezvous, or park the posting.
    fn post_recv(
        &mut self,
        rank: Rank,
        src: Rank,
        bytes: u64,
        tag: Tag,
        counts_current: bool,
        now: SimTime,
    ) {
        let key = match_key(src, tag);
        let st = &mut self.ranks[rank as usize];
        if let Entry::Occupied(mut e) = st.arrived.entry(key) {
            let id = e.get_mut().pop_front().expect("arrived queues are never left empty");
            if e.get().is_empty() {
                e.remove();
            }
            let (mbytes, rendezvous) = {
                let m = &self.msgs[id as usize];
                (m.bytes, m.rendezvous)
            };
            if mbytes != bytes {
                self.error = Some(SimError::SizeMismatch { src, dst: rank, tag, sent: mbytes, expected: bytes });
                return;
            }
            if rendezvous {
                // RTS was waiting: grant the transfer now.
                self.msgs[id as usize].recv_counts = counts_current;
                let intra = self.topo.same_node(src, rank);
                let alpha = if intra { self.model.alpha_intra_t() } else { self.model.alpha_inter_t() };
                self.push_event(now + alpha, EventKind::CtsArrive { msg: id });
            } else {
                // Eager payload already buffered: pay the unexpected copy.
                let done = now + self.model.o_recv_t() + self.model.unexpected_time(bytes);
                self.finish_recv(id, rank, counts_current, done);
            }
        } else {
            self.ranks[rank as usize]
                .posted
                .entry(key)
                .or_default()
                .push_back(PostedRecv { bytes, counts_current });
        }
    }

    fn on_sender_done(&mut self, id: u32, t: SimTime) {
        let (src, bytes, counts) = {
            let m = &self.msgs[id as usize];
            (m.src, m.bytes, m.send_counts)
        };
        self.sent_bytes[src as usize] += bytes;
        let st = &mut self.ranks[src as usize];
        if counts {
            debug_assert!(st.pending_current > 0);
            st.pending_current -= 1;
            if st.pending_current == 0 {
                self.advance(src, t);
            }
        } else {
            debug_assert!(st.outstanding > 0);
            st.outstanding -= 1;
            if st.waiting_all && st.outstanding == 0 {
                st.waiting_all = false;
                self.advance(src, t);
            }
        }
    }

    fn on_delivery(&mut self, id: u32, t: SimTime) {
        let (src, dst, bytes, tag, rendezvous, recv_counts) = {
            let m = &self.msgs[id as usize];
            (m.src, m.dst, m.bytes, m.tag, m.rendezvous, m.recv_counts)
        };
        if rendezvous {
            // Receive was matched at RTS/CTS time; complete it now.
            let done = t + self.model.o_recv_t();
            self.finish_recv(id, dst, recv_counts, done);
            return;
        }
        let key = match_key(src, tag);
        let st = &mut self.ranks[dst as usize];
        if let Entry::Occupied(mut e) = st.posted.entry(key) {
            let posted = e.get_mut().pop_front().expect("posted queues are never left empty");
            if e.get().is_empty() {
                e.remove();
            }
            if posted.bytes != bytes {
                self.error = Some(SimError::SizeMismatch {
                    src,
                    dst,
                    tag,
                    sent: bytes,
                    expected: posted.bytes,
                });
                return;
            }
            let done = t + self.model.o_recv_t();
            self.finish_recv(id, dst, posted.counts_current, done);
        } else {
            st.arrived.entry(key).or_default().push_back(id);
        }
    }

    fn on_rts(&mut self, id: u32, t: SimTime) {
        let (src, dst, bytes, tag) = {
            let m = &self.msgs[id as usize];
            (m.src, m.dst, m.bytes, m.tag)
        };
        let key = match_key(src, tag);
        let st = &mut self.ranks[dst as usize];
        if let Entry::Occupied(mut e) = st.posted.entry(key) {
            let posted = e.get_mut().pop_front().expect("posted queues are never left empty");
            if e.get().is_empty() {
                e.remove();
            }
            if posted.bytes != bytes {
                self.error = Some(SimError::SizeMismatch {
                    src,
                    dst,
                    tag,
                    sent: bytes,
                    expected: posted.bytes,
                });
                return;
            }
            self.msgs[id as usize].recv_counts = posted.counts_current;
            let intra = self.topo.same_node(src, dst);
            let alpha = if intra { self.model.alpha_intra_t() } else { self.model.alpha_inter_t() };
            self.push_event(t + alpha, EventKind::CtsArrive { msg: id });
        } else {
            st.arrived.entry(key).or_default().push_back(id);
        }
    }

    fn on_cts(&mut self, id: u32, t: SimTime) {
        // Clear-to-send back at the sender: move the payload.
        self.inject(id, t);
    }

    /// Account a completed receive and route its completion (blocking →
    /// `CurDone`, nonblocking → `NbDone`) at time `done`.
    fn finish_recv(&mut self, id: u32, dst: Rank, counts_current: bool, done: SimTime) {
        let (src, bytes) = {
            let m = &self.msgs[id as usize];
            (m.src, m.bytes)
        };
        self.delivered += 1;
        self.recv_bytes[dst as usize] += bytes;
        if self.topo.same_node(src, dst) {
            self.bytes_intra += bytes;
        } else {
            self.bytes_inter += bytes;
        }
        let kind = if counts_current {
            EventKind::CurDone { rank: dst }
        } else {
            EventKind::NbDone { rank: dst }
        };
        self.push_event(done, kind);
        self.free_msg(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::program::{Instr, SegInstr, TAG_STRIDE};

    /// A round-numbers model for hand-computable assertions:
    /// alpha_inter = 1 us, 1 GB/s rails (1 ns/byte), o = 0.1 us.
    pub(crate) fn test_model() -> NetworkModel {
        NetworkModel {
            alpha_inter: 1e-6,
            beta_rail: 1e-9,
            rails: 1,
            alpha_intra: 0.2e-6,
            beta_mem: 0.25e-9,
            mem_channels: 2,
            o_send: 0.1e-6,
            o_recv: 0.1e-6,
            eager_inter: 4096,
            eager_intra: 16384,
            gamma_reduce: 0.5e-9,
            beta_unexpected: 0.0,
        }
    }

    fn run2(programs: Vec<Program>, nodes: u32, ppn: u32) -> SimResult {
        let model = test_model();
        let topo = Topology::new(nodes, ppn);
        Simulator::new(&model, &topo).run(&programs).unwrap()
    }

    #[test]
    fn eager_ping_has_expected_latency() {
        // 1000-byte eager message across nodes:
        // o_s(0.1) + tx(1.0) + alpha(1.0) + rx(1.0) + o_r(0.1) = 3.2 us
        let r = run2(
            vec![
                Program::from_instrs(vec![Instr::send(1, 1000, 0)]),
                Program::from_instrs(vec![Instr::recv(0, 1000, 0)]),
            ],
            2,
            1,
        );
        let us = r.finish[1].as_micros_f64();
        assert!((us - 3.2).abs() < 1e-6, "got {us}");
        // Sender unblocks after injection, before remote delivery:
        // o_s + tx = 1.1 us.
        let s = r.finish[0].as_micros_f64();
        assert!((s - 1.1).abs() < 1e-6, "got {s}");
        assert_eq!(r.messages, 1);
        assert_eq!(r.bytes_inter, 1000);
        assert_eq!(r.bytes_intra, 0);
    }

    #[test]
    fn intra_node_ping_uses_memory_channel() {
        // 1000 bytes intra-node: o_s + copy(0.25us) + alpha_intra(0.2) + o_r
        let r = run2(
            vec![
                Program::from_instrs(vec![Instr::send(1, 1000, 0)]),
                Program::from_instrs(vec![Instr::recv(0, 1000, 0)]),
            ],
            1,
            2,
        );
        let us = r.finish[1].as_micros_f64();
        assert!((us - (0.1 + 0.25 + 0.2 + 0.1)).abs() < 1e-6, "got {us}");
        assert_eq!(r.bytes_intra, 1000);
    }

    #[test]
    fn rendezvous_waits_for_receiver() {
        // Message above eager threshold; receiver posts late after a
        // compute of 100us. Total must exceed 100us.
        let bytes = 100_000; // > 4096 eager
        let r = run2(
            vec![
                Program::from_instrs(vec![Instr::send(1, bytes, 0)]),
                Program::from_instrs(vec![
                    Instr::Compute { bytes: 200_000 }, // 100 us
                    Instr::recv(0, bytes, 0),
                ]),
            ],
            2,
            1,
        );
        let recv_done = r.finish[1].as_micros_f64();
        // compute(100) + cts(1.0) + tx(100) + alpha(1) + rx(100) + o_r(0.1)
        let expected = 100.0 + 1.0 + 100.0 + 1.0 + 100.0 + 0.1;
        assert!((recv_done - expected).abs() < 0.2, "got {recv_done} want {expected}");
        // Blocking rendezvous send completes only after injection, which
        // cannot begin before the receive is posted.
        assert!(r.finish[0].as_micros_f64() > 100.0);
    }

    #[test]
    fn eager_send_completes_locally_even_if_recv_late() {
        let r = run2(
            vec![
                Program::from_instrs(vec![Instr::send(1, 100, 0)]),
                Program::from_instrs(vec![
                    Instr::Compute { bytes: 2_000_000 }, // 1000 us
                    Instr::recv(0, 100, 0),
                ]),
            ],
            2,
            1,
        );
        assert!(r.finish[0].as_micros_f64() < 2.0);
        assert!(r.finish[1].as_micros_f64() >= 1000.0);
    }

    #[test]
    fn deadlock_is_detected() {
        let err = Simulator::new(&test_model(), &Topology::new(2, 1))
            .run(&[
                Program::from_instrs(vec![Instr::recv(1, 10, 0)]),
                Program::from_instrs(vec![Instr::recv(0, 10, 0)]),
            ])
            .unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn size_mismatch_is_detected() {
        let err = Simulator::new(&test_model(), &Topology::new(2, 1))
            .run(&[
                Program::from_instrs(vec![Instr::send(1, 10, 0)]),
                Program::from_instrs(vec![Instr::recv(0, 20, 0)]),
            ])
            .unwrap_err();
        assert!(matches!(err, SimError::SizeMismatch { .. }));
    }

    #[test]
    fn program_count_mismatch() {
        let err = Simulator::new(&test_model(), &Topology::new(2, 1))
            .run(&[Program::empty()])
            .unwrap_err();
        assert!(matches!(err, SimError::ProgramCountMismatch { .. }));
    }

    #[test]
    fn nic_contention_serializes_single_rail() {
        // Two ranks on node 0 each send 4000 eager bytes to node 1.
        // Single rail: the two injections serialize (~8 us of wire time).
        let r = run2(
            vec![
                Program::from_instrs(vec![Instr::send(2, 4000, 0)]),
                Program::from_instrs(vec![Instr::send(3, 4000, 1)]),
                Program::from_instrs(vec![Instr::recv(0, 4000, 0)]),
                Program::from_instrs(vec![Instr::recv(1, 4000, 1)]),
            ],
            2,
            2,
        );
        let last = r.makespan().as_micros_f64();
        // Serialized: o_s + 2*tx(4) + alpha + rx(4) + o_r ~ 13.2 us for the
        // second flow. Parallel rails would give ~9.2 us.
        assert!(last > 12.0, "expected NIC serialization, got {last}");
    }

    #[test]
    fn dual_rail_parallelizes() {
        let mut model = test_model();
        model.rails = 2;
        let topo = Topology::new(2, 2);
        let programs = vec![
            Program::from_instrs(vec![Instr::send(2, 4000, 0)]),
            Program::from_instrs(vec![Instr::send(3, 4000, 1)]),
            Program::from_instrs(vec![Instr::recv(0, 4000, 0)]),
            Program::from_instrs(vec![Instr::recv(1, 4000, 1)]),
        ];
        let r = Simulator::new(&model, &topo).run(&programs).unwrap();
        let last = r.makespan().as_micros_f64();
        assert!(last < 10.0, "expected rail parallelism, got {last}");
    }

    #[test]
    fn segmentation_pipelines_a_relay() {
        // 0 -> 1 -> 2 relay of 64 KiB (rendezvous-free via small segments).
        let m = 65536u64;
        let unsegmented = {
            let model = test_model();
            let topo = Topology::new(3, 1);
            // One big rendezvous hop at a time.
            Simulator::new(&model, &topo)
                .run(&[
                    Program::from_instrs(vec![Instr::send(1, m, 0)]),
                    Program::from_instrs(vec![Instr::recv(0, m, 0), Instr::send(2, m, 1)]),
                    Program::from_instrs(vec![Instr::recv(1, m, 1)]),
                ])
                .unwrap()
                .makespan()
        };
        let segmented = {
            let model = test_model();
            let topo = Topology::new(3, 1);
            let seg = 2048u64;
            Simulator::new(&model, &topo)
                .run(&[
                    Program::from_instrs(vec![Instr::seg_loop(m, seg, vec![SegInstr::Send {
                        peer: 1,
                        tag_base: 0,
                    }])]),
                    Program::from_instrs(vec![Instr::seg_loop(m, seg, vec![
                        SegInstr::Recv { peer: 0, tag_base: 0 },
                        SegInstr::Send { peer: 2, tag_base: TAG_STRIDE },
                    ])]),
                    Program::from_instrs(vec![Instr::seg_loop(m, seg, vec![SegInstr::Recv {
                        peer: 1,
                        tag_base: TAG_STRIDE,
                    }])]),
                ])
                .unwrap()
                .makespan()
        };
        assert!(
            segmented.as_secs_f64() < 0.8 * unsegmented.as_secs_f64(),
            "segmented {segmented} vs unsegmented {unsegmented}"
        );
    }

    #[test]
    fn isend_waitall_exchange() {
        // Full exchange among 4 ranks with nonblocking ops.
        let p = 4u32;
        let programs: Vec<Program> = (0..p)
            .map(|r| {
                let mut instrs = Vec::new();
                for peer in 0..p {
                    if peer != r {
                        instrs.push(Instr::IRecv { peer, bytes: 512, tag: r });
                    }
                }
                for peer in 0..p {
                    if peer != r {
                        instrs.push(Instr::ISend { peer, bytes: 512, tag: peer });
                    }
                }
                instrs.push(Instr::WaitAll);
                Program::from_instrs(instrs)
            })
            .collect();
        let r = run2(programs, 2, 2);
        assert_eq!(r.messages, (p * (p - 1)) as u64);
        for rank in 0..p as usize {
            assert_eq!(r.recv_bytes[rank], 512 * (p as u64 - 1));
            assert_eq!(r.sent_bytes[rank], 512 * (p as u64 - 1));
        }
    }

    #[test]
    fn sendrecv_ring_rotation() {
        // 4 ranks rotate a token around a ring with SendRecv.
        let p = 4u32;
        let programs: Vec<Program> = (0..p)
            .map(|r| {
                Program::from_instrs(vec![Instr::SendRecv {
                    send_peer: (r + 1) % p,
                    send_bytes: 256,
                    send_tag: 7,
                    recv_peer: (r + p - 1) % p,
                    recv_bytes: 256,
                    recv_tag: 7,
                }])
            })
            .collect();
        let r = run2(programs, 2, 2);
        assert_eq!(r.messages, p as u64);
    }

    #[test]
    fn skewed_start_delays_completion() {
        let model = test_model();
        let topo = Topology::new(2, 1);
        let programs = vec![
            Program::from_instrs(vec![Instr::send(1, 100, 0)]),
            Program::from_instrs(vec![Instr::recv(0, 100, 0)]),
        ];
        let sim = Simulator::new(&model, &topo);
        let base = sim.run(&programs).unwrap().makespan();
        let skewed = sim
            .run_with_skew(&programs, &[SimTime::from_micros_f64(50.0), SimTime::ZERO])
            .unwrap();
        assert!(skewed.makespan().as_micros_f64() >= base.as_micros_f64() + 49.0);
    }

    #[test]
    fn fixed_loop_runs_each_iteration() {
        let r = run2(
            vec![
                Program::from_instrs(vec![Instr::fixed_loop(5, 128, vec![SegInstr::Send {
                    peer: 1,
                    tag_base: 0,
                }])]),
                Program::from_instrs(vec![Instr::fixed_loop(5, 128, vec![SegInstr::Recv {
                    peer: 0,
                    tag_base: 0,
                }])]),
            ],
            2,
            1,
        );
        assert_eq!(r.messages, 5);
        assert_eq!(r.recv_bytes[1], 5 * 128);
    }

    #[test]
    fn unexpected_messages_match_on_late_post() {
        // Rank 1 computes first, so three eager sends queue unexpectedly,
        // then all three receives match in order.
        let r = run2(
            vec![
                Program::from_instrs(vec![
                    Instr::send(1, 64, 0),
                    Instr::send(1, 64, 1),
                    Instr::send(1, 64, 2),
                ]),
                Program::from_instrs(vec![
                    Instr::Compute { bytes: 1_000_000 },
                    Instr::recv(0, 64, 2),
                    Instr::recv(0, 64, 0),
                    Instr::recv(0, 64, 1),
                ]),
            ],
            2,
            1,
        );
        assert_eq!(r.messages, 3);
    }

    #[test]
    fn zero_byte_messages_synchronize() {
        // Barrier-style token: costs latency + overheads only.
        let r = run2(
            vec![
                Program::from_instrs(vec![Instr::send(1, 0, 0)]),
                Program::from_instrs(vec![Instr::recv(0, 0, 0)]),
            ],
            2,
            1,
        );
        let us = r.finish[1].as_micros_f64();
        // o_s + alpha + o_r = 1.2 us (zero wire time).
        assert!((us - 1.2).abs() < 1e-6, "got {us}");
        assert_eq!(r.bytes_inter, 0);
        assert_eq!(r.messages, 1);
    }

    #[test]
    fn intra_node_rendezvous_handshakes() {
        // Above the intra-node eager limit (16384 in the test model):
        // the send must wait for the receive to be posted.
        let bytes = 60_000u64;
        let r = run2(
            vec![
                Program::from_instrs(vec![Instr::send(1, bytes, 0)]),
                Program::from_instrs(vec![
                    Instr::Compute { bytes: 400_000 }, // 200 us
                    Instr::recv(0, bytes, 0),
                ]),
            ],
            1,
            2,
        );
        // Sender cannot complete before the receiver posts at 200 us.
        assert!(r.finish[0].as_micros_f64() > 200.0);
    }

    #[test]
    fn waitall_with_nothing_outstanding_is_free() {
        let r = run2(
            vec![
                Program::from_instrs(vec![Instr::WaitAll, Instr::send(1, 8, 0)]),
                Program::from_instrs(vec![Instr::WaitAll, Instr::recv(0, 8, 0), Instr::WaitAll]),
            ],
            2,
            1,
        );
        assert_eq!(r.messages, 1);
    }

    #[test]
    fn mem_channels_limit_intra_node_concurrency() {
        // 4 concurrent intra-node copies on 2 channels take ~2x the
        // time of 2 copies.
        let mut model = test_model();
        model.mem_channels = 2;
        let topo = Topology::new(1, 8);
        let mk = |pairs: &[(u32, u32)]| -> Vec<Program> {
            let mut progs = vec![Vec::new(); 8];
            for (i, &(s, d)) in pairs.iter().enumerate() {
                progs[s as usize].push(Instr::send(d, 8000, i as u32));
                progs[d as usize].push(Instr::recv(s, 8000, i as u32));
            }
            progs.into_iter().map(Program::from_instrs).collect()
        };
        let sim = Simulator::new(&model, &topo);
        let two = sim.run(&mk(&[(0, 1), (2, 3)])).unwrap().makespan();
        let four = sim.run(&mk(&[(0, 1), (2, 3), (4, 5), (6, 7)])).unwrap().makespan();
        assert!(four.as_secs_f64() > 1.7 * two.as_secs_f64() - 1e-6,
            "two {two} four {four}");
    }

    #[test]
    fn nonblocking_ops_inside_segment_loops() {
        // Two producers feed one consumer per segment; the consumer
        // posts both receives nonblocking and collects them together.
        let r = run2(
            vec![
                Program::from_instrs(vec![Instr::seg_loop(8192, 2048, vec![SegInstr::Send {
                    peer: 2,
                    tag_base: 0,
                }])]),
                Program::from_instrs(vec![Instr::seg_loop(8192, 2048, vec![SegInstr::Send {
                    peer: 2,
                    tag_base: TAG_STRIDE,
                }])]),
                Program::from_instrs(vec![Instr::seg_loop(8192, 2048, vec![
                    SegInstr::IRecv { peer: 0, tag_base: 0 },
                    SegInstr::IRecv { peer: 1, tag_base: TAG_STRIDE },
                    SegInstr::WaitAll,
                ])]),
            ],
            3,
            1,
        );
        assert_eq!(r.messages, 8);
        assert_eq!(r.recv_bytes[2], 2 * 8192);
    }

    #[test]
    fn isend_inside_segment_loop_pipelines() {
        // A relay that forwards nonblocking can overlap its receive of
        // segment k+1 with the injection of segment k.
        let r = run2(
            vec![
                Program::from_instrs(vec![Instr::seg_loop(65536, 1024, vec![SegInstr::Send {
                    peer: 1,
                    tag_base: 0,
                }])]),
                Program::from_instrs(vec![
                    Instr::seg_loop(65536, 1024, vec![
                        SegInstr::Recv { peer: 0, tag_base: 0 },
                        SegInstr::ISend { peer: 2, tag_base: TAG_STRIDE },
                    ]),
                    Instr::WaitAll,
                ]),
                Program::from_instrs(vec![Instr::seg_loop(65536, 1024, vec![SegInstr::Recv {
                    peer: 1,
                    tag_base: TAG_STRIDE,
                }])]),
            ],
            3,
            1,
        );
        assert_eq!(r.recv_bytes[2], 65536);
        assert_eq!(r.messages, 2 * 64);
    }

    #[test]
    fn real_machine_models_run() {
        for machine in Machine::all() {
            let topo = Topology::new(2, 2);
            let programs = vec![
                Program::from_instrs(vec![Instr::send(2, 1 << 20, 0)]),
                Program::empty(),
                Program::from_instrs(vec![Instr::recv(0, 1 << 20, 0)]),
                Program::empty(),
            ];
            let r = Simulator::new(&machine.model, &topo).run(&programs).unwrap();
            assert!(r.makespan().as_secs_f64() > 0.0, "{}", machine.name);
        }
    }
}
