//! # mpcp-simnet — discrete-event cluster interconnect simulator
//!
//! This crate provides the *machine substrate* for the CLUSTER 2020
//! reproduction "Predicting MPI Collective Communication Performance Using
//! Machine Learning". The paper benchmarks MPI collective algorithms on
//! real clusters (Hydra, Jupiter, SuperMUC-NG); here, the cluster is
//! replaced by a deterministic discrete-event simulation with a flow-level
//! network model:
//!
//! * per-node NIC resources with one or more **rails** (dual-rail
//!   OmniPath on Hydra), FIFO bandwidth sharing on both the transmit and
//!   receive side,
//! * a shared-memory channel per node for intra-node messages,
//! * LogGP-style CPU overheads (`o_send`, `o_recv`) and wire latency,
//! * an **eager/rendezvous** protocol switch at a configurable threshold,
//! * per-byte local-reduction cost for reduction collectives.
//!
//! Collective algorithms are expressed as per-rank [`Program`]s — compact
//! instruction sequences with a segment-loop construct so that deeply
//! segmented schedules (4 MiB broadcast in 1 KiB segments) stay O(1) in
//! memory per rank. The [`Simulator`] executes all rank programs to
//! completion and reports per-rank finish times.
//!
//! The simulation is *exactly deterministic*: all measurement noise is
//! layered on top by the `mpcp-benchmark` crate.
//!
//! ```
//! use mpcp_simnet::{Machine, Topology, Simulator, Program, Instr};
//!
//! // Two nodes, one process each; rank 0 sends 4 KiB to rank 1.
//! let machine = Machine::hydra();
//! let topo = Topology::new(2, 1);
//! let programs = vec![
//!     Program::from_instrs(vec![Instr::send(1, 4096, 0)]),
//!     Program::from_instrs(vec![Instr::recv(0, 4096, 0)]),
//! ];
//! let result = Simulator::new(&machine.model, &topo).run(&programs).unwrap();
//! assert!(result.makespan().as_secs_f64() > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod engine;
pub mod error;
pub mod machine;
pub mod model;
pub mod program;
pub mod resource;
pub mod stats;
pub mod time;
pub mod topology;
pub mod util;

pub use engine::Simulator;
pub use error::SimError;
pub use machine::Machine;
pub use model::NetworkModel;
pub use program::{Instr, LoopBytes, Program, SegInstr};
pub use stats::SimResult;
pub use time::SimTime;
pub use topology::{Rank, Topology};
