//! Flow-level network cost model (LogGP-flavoured, with explicit shared
//! resources).
//!
//! A point-to-point message of `b` bytes between ranks on *different*
//! nodes costs, end to end:
//!
//! ```text
//!   o_send                      (sender CPU)
//! + queueing at sender NIC      (FIFO over `rails` parallel rails)
//! + b · beta_rail               (injection on one rail)
//! + alpha_inter                 (wire latency)
//! + queueing at receiver NIC
//! + b · beta_rail               (drain on one rail)
//! + o_recv                      (receiver CPU)
//! ```
//!
//! Messages above `eager_inter` use a rendezvous protocol that adds a
//! request/clear-to-send round trip before the payload moves and makes the
//! send synchronous. Intra-node messages replace the NIC/wire terms with a
//! single reservation of the node's shared-memory channel(s).
//!
//! The per-node NIC FIFO is what produces the processes-per-node
//! sensitivity that the paper's selection problem hinges on: with 32 ranks
//! per node, 32 concurrent inter-node flows share the same rails.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// All cost parameters of a simulated machine's communication subsystem.
///
/// Bandwidth parameters are expressed as seconds **per byte** (`beta_*`),
/// latencies and overheads in seconds. See the module docs for how they
/// combine.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Inter-node wire latency (seconds).
    pub alpha_inter: f64,
    /// Per-rail inter-node time per byte (seconds/byte). One flow occupies
    /// one rail; aggregate node bandwidth is `rails / beta_rail`.
    pub beta_rail: f64,
    /// Number of NIC rails per node and direction (dual-rail OmniPath = 2).
    pub rails: u32,
    /// Intra-node latency (seconds).
    pub alpha_intra: f64,
    /// Shared-memory channel time per byte (seconds/byte), per channel.
    pub beta_mem: f64,
    /// Number of parallel shared-memory channels per node.
    pub mem_channels: u32,
    /// Sender CPU overhead per message (seconds).
    pub o_send: f64,
    /// Receiver CPU overhead per message (seconds).
    pub o_recv: f64,
    /// Eager/rendezvous switch-over for inter-node messages (bytes).
    pub eager_inter: u64,
    /// Eager/rendezvous switch-over for intra-node messages (bytes).
    pub eager_intra: u64,
    /// Local reduction cost per byte (seconds/byte), charged by
    /// `Instr::Compute` for reduction collectives.
    pub gamma_reduce: f64,
    /// Extra copy cost per byte for eager messages that arrive before the
    /// matching receive is posted (unexpected-message buffer copy).
    pub beta_unexpected: f64,
}

impl NetworkModel {
    /// Sender CPU overhead as simulation time.
    #[inline]
    pub fn o_send_t(&self) -> SimTime {
        SimTime::from_secs_f64(self.o_send)
    }

    /// Receiver CPU overhead as simulation time.
    #[inline]
    pub fn o_recv_t(&self) -> SimTime {
        SimTime::from_secs_f64(self.o_recv)
    }

    /// Inter-node wire latency as simulation time.
    #[inline]
    pub fn alpha_inter_t(&self) -> SimTime {
        SimTime::from_secs_f64(self.alpha_inter)
    }

    /// Intra-node latency as simulation time.
    #[inline]
    pub fn alpha_intra_t(&self) -> SimTime {
        SimTime::from_secs_f64(self.alpha_intra)
    }

    /// Rail occupancy for a `bytes`-byte inter-node transfer.
    #[inline]
    pub fn rail_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 * self.beta_rail)
    }

    /// Memory-channel occupancy for a `bytes`-byte intra-node transfer.
    #[inline]
    pub fn mem_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 * self.beta_mem)
    }

    /// Local reduction time for `bytes` bytes.
    #[inline]
    pub fn reduce_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 * self.gamma_reduce)
    }

    /// Unexpected-message copy time for `bytes` bytes.
    #[inline]
    pub fn unexpected_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 * self.beta_unexpected)
    }

    /// Whether an inter-node message of this size is sent eagerly.
    #[inline]
    pub fn is_eager_inter(&self, bytes: u64) -> bool {
        bytes <= self.eager_inter
    }

    /// Whether an intra-node message of this size is sent eagerly.
    #[inline]
    pub fn is_eager_intra(&self, bytes: u64) -> bool {
        bytes <= self.eager_intra
    }

    /// Sanity-check the parameter set; returns a description of the first
    /// violated constraint, if any.
    pub fn validate(&self) -> Result<(), String> {
        let positive = [
            ("alpha_inter", self.alpha_inter),
            ("beta_rail", self.beta_rail),
            ("alpha_intra", self.alpha_intra),
            ("beta_mem", self.beta_mem),
            ("o_send", self.o_send),
            ("o_recv", self.o_recv),
            ("gamma_reduce", self.gamma_reduce),
        ];
        for (name, v) in positive {
            if v <= 0.0 || !v.is_finite() {
                return Err(format!("{name} must be positive and finite, got {v}"));
            }
        }
        if self.beta_unexpected < 0.0 || !self.beta_unexpected.is_finite() {
            return Err(format!(
                "beta_unexpected must be non-negative, got {}",
                self.beta_unexpected
            ));
        }
        if self.rails == 0 {
            return Err("rails must be >= 1".into());
        }
        if self.mem_channels == 0 {
            return Err("mem_channels must be >= 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    
    use crate::machine::Machine;

    #[test]
    fn presets_validate() {
        for m in Machine::all() {
            m.model.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name));
        }
    }

    #[test]
    fn rail_time_scales_linearly() {
        let m = Machine::hydra().model;
        let t1 = m.rail_time(1 << 20);
        let t2 = m.rail_time(1 << 21);
        // Each conversion rounds independently; allow 1 ps of slack.
        assert!(t2.picos().abs_diff(2 * t1.picos()) <= 1);
    }

    #[test]
    fn eager_thresholds() {
        let m = Machine::hydra().model;
        assert!(m.is_eager_inter(1));
        assert!(!m.is_eager_inter(m.eager_inter + 1));
    }

    #[test]
    fn validate_rejects_bad_params() {
        let mut m = Machine::hydra().model;
        m.beta_rail = 0.0;
        assert!(m.validate().is_err());
        let mut m = Machine::hydra().model;
        m.rails = 0;
        assert!(m.validate().is_err());
    }
}
