//! Machine profiles mirroring Table I of the paper.
//!
//! The absolute parameter values are synthetic (the paper's testbeds are
//! not available), but they respect the relations the paper states:
//! Hydra has a dual-rail Intel OmniPath interconnect and roughly twice
//! Jupiter's bandwidth and twice its cores per node; Jupiter has an older
//! single-rail InfiniBand QDR fabric and slower (AMD Opteron) cores;
//! SuperMUC-NG is a large OmniPath system with 48-core Skylake nodes.

use serde::{Deserialize, Serialize};

use crate::model::NetworkModel;

/// A named machine: node/core limits plus a [`NetworkModel`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// Human-readable machine name (matches the paper: Hydra, Jupiter,
    /// SuperMUC-NG).
    pub name: String,
    /// Number of compute nodes available (Table I column `n`).
    pub max_nodes: u32,
    /// Maximum processes per node (Table I column "Max ppn").
    pub max_ppn: u32,
    /// Processor description, for Table I regeneration.
    pub processor: String,
    /// Interconnect description, for Table I regeneration.
    pub interconnect: String,
    /// The communication cost model.
    pub model: NetworkModel,
}

impl Machine {
    /// Hydra: 36 nodes, 32 ppn, dual-socket Xeon Gold 6130, dual-rail
    /// Intel OmniPath (the machine where most of the paper's datasets were
    /// collected).
    pub fn hydra() -> Machine {
        Machine {
            name: "Hydra".into(),
            max_nodes: 36,
            max_ppn: 32,
            processor: "Intel Xeon Gold 6130, 2.1 GHz, dual socket".into(),
            interconnect: "Intel OmniPath, dual-rail".into(),
            model: NetworkModel {
                alpha_inter: 0.9e-6,
                beta_rail: 1.0 / 12.3e9, // ~12.3 GB/s per rail
                rails: 2,
                alpha_intra: 0.25e-6,
                beta_mem: 1.0 / 8.0e9, // ~8 GB/s per memory channel
                mem_channels: 6,
                o_send: 0.20e-6,
                o_recv: 0.20e-6,
                eager_inter: 12 * 1024,
                eager_intra: 32 * 1024,
                gamma_reduce: 1.0 / 4.0e9,
                beta_unexpected: 1.0 / 10.0e9,
            },
        }
    }

    /// Jupiter: 35 nodes, 16 ppn, AMD Opteron 6134, single-rail Mellanox
    /// InfiniBand QDR — roughly half Hydra's bandwidth and core count.
    pub fn jupiter() -> Machine {
        Machine {
            name: "Jupiter".into(),
            max_nodes: 35,
            max_ppn: 16,
            processor: "AMD Opteron 6134".into(),
            interconnect: "Mellanox InfiniBand (QDR)".into(),
            model: NetworkModel {
                alpha_inter: 1.7e-6,
                beta_rail: 1.0 / 3.4e9, // QDR effective ~3.4 GB/s
                rails: 1,
                alpha_intra: 0.45e-6,
                beta_mem: 1.0 / 4.0e9,
                mem_channels: 4,
                o_send: 0.40e-6,
                o_recv: 0.40e-6,
                eager_inter: 12 * 1024,
                eager_intra: 32 * 1024,
                gamma_reduce: 1.0 / 2.2e9,
                beta_unexpected: 1.0 / 5.0e9,
            },
        }
    }

    /// SuperMUC-NG: large OmniPath system, 48-core Skylake Platinum nodes.
    /// (The simulator only ever instantiates the node counts the paper's
    /// d8 dataset uses, up to 48.)
    pub fn supermuc_ng() -> Machine {
        Machine {
            name: "SuperMUC-NG".into(),
            max_nodes: 6336,
            max_ppn: 48,
            processor: "Intel Skylake Platinum 8174".into(),
            interconnect: "Intel OmniPath".into(),
            model: NetworkModel {
                alpha_inter: 1.1e-6,
                beta_rail: 1.0 / 12.3e9,
                rails: 1,
                alpha_intra: 0.22e-6,
                beta_mem: 1.0 / 9.0e9,
                mem_channels: 6,
                o_send: 0.18e-6,
                o_recv: 0.18e-6,
                eager_inter: 12 * 1024,
                eager_intra: 32 * 1024,
                gamma_reduce: 1.0 / 5.0e9,
                beta_unexpected: 1.0 / 11.0e9,
            },
        }
    }

    /// All machine profiles, in Table I order.
    pub fn all() -> Vec<Machine> {
        vec![Machine::hydra(), Machine::jupiter(), Machine::supermuc_ng()]
    }

    /// Look a machine up by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<Machine> {
        Machine::all()
            .into_iter()
            .find(|m| m.name.eq_ignore_ascii_case(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes() {
        let hydra = Machine::hydra();
        let jupiter = Machine::jupiter();
        let sng = Machine::supermuc_ng();
        assert_eq!(hydra.max_nodes, 36);
        assert_eq!(hydra.max_ppn, 32);
        assert_eq!(jupiter.max_nodes, 35);
        assert_eq!(jupiter.max_ppn, 16);
        assert_eq!(sng.max_ppn, 48);
        // Hydra: dual rail, roughly twice Jupiter's per-rail bandwidth.
        assert_eq!(hydra.model.rails, 2);
        assert!(hydra.model.beta_rail < jupiter.model.beta_rail / 2.0);
        // Hydra has twice as many cores per node as Jupiter.
        assert_eq!(hydra.max_ppn, 2 * jupiter.max_ppn);
    }

    #[test]
    fn lookup_by_name() {
        assert!(Machine::by_name("hydra").is_some());
        assert!(Machine::by_name("SUPERMUC-NG").is_some());
        assert!(Machine::by_name("frontier").is_none());
    }
}
