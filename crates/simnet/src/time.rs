//! Simulation time: integer picoseconds.
//!
//! Picosecond resolution keeps per-byte service times exact for link rates
//! up to ~1 TB/s while still allowing simulated horizons of several months
//! in a `u64`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point (or span) in simulated time, in integer picoseconds.
///
/// `SimTime` is used both for absolute timestamps and for durations; the
/// arithmetic provided is the small closed set needed by the engine.
#[derive(
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero — the start of every simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable time; used as an "unreached" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from seconds (model parameters are given in seconds).
    ///
    /// Negative inputs saturate to zero; this keeps noise-model callers
    /// safe without branching at each call site.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimTime(0);
        }
        SimTime((s * 1e12).round() as u64)
    }

    /// Construct from microseconds.
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us * 1e-6)
    }

    /// This time expressed in seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// This time expressed in microseconds (the unit the paper reports).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Raw picosecond count.
    #[inline]
    pub fn picos(self) -> u64 {
        self.0
    }

    /// Saturating difference (`self - other`, clamped at zero).
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimTime(self.0 - rhs.0)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_seconds() {
        let t = SimTime::from_secs_f64(1.5e-6);
        assert_eq!(t.0, 1_500_000);
        assert!((t.as_secs_f64() - 1.5e-6).abs() < 1e-18);
    }

    #[test]
    fn negative_seconds_saturate_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn micros_roundtrip() {
        let t = SimTime::from_micros_f64(84.0);
        assert!((t.as_micros_f64() - 84.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime(100);
        let b = SimTime(40);
        assert_eq!(a + b, SimTime(140));
        assert_eq!(a - b, SimTime(60));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn sum_iterates() {
        let total: SimTime = [SimTime(1), SimTime(2), SimTime(3)].into_iter().sum();
        assert_eq!(total, SimTime(6));
    }
}
