//! FIFO-shared bandwidth resources (NIC rails, memory channels).
//!
//! A [`FifoResource`] models `c` identical parallel servers (rails or
//! channels). Each reservation occupies exactly one server for a given
//! service time; reservations are granted in request order on the
//! earliest-free server. This is the classic multi-server FIFO queue,
//! which captures both the *serialization* of many concurrent flows
//! through one NIC and the *parallelism* of dual-rail fabrics.

use crate::time::SimTime;

/// A multi-server FIFO bandwidth resource.
#[derive(Clone, Debug)]
pub struct FifoResource {
    /// `free_at[i]` = time at which server `i` next becomes idle.
    free_at: Vec<SimTime>,
    /// Total busy time accumulated across servers (for utilization stats).
    busy: SimTime,
}

impl FifoResource {
    /// Create a resource with `servers` parallel servers, all idle at t=0.
    pub fn new(servers: u32) -> Self {
        assert!(servers > 0, "a resource needs at least one server");
        FifoResource {
            free_at: vec![SimTime::ZERO; servers as usize],
            busy: SimTime::ZERO,
        }
    }

    /// Reserve one server for `duration`, starting no earlier than
    /// `earliest`. Returns `(start, end)` of the granted slot.
    ///
    /// Grant order is call order (FIFO); the engine calls this in event
    /// order, which makes contention deterministic.
    #[inline]
    pub fn reserve(&mut self, earliest: SimTime, duration: SimTime) -> (SimTime, SimTime) {
        // Pick the server that frees up first.
        let mut best = 0;
        let mut best_t = self.free_at[0];
        for (i, &t) in self.free_at.iter().enumerate().skip(1) {
            if t < best_t {
                best = i;
                best_t = t;
            }
        }
        let start = earliest.max(best_t);
        let end = start + duration;
        self.free_at[best] = end;
        self.busy += duration;
        (start, end)
    }

    /// Number of parallel servers.
    #[inline]
    pub fn servers(&self) -> usize {
        self.free_at.len()
    }

    /// Total accumulated service time across all servers.
    #[inline]
    pub fn total_busy(&self) -> SimTime {
        self.busy
    }

    /// Reset all servers to idle at t=0 (reuse between simulations).
    pub fn reset(&mut self) {
        self.free_at.fill(SimTime::ZERO);
        self.busy = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_serializes() {
        let mut r = FifoResource::new(1);
        let (s1, e1) = r.reserve(SimTime(0), SimTime(100));
        let (s2, e2) = r.reserve(SimTime(0), SimTime(100));
        assert_eq!((s1, e1), (SimTime(0), SimTime(100)));
        assert_eq!((s2, e2), (SimTime(100), SimTime(200)));
    }

    #[test]
    fn dual_rail_parallelizes_two_flows() {
        let mut r = FifoResource::new(2);
        let (_, e1) = r.reserve(SimTime(0), SimTime(100));
        let (_, e2) = r.reserve(SimTime(0), SimTime(100));
        let (s3, _) = r.reserve(SimTime(0), SimTime(100));
        assert_eq!(e1, SimTime(100));
        assert_eq!(e2, SimTime(100));
        assert_eq!(s3, SimTime(100)); // third flow queues
    }

    #[test]
    fn earliest_bound_is_respected() {
        let mut r = FifoResource::new(1);
        let (s, e) = r.reserve(SimTime(500), SimTime(10));
        assert_eq!((s, e), (SimTime(500), SimTime(510)));
        // Idle gap is not back-filled (FIFO, no EDF reordering).
        let (s2, _) = r.reserve(SimTime(0), SimTime(10));
        assert_eq!(s2, SimTime(510));
    }

    #[test]
    fn busy_accounting() {
        let mut r = FifoResource::new(2);
        r.reserve(SimTime(0), SimTime(30));
        r.reserve(SimTime(0), SimTime(70));
        assert_eq!(r.total_busy(), SimTime(100));
        r.reset();
        assert_eq!(r.total_busy(), SimTime::ZERO);
        let (s, _) = r.reserve(SimTime(0), SimTime(5));
        assert_eq!(s, SimTime(0));
    }
}
