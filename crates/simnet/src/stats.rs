//! Simulation results and statistics.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Outcome of one collective simulation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimResult {
    /// Per-rank completion time of the rank's whole program.
    pub finish: Vec<SimTime>,
    /// Per-rank start time (zero unless skew was injected).
    pub start: Vec<SimTime>,
    /// Heap events processed.
    pub events: u64,
    /// Point-to-point messages fully delivered.
    pub messages: u64,
    /// Bytes moved across the interconnect.
    pub bytes_inter: u64,
    /// Bytes moved through node-local shared memory.
    pub bytes_intra: u64,
    /// Per-rank bytes received (for schedule volume invariants).
    pub recv_bytes: Vec<u64>,
    /// Per-rank bytes sent.
    pub sent_bytes: Vec<u64>,
}

impl SimResult {
    /// The collective's running time: latest finish minus earliest start.
    ///
    /// This matches how MPI benchmarks report a collective's duration
    /// under synchronized (time-window) process starts.
    pub fn makespan(&self) -> SimTime {
        let end = self.finish.iter().copied().max().unwrap_or(SimTime::ZERO);
        let begin = self.start.iter().copied().min().unwrap_or(SimTime::ZERO);
        end.saturating_sub(begin)
    }

    /// Last rank to finish.
    pub fn slowest_rank(&self) -> u32 {
        self.finish
            .iter()
            .enumerate()
            .max_by_key(|(_, t)| **t)
            .map(|(i, _)| i as u32)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_with(finish: Vec<u64>, start: Vec<u64>) -> SimResult {
        SimResult {
            finish: finish.into_iter().map(SimTime).collect(),
            start: start.into_iter().map(SimTime).collect(),
            events: 0,
            messages: 0,
            bytes_inter: 0,
            bytes_intra: 0,
            recv_bytes: vec![],
            sent_bytes: vec![],
        }
    }

    #[test]
    fn makespan_spans_start_to_finish() {
        let r = result_with(vec![100, 250, 200], vec![0, 10, 5]);
        assert_eq!(r.makespan(), SimTime(250));
        assert_eq!(r.slowest_rank(), 1);
    }

    #[test]
    fn makespan_of_empty_result_is_zero() {
        let r = result_with(vec![], vec![]);
        assert_eq!(r.makespan(), SimTime::ZERO);
    }
}
