//! Per-rank communication programs.
//!
//! A collective algorithm is compiled (by `mpcp-collectives`) into one
//! [`Program`] per rank: a sequence of [`Instr`]s executed in order with
//! MPI-like blocking/nonblocking semantics. Deeply segmented schedules use
//! the [`Instr::Loop`] construct, which repeats a short body once per
//! segment with per-iteration tags and byte counts — so a 4 MiB broadcast
//! in 1 KiB segments needs 2 instructions per rank, not 8192.
//!
//! Tags inside a loop are `tag_base + iteration`, which gives every
//! segment its own matching stream; generators must leave enough tag space
//! between different `tag_base`s (see [`TAG_STRIDE`]).

use serde::{Deserialize, Serialize};

use crate::topology::Rank;

/// Message tag (matching is on `(source, tag)`).
pub type Tag = u32;

/// Recommended spacing between `tag_base` values used by schedule
/// generators, so segment-indexed tags from different loop bodies never
/// collide (no schedule in this project uses more than 2^20 segments).
pub const TAG_STRIDE: u32 = 1 << 20;

/// How the per-iteration byte count of a [`Instr::Loop`] is derived.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoopBytes {
    /// A `total`-byte buffer cut into `seg`-byte segments; the final
    /// iteration carries the remainder. The iteration count is
    /// [`num_segments`]`(total, seg)`.
    Segmented { total: u64, seg: u64 },
    /// Every iteration moves exactly this many bytes (e.g. ring steps of
    /// one block each).
    Fixed(u64),
}

impl LoopBytes {
    /// Byte count of iteration `k` out of `iters`.
    #[inline]
    pub fn bytes_at(&self, k: u32, iters: u32) -> u64 {
        match *self {
            LoopBytes::Fixed(b) => b,
            LoopBytes::Segmented { total, seg } => {
                if k + 1 < iters {
                    seg
                } else {
                    total - seg * (iters as u64 - 1)
                }
            }
        }
    }
}

/// Number of segments a `total`-byte buffer is cut into with `seg`-byte
/// segments. Zero-byte buffers still produce one (empty) segment so that
/// synchronization structure is preserved.
#[inline]
pub fn num_segments(total: u64, seg: u64) -> u32 {
    assert!(seg > 0, "segment size must be positive");
    if total == 0 {
        1
    } else {
        total.div_ceil(seg) as u32
    }
}

/// One instruction inside a segment loop. Peers are fixed across
/// iterations (only tags and byte counts vary) — this is what makes loops
/// O(1) in memory regardless of segment count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegInstr {
    /// Blocking send of the iteration's bytes to `peer`, tag
    /// `tag_base + k`.
    Send { peer: Rank, tag_base: Tag },
    /// Blocking receive.
    Recv { peer: Rank, tag_base: Tag },
    /// Nonblocking receive (collect with [`SegInstr::WaitAll`]).
    IRecv { peer: Rank, tag_base: Tag },
    /// Nonblocking send (collect with [`SegInstr::WaitAll`]).
    ISend { peer: Rank, tag_base: Tag },
    /// Block until all outstanding nonblocking operations complete.
    WaitAll,
    /// Concurrent send+receive (completes when both do).
    SendRecv {
        send_peer: Rank,
        send_tag_base: Tag,
        recv_peer: Rank,
        recv_tag_base: Tag,
    },
    /// Local reduction over the iteration's bytes.
    Compute,
}

/// A per-rank instruction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    /// Blocking standard-mode send. Eager messages complete when injected;
    /// rendezvous messages complete when the payload has drained at the
    /// receiver's NIC.
    Send { peer: Rank, bytes: u64, tag: Tag },
    /// Blocking receive; completes when the payload is delivered and the
    /// receive overhead has been charged.
    Recv { peer: Rank, bytes: u64, tag: Tag },
    /// Nonblocking send; completion is consumed by a later [`Instr::WaitAll`].
    ISend { peer: Rank, bytes: u64, tag: Tag },
    /// Nonblocking receive.
    IRecv { peer: Rank, bytes: u64, tag: Tag },
    /// Concurrent blocking send+receive, as in `MPI_Sendrecv`.
    SendRecv {
        send_peer: Rank,
        send_bytes: u64,
        send_tag: Tag,
        recv_peer: Rank,
        recv_bytes: u64,
        recv_tag: Tag,
    },
    /// Local computation (reduction) over `bytes` bytes.
    Compute { bytes: u64 },
    /// Block until all outstanding nonblocking operations complete.
    WaitAll,
    /// Repeat `body` once per segment (see [`LoopBytes`]).
    Loop {
        iters: u32,
        bytes: LoopBytes,
        body: Box<[SegInstr]>,
    },
}

impl Instr {
    /// Convenience constructor for a blocking send.
    pub fn send(peer: Rank, bytes: u64, tag: Tag) -> Instr {
        Instr::Send { peer, bytes, tag }
    }

    /// Convenience constructor for a blocking receive.
    pub fn recv(peer: Rank, bytes: u64, tag: Tag) -> Instr {
        Instr::Recv { peer, bytes, tag }
    }

    /// Convenience constructor for a segmented loop over `total` bytes in
    /// `seg`-byte segments.
    pub fn seg_loop(total: u64, seg: u64, body: Vec<SegInstr>) -> Instr {
        Instr::Loop {
            iters: num_segments(total, seg),
            bytes: LoopBytes::Segmented { total, seg },
            body: body.into_boxed_slice(),
        }
    }

    /// Convenience constructor for a fixed-size loop (`iters` iterations
    /// of `bytes` bytes each).
    pub fn fixed_loop(iters: u32, bytes: u64, body: Vec<SegInstr>) -> Instr {
        Instr::Loop {
            iters,
            bytes: LoopBytes::Fixed(bytes),
            body: body.into_boxed_slice(),
        }
    }
}

/// A full per-rank program.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// An empty program (the rank participates but does nothing).
    pub fn empty() -> Program {
        Program { instrs: Vec::new() }
    }

    /// Build a program from an instruction list.
    pub fn from_instrs(instrs: Vec<Instr>) -> Program {
        Program { instrs }
    }

    /// Append one instruction.
    pub fn push(&mut self, i: Instr) {
        self.instrs.push(i);
    }

    /// The instruction sequence.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Total number of point-to-point *message sends* this program will
    /// perform (used for cost estimation and test invariants).
    pub fn count_sends(&self) -> u64 {
        self.instrs
            .iter()
            .map(|i| match i {
                Instr::Send { .. } | Instr::ISend { .. } | Instr::SendRecv { .. } => 1,
                Instr::Loop { iters, body, .. } => {
                    let per_iter: u64 = body
                        .iter()
                        .map(|s| match s {
                            SegInstr::Send { .. }
                            | SegInstr::ISend { .. }
                            | SegInstr::SendRecv { .. } => 1,
                            _ => 0,
                        })
                        .sum();
                    per_iter * *iters as u64
                }
                _ => 0,
            })
            .sum()
    }

    /// Total bytes this program sends (loop-aware).
    pub fn count_sent_bytes(&self) -> u64 {
        self.instrs
            .iter()
            .map(|i| match i {
                Instr::Send { bytes, .. } | Instr::ISend { bytes, .. } => *bytes,
                Instr::SendRecv { send_bytes, .. } => *send_bytes,
                Instr::Loop { iters, bytes, body } => {
                    let sends_per_iter: u64 = body
                        .iter()
                        .map(|s| match s {
                            SegInstr::Send { .. }
                            | SegInstr::ISend { .. }
                            | SegInstr::SendRecv { .. } => 1,
                            _ => 0,
                        })
                        .sum();
                    (0..*iters)
                        .map(|k| bytes.bytes_at(k, *iters) * sends_per_iter)
                        .sum()
                }
                _ => 0,
            })
            .sum()
    }

    /// Validate structural constraints: peers in range, no self-messages,
    /// positive loop iteration counts. `size` is the communicator size.
    pub fn validate(&self, rank: Rank, size: u32) -> Result<(), String> {
        let check_peer = |peer: Rank, what: &str| -> Result<(), String> {
            if peer >= size {
                return Err(format!("rank {rank}: {what} peer {peer} out of range (size {size})"));
            }
            if peer == rank {
                return Err(format!("rank {rank}: {what} to self"));
            }
            Ok(())
        };
        for i in &self.instrs {
            match i {
                Instr::Send { peer, .. } | Instr::ISend { peer, .. } => check_peer(*peer, "send")?,
                Instr::Recv { peer, .. } | Instr::IRecv { peer, .. } => check_peer(*peer, "recv")?,
                Instr::SendRecv { send_peer, recv_peer, .. } => {
                    check_peer(*send_peer, "sendrecv-send")?;
                    check_peer(*recv_peer, "sendrecv-recv")?;
                }
                Instr::Loop { iters, body, .. } => {
                    if *iters == 0 {
                        return Err(format!("rank {rank}: loop with zero iterations"));
                    }
                    for s in body.iter() {
                        match s {
                            SegInstr::Send { peer, .. } | SegInstr::ISend { peer, .. } => {
                                check_peer(*peer, "loop send")?
                            }
                            SegInstr::Recv { peer, .. } | SegInstr::IRecv { peer, .. } => {
                                check_peer(*peer, "loop recv")?
                            }
                            SegInstr::WaitAll => {}
                            SegInstr::SendRecv { send_peer, recv_peer, .. } => {
                                check_peer(*send_peer, "loop sendrecv-send")?;
                                check_peer(*recv_peer, "loop sendrecv-recv")?;
                            }
                            SegInstr::Compute => {}
                        }
                    }
                }
                Instr::Compute { .. } | Instr::WaitAll => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_segments_basics() {
        assert_eq!(num_segments(0, 1024), 1);
        assert_eq!(num_segments(1, 1024), 1);
        assert_eq!(num_segments(1024, 1024), 1);
        assert_eq!(num_segments(1025, 1024), 2);
        assert_eq!(num_segments(4 << 20, 1 << 10), 4096);
    }

    #[test]
    fn segmented_bytes_cover_total() {
        let total = 10_000u64;
        let seg = 1024u64;
        let iters = num_segments(total, seg);
        let lb = LoopBytes::Segmented { total, seg };
        let sum: u64 = (0..iters).map(|k| lb.bytes_at(k, iters)).sum();
        assert_eq!(sum, total);
        assert_eq!(lb.bytes_at(iters - 1, iters), total % seg);
    }

    #[test]
    fn fixed_bytes_constant() {
        let lb = LoopBytes::Fixed(77);
        assert_eq!(lb.bytes_at(0, 5), 77);
        assert_eq!(lb.bytes_at(4, 5), 77);
    }

    #[test]
    fn count_sends_in_loops() {
        let p = Program::from_instrs(vec![
            Instr::send(1, 100, 0),
            Instr::seg_loop(4096, 1024, vec![
                SegInstr::Recv { peer: 1, tag_base: TAG_STRIDE },
                SegInstr::Send { peer: 2, tag_base: 2 * TAG_STRIDE },
            ]),
        ]);
        assert_eq!(p.count_sends(), 1 + 4);
        assert_eq!(p.count_sent_bytes(), 100 + 4096);
    }

    #[test]
    fn validate_catches_self_send() {
        let p = Program::from_instrs(vec![Instr::send(0, 1, 0)]);
        assert!(p.validate(0, 4).is_err());
        assert!(p.validate(1, 4).is_ok());
    }

    #[test]
    fn validate_catches_out_of_range_peer() {
        let p = Program::from_instrs(vec![Instr::recv(9, 1, 0)]);
        assert!(p.validate(0, 4).is_err());
    }

    #[test]
    fn validate_catches_empty_loop() {
        let p = Program::from_instrs(vec![Instr::Loop {
            iters: 0,
            bytes: LoopBytes::Fixed(1),
            body: Box::new([]),
        }]);
        assert!(p.validate(0, 4).is_err());
    }
}
