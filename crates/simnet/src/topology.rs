//! Process-to-node topology.
//!
//! The paper's instances are `(#nodes n, processes-per-node N)` with the
//! same `N` on every node (the SLURM default the paper restricts itself
//! to). Ranks are laid out **block-wise**: ranks `0..N` on node 0, `N..2N`
//! on node 1, and so on — matching `mpirun --map-by node` defaults used by
//! the paper's benchmarks.

/// A process rank (0-based, dense).
pub type Rank = u32;

/// A compute-node index.
pub type NodeId = u32;

/// Block-wise rank-to-node mapping for `nodes × ppn` processes.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Topology {
    nodes: u32,
    ppn: u32,
}

impl Topology {
    /// Create a topology with `nodes` compute nodes and `ppn` processes per
    /// node.
    ///
    /// # Panics
    /// Panics if either dimension is zero (an empty communicator is not a
    /// meaningful instance).
    pub fn new(nodes: u32, ppn: u32) -> Self {
        assert!(nodes > 0 && ppn > 0, "topology dimensions must be nonzero");
        Topology { nodes, ppn }
    }

    /// Number of compute nodes `n`.
    #[inline]
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Processes per node `N` (a.k.a. ppn).
    #[inline]
    pub fn ppn(&self) -> u32 {
        self.ppn
    }

    /// Total number of processes `p = n · N`.
    #[inline]
    pub fn size(&self) -> u32 {
        self.nodes * self.ppn
    }

    /// Node that hosts `rank`.
    #[inline]
    pub fn node_of(&self, rank: Rank) -> NodeId {
        debug_assert!(rank < self.size());
        rank / self.ppn
    }

    /// Whether two ranks share a compute node (and thus communicate over
    /// shared memory rather than the interconnect).
    #[inline]
    pub fn same_node(&self, a: Rank, b: Rank) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Local index of `rank` on its node (`0..ppn`).
    #[inline]
    pub fn local_index(&self, rank: Rank) -> u32 {
        rank % self.ppn
    }

    /// First rank hosted on `node`.
    #[inline]
    pub fn first_rank_on(&self, node: NodeId) -> Rank {
        debug_assert!(node < self.nodes);
        node * self.ppn
    }

    /// Iterator over all ranks.
    pub fn ranks(&self) -> impl Iterator<Item = Rank> {
        0..self.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_mapping() {
        let t = Topology::new(3, 4);
        assert_eq!(t.size(), 12);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.node_of(11), 2);
        assert!(t.same_node(4, 7));
        assert!(!t.same_node(3, 4));
        assert_eq!(t.local_index(5), 1);
        assert_eq!(t.first_rank_on(2), 8);
    }

    #[test]
    fn single_process() {
        let t = Topology::new(1, 1);
        assert_eq!(t.size(), 1);
        assert_eq!(t.node_of(0), 0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_nodes_panics() {
        let _ = Topology::new(0, 4);
    }

    #[test]
    fn ranks_iterator_is_dense() {
        let t = Topology::new(2, 2);
        let ranks: Vec<Rank> = t.ranks().collect();
        assert_eq!(ranks, vec![0, 1, 2, 3]);
    }
}
