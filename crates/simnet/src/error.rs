//! Simulation errors.

use std::fmt;

use crate::topology::Rank;

/// Errors produced while executing a set of rank programs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// Program count does not match the communicator size.
    ProgramCountMismatch { programs: usize, ranks: u32 },
    /// A program failed structural validation.
    InvalidProgram { rank: Rank, reason: String },
    /// The event queue drained while ranks were still blocked — the
    /// schedule deadlocks (e.g. mismatched tags or missing sends).
    Deadlock { blocked: Vec<Rank> },
    /// A receive matched a message with a different byte count — the
    /// schedule's send and receive sides disagree.
    SizeMismatch {
        src: Rank,
        dst: Rank,
        tag: u32,
        sent: u64,
        expected: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ProgramCountMismatch { programs, ranks } => {
                write!(f, "{programs} programs supplied for {ranks} ranks")
            }
            SimError::InvalidProgram { rank, reason } => {
                write!(f, "invalid program for rank {rank}: {reason}")
            }
            SimError::Deadlock { blocked } => {
                write!(
                    f,
                    "deadlock: {} rank(s) blocked forever (first few: {:?})",
                    blocked.len(),
                    &blocked[..blocked.len().min(8)]
                )
            }
            SimError::SizeMismatch { src, dst, tag, sent, expected } => write!(
                f,
                "size mismatch {src}->{dst} tag {tag}: sent {sent} bytes, receiver expected {expected}"
            ),
        }
    }
}

impl std::error::Error for SimError {}
