//! Property-based tests for the discrete-event engine: any well-matched
//! set of send/receive programs must complete without deadlock, conserve
//! messages and bytes, and respect basic timing monotonicity.

use proptest::prelude::*;

use mpcp_simnet::program::SegInstr;
use mpcp_simnet::{Instr, Machine, NetworkModel, Program, SimTime, Simulator, Topology};

fn any_model() -> impl Strategy<Value = NetworkModel> {
    (0..3usize).prop_map(|i| Machine::all()[i].model.clone())
}

/// A random matched communication pattern: a list of (src, dst, bytes,
/// tag) messages; receivers post in the same per-(src,dst) order.
fn matched_pattern(p: u32) -> impl Strategy<Value = Vec<(u32, u32, u64, u32)>> {
    prop::collection::vec(
        (0..p, 0..p, 1u64..200_000, 0u32..4),
        1..20,
    )
    .prop_map(move |v| {
        v.into_iter()
            .filter(|(s, d, _, _)| s != d)
            .enumerate()
            // Disambiguate tags per (src,dst) pair so sizes can't cross.
            .map(|(i, (s, d, b, t))| (s, d, b, t + 8 * i as u32))
            .collect()
    })
}

fn programs_for(p: u32, msgs: &[(u32, u32, u64, u32)]) -> Vec<Program> {
    let mut progs: Vec<Vec<Instr>> = vec![Vec::new(); p as usize];
    // Senders in message order; receivers post in the same global order
    // (pairwise FIFO keeps this deadlock-free for eager AND rendezvous
    // because every blocking recv's matching send is already posted or
    // will be posted without depending on this recv).
    for &(s, d, b, t) in msgs {
        progs[s as usize].push(Instr::ISend { peer: d, bytes: b, tag: t });
        progs[d as usize].push(Instr::IRecv { peer: s, bytes: b, tag: t });
    }
    for prog in &mut progs {
        prog.push(Instr::WaitAll);
    }
    progs.into_iter().map(Program::from_instrs).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matched_nonblocking_patterns_complete(
        model in any_model(),
        nodes in 1u32..5,
        ppn in 1u32..5,
        pattern in matched_pattern(16),
    ) {
        let topo = Topology::new(nodes, ppn);
        let p = topo.size();
        let msgs: Vec<_> = pattern.into_iter()
            .filter(|&(s, d, _, _)| s < p && d < p && s != d)
            .collect();
        let progs = programs_for(p, &msgs);
        let result = Simulator::new(&model, &topo).run(&progs).unwrap();
        // Conservation: every message delivered, bytes add up.
        prop_assert_eq!(result.messages, msgs.len() as u64);
        let total: u64 = msgs.iter().map(|m| m.2).sum();
        prop_assert_eq!(result.bytes_inter + result.bytes_intra, total);
        let recv_total: u64 = result.recv_bytes.iter().sum();
        prop_assert_eq!(recv_total, total);
        let sent_total: u64 = result.sent_bytes.iter().sum();
        prop_assert_eq!(sent_total, total);
    }

    #[test]
    fn bigger_messages_never_finish_faster(
        model in any_model(),
        bytes in 1u64..1_000_000,
    ) {
        let topo = Topology::new(2, 1);
        let run = |b: u64| {
            let progs = vec![
                Program::from_instrs(vec![Instr::send(1, b, 0)]),
                Program::from_instrs(vec![Instr::recv(0, b, 0)]),
            ];
            Simulator::new(&model, &topo).run(&progs).unwrap().makespan()
        };
        prop_assert!(run(2 * bytes) >= run(bytes));
    }

    #[test]
    fn skew_delays_by_at_most_the_skew(
        model in any_model(),
        skew_us in 0.0f64..500.0,
    ) {
        let topo = Topology::new(2, 2);
        let progs = vec![
            Program::from_instrs(vec![Instr::send(2, 5000, 0)]),
            Program::empty(),
            Program::from_instrs(vec![Instr::recv(0, 5000, 0)]),
            Program::empty(),
        ];
        let sim = Simulator::new(&model, &topo);
        let base = sim.run(&progs).unwrap().makespan();
        let skew = SimTime::from_micros_f64(skew_us);
        let skewed = sim
            .run_with_skew(&progs, &[skew, SimTime::ZERO, SimTime::ZERO, SimTime::ZERO])
            .unwrap()
            .makespan();
        prop_assert!(skewed >= base);
        prop_assert!(skewed.picos() <= base.picos() + skew.picos());
    }

    #[test]
    fn segmented_loop_volume_is_exact(
        total in 1u64..2_000_000,
        seg in 1u64..100_000,
    ) {
        let model = Machine::hydra().model;
        let topo = Topology::new(2, 1);
        let progs = vec![
            Program::from_instrs(vec![Instr::seg_loop(total, seg, vec![SegInstr::Send {
                peer: 1,
                tag_base: 0,
            }])]),
            Program::from_instrs(vec![Instr::seg_loop(total, seg, vec![SegInstr::Recv {
                peer: 0,
                tag_base: 0,
            }])]),
        ];
        let r = Simulator::new(&model, &topo).run(&progs).unwrap();
        prop_assert_eq!(r.recv_bytes[1], total);
        prop_assert_eq!(r.messages as u64, total.div_ceil(seg));
    }

    #[test]
    fn simulation_is_deterministic(
        nodes in 1u32..4,
        ppn in 1u32..4,
        pattern in matched_pattern(9),
    ) {
        let model = Machine::jupiter().model;
        let topo = Topology::new(nodes, ppn);
        let p = topo.size();
        let msgs: Vec<_> = pattern.into_iter()
            .filter(|&(s, d, _, _)| s < p && d < p && s != d)
            .collect();
        let progs = programs_for(p, &msgs);
        let sim = Simulator::new(&model, &topo);
        let a = sim.run(&progs).unwrap();
        let b = sim.run(&progs).unwrap();
        prop_assert_eq!(a.finish, b.finish);
        prop_assert_eq!(a.events, b.events);
    }
}
