//! # mpcp-cli — the `mpcp` command-line tool
//!
//! A front end over the whole pipeline, mirroring how the paper's
//! framework would be operated in production:
//!
//! ```text
//! mpcp machines                                   # list machine profiles
//! mpcp algorithms --coll bcast --lib openmpi      # list algorithm configs
//! mpcp simulate  --machine hydra --coll bcast --nodes 8 --ppn 16 --msize 1M
//! mpcp bench     --machine hydra --coll bcast --nodes 2,4,8 --ppn 1,8 \
//!                --msizes 16,4K,256K --out bcast.csv
//! mpcp select    --data bcast.csv --coll bcast --learner gam \
//!                --train-nodes 2,4,8 --nodes 6 --ppn 16 --msize 64K
//! mpcp tune      --data bcast.csv --coll bcast --learner gam \
//!                --train-nodes 2,4,8 --nodes 6 --ppn 16 --out bcast.tune
//! mpcp report    --trace trace.json --metrics metrics.jsonl \
//!                --require simulate,measure,fit,select
//! ```
//!
//! Any command additionally accepts `--trace-out <file>` /
//! `--metrics-out <file>` to capture spans and metrics (see `mpcp-obs`).
//!
//! The library exposes the command implementations so they are testable;
//! `src/main.rs` is a thin wrapper.

#![forbid(unsafe_code)]

pub mod args;
pub mod commands;

use args::Args;

/// Top-level usage text.
pub const USAGE: &str = "\
mpcp — MPI collective performance prediction (CLUSTER'20 reproduction)

USAGE: mpcp <COMMAND> [--key value ...]

COMMANDS:
  machines    list simulated machine profiles (Table I)
  algorithms  list a library's algorithm configurations
              --coll <bcast|allreduce|alltoall|reduce|allgather|scatter|gather|barrier>
              [--lib openmpi]
  simulate    run one collective once on the simulator
              --machine <name> --coll <c> --nodes <n> --ppn <N> --msize <size>
              [--alg <uid>] [--lib openmpi]
  bench       benchmark a grid and write a dataset CSV
              --machine <name> --coll <c> --nodes <list> --ppn <list>
              --msizes <sizes> --out <file> [--lib openmpi] [--seed <u64>]
              [--fault-plan <plan>] [--retries <n>] [--retry-backoff-ms <ms>]
  campaign    parallel work-stealing grid sweep into a checkpointed
              columnar store; byte-identical at any thread count, and
              resumable after a crash from the last committed chunk
              --machine <name> --coll <c> --nodes <list> --ppn <list>
              --msizes <sizes> --store <file> [--threads <n>]
              [--checkpoint-every <cells>] [--resume] [--out <csv>]
              [--max-reps <n>] [--lib openmpi] [--seed <u64>]
              [--fault-plan <plan>] [--retries <n>] [--retry-backoff-ms <ms>]
              with --bench-out <file>: run fresh at 1 thread and at
              --threads, assert the stores are byte-identical, and write
              a BENCH_PR10.json speedup report [--min-speedup <x>]
  train       train on a dataset CSV and save the selector as a binary
              model artifact (models + coverage + provenance manifest)
              --data <file> --coll <c> --save-model <file>
              [--learner knn|gam|xgboost|forest|linear] [--machine <name>]
              [--lib openmpi] [--train-nodes <list>] [--min-samples <n>]
              [--seed <u64>]
  select      train on a dataset CSV and predict the best algorithm
              --data <file> --coll <c> --train-nodes <list>
              --nodes <n> --ppn <N> --msize <size> [--learner knn|gam|xgboost]
              [--machine <name>] [--lib openmpi] [--min-samples <n>]
              with --model <file>: answer from a saved artifact instead
              (no --data/--learner needed; --data adds the measured best)
  tune        emit a tuning file for one allocation (10-15 msize queries)
              --data <file> --coll <c> --train-nodes <list>
              --nodes <n> --ppn <N> --out <file> [--learner ...]
              [--min-samples <n>]
  serve-bench  load a model artifact into the concurrent PredictionService
              and measure kernel inst/s plus cached vs uncached vs batched
              query throughput; with --duration, sustain load while
              publishing live windowed stats for `mpcp top` and arming
              the flight recorder
              --model <file> [--threads 8] [--requests 20000]
              [--cache 4096] [--min-speedup <x>] [--out BENCH_PR7.json]
              [--baseline BENCH_PRn.json] [--min-uncached-speedup <x>]
              [--telemetry-gate <ratio>] [--duration <secs>]
              [--stats-out <file>] [--spike-ms <ms>] [--flight-out <file>]
              [--flight-threshold-ms <ms>]
              with --connect <addr>: drive a running `mpcp served`
              daemon over TCP instead (equal-results sweep, pipelined
              throughput, open-loop overload burst asserting one reply
              per request)
              --connect <addr> --model <file> [--threads 4]
              [--requests 4000] [--window 32] [--overload-burst <n>]
              [--max-p99-ms <x>] [--shutdown-server] [--out <file>]
  served      serve a model artifact over TCP: persist-codec framed
              requests, pipelined per connection, bounded admission
              queue with degraded load shedding; runs until the wire
              shutdown op or --duration
              --model <file> [--addr 127.0.0.1:0] [--addr-out <file>]
              [--workers 2] [--max-batch 64] [--max-queue 1024]
              [--idle-timeout-ms 300000] [--reply-timeout-ms 30000]
              [--max-shed-inflight 64] [--cache 4096]
              [--duration <secs>] [--stats-out <file>]
  top         watch a running serve-bench or served session's live
              windowed stats
              (per-shard rate, hit ratio, p50/p99, queue-wait vs compute
              split, SLO burn rate)
              --stats <file> [--once] [--json] [--interval-ms 500]
              [--timeout 30]
  report      summarize trace/metrics files written by --trace-out /
              --metrics-out
              [--trace <file>] [--metrics <file>] [--require <spans>]
              [--require-metric <name[>=N],...>] [--format text|json]

FAULT INJECTION (bench):
  --fault-plan \"fail=0.3,timeout=0.05,outlier=0.02x8,blackout=13+19,seed=7\"
                        deterministic per-cell failures/timeouts/outliers
                        and whole-node-count blackouts; lost cells are
                        absent from the CSV and reported as coverage
  --retries <n>         extra attempts for failed cells (default 2);
                        backoff is charged against each cell's budget
  --retry-backoff-ms <ms>  base backoff, doubled per retry (default 0.1)
  select/tune degrade gracefully on partial datasets: configurations
  without enough samples fall back to the library decision logic and
  selections are marked DEGRADED. --min-samples <n> sets the per-config
  training threshold (default 1).

OBSERVABILITY (any command):
  --trace-out <file>    record spans; .json => Chrome trace-event format
                        (appends to an existing trace so a bench+select
                        pipeline shares one timeline), .jsonl => events
  --metrics-out <file>  append a provenance-stamped metrics block (JSONL)

Sizes accept K/M/G suffixes (binary); lists are comma-separated.";

/// Reconstruct a canonical `mpcp ...` config string for provenance.
fn config_line(args: &Args) -> String {
    let mut s = format!("mpcp {}", args.command);
    for k in args.keys() {
        if let Some(v) = args.get(k) {
            s.push_str(&format!(" --{k} {v}"));
        }
    }
    s
}

/// Dispatch a parsed command line; returns the text to print.
///
/// `--trace-out` / `--metrics-out` on any command switch the
/// observability layer on for the duration of the command and write the
/// collected spans/metrics on the way out.
pub fn run(args: Args) -> Result<String, String> {
    let trace_out = args.get("trace-out").map(str::to_string);
    let metrics_out = args.get("metrics-out").map(str::to_string);
    let traced = trace_out.is_some() || metrics_out.is_some();
    if traced {
        mpcp_obs::set_enabled(true);
    }
    let result = match args.command.as_str() {
        "machines" => commands::machines(),
        "algorithms" => commands::algorithms(&args),
        "simulate" => commands::simulate(&args),
        "bench" => commands::bench(&args),
        "campaign" => commands::campaign(&args),
        "train" => commands::train(&args),
        "select" => commands::select(&args),
        "serve-bench" => commands::serve_bench(&args),
        "served" => commands::served(&args),
        "tune" => commands::tune(&args),
        "top" => commands::top(&args),
        "report" => commands::report(&args),
        "" | "help" | "--help" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    if !traced {
        return result;
    }
    mpcp_obs::set_enabled(false);
    let seed = args.get("seed").and_then(|s| s.parse::<u64>().ok());
    let prov = mpcp_obs::provenance::Provenance::capture(&config_line(&args), seed);
    let events = mpcp_obs::drain();
    let snap = mpcp_obs::metrics::snapshot();
    mpcp_obs::metrics::reset();
    let mut notes = String::new();
    if let Some(path) = &trace_out {
        let p = std::path::Path::new(path);
        let io = if path.ends_with(".jsonl") {
            std::fs::write(p, mpcp_obs::export::events_jsonl(&events, Some(&prov)))
        } else {
            mpcp_obs::export::write_chrome_trace(p, &events, Some(&prov))
        };
        io.map_err(|e| format!("writing trace {path}: {e}"))?;
        notes.push_str(&format!("trace ({} events) written to {path}\n", events.len()));
    }
    if let Some(path) = &metrics_out {
        use std::io::Write as _;
        let block = mpcp_obs::export::metrics_jsonl(&snap, Some(&prov));
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| f.write_all(block.as_bytes()))
            .map_err(|e| format!("writing metrics {path}: {e}"))?;
        notes.push_str(&format!("metrics appended to {path}\n"));
    }
    result.map(|out| format!("{out}{notes}"))
}
