//! # mpcp-cli — the `mpcp` command-line tool
//!
//! A front end over the whole pipeline, mirroring how the paper's
//! framework would be operated in production:
//!
//! ```text
//! mpcp machines                                   # list machine profiles
//! mpcp algorithms --coll bcast --lib openmpi      # list algorithm configs
//! mpcp simulate  --machine hydra --coll bcast --nodes 8 --ppn 16 --msize 1M
//! mpcp bench     --machine hydra --coll bcast --nodes 2,4,8 --ppn 1,8 \
//!                --msizes 16,4K,256K --out bcast.csv
//! mpcp select    --data bcast.csv --coll bcast --learner gam \
//!                --train-nodes 2,4,8 --nodes 6 --ppn 16 --msize 64K
//! mpcp tune      --data bcast.csv --coll bcast --learner gam \
//!                --train-nodes 2,4,8 --nodes 6 --ppn 16 --out bcast.tune
//! ```
//!
//! The library exposes the command implementations so they are testable;
//! `src/main.rs` is a thin wrapper.

pub mod args;
pub mod commands;

use args::Args;

/// Top-level usage text.
pub const USAGE: &str = "\
mpcp — MPI collective performance prediction (CLUSTER'20 reproduction)

USAGE: mpcp <COMMAND> [--key value ...]

COMMANDS:
  machines    list simulated machine profiles (Table I)
  algorithms  list a library's algorithm configurations
              --coll <bcast|allreduce|alltoall|reduce|allgather|scatter|gather|barrier>
              [--lib openmpi]
  simulate    run one collective once on the simulator
              --machine <name> --coll <c> --nodes <n> --ppn <N> --msize <size>
              [--alg <uid>] [--lib openmpi]
  bench       benchmark a grid and write a dataset CSV
              --machine <name> --coll <c> --nodes <list> --ppn <list>
              --msizes <sizes> --out <file> [--lib openmpi] [--seed <u64>]
  select      train on a dataset CSV and predict the best algorithm
              --data <file> --coll <c> --train-nodes <list>
              --nodes <n> --ppn <N> --msize <size> [--learner knn|gam|xgboost]
              [--machine <name>] [--lib openmpi]
  tune        emit a tuning file for one allocation (10-15 msize queries)
              --data <file> --coll <c> --train-nodes <list>
              --nodes <n> --ppn <N> --out <file> [--learner ...]

Sizes accept K/M/G suffixes (binary); lists are comma-separated.";

/// Dispatch a parsed command line; returns the text to print.
pub fn run(args: Args) -> Result<String, String> {
    match args.command.as_str() {
        "machines" => commands::machines(),
        "algorithms" => commands::algorithms(&args),
        "simulate" => commands::simulate(&args),
        "bench" => commands::bench(&args),
        "select" => commands::select(&args),
        "tune" => commands::tune(&args),
        "" | "help" | "--help" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}
