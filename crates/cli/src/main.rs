//! The `mpcp` binary: thin wrapper over [`mpcp_cli::run`].

fn main() {
    let args = match mpcp_cli::args::Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", mpcp_cli::USAGE);
            std::process::exit(2);
        }
    };
    match mpcp_cli::run(args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
