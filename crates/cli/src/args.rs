//! Tiny dependency-free argument parsing: `--key value` flags plus a
//! leading subcommand, with human-friendly size and list syntax.

use std::collections::BTreeMap;

/// Parsed command line: subcommand + `--key value` options.
#[derive(Debug, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    opts: BTreeMap<String, String>,
}

impl Args {
    /// Parse from an iterator of arguments (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = args.into_iter().peekable();
        if let Some(cmd) = it.next() {
            if cmd.starts_with("--") {
                return Err(format!("expected a subcommand before {cmd}"));
            }
            out.command = cmd;
        }
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {a:?}"));
            };
            // A flag followed by another flag (or nothing) is a bare
            // boolean switch, e.g. `mpcp top --once --json`.
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().unwrap_or_default(),
                _ => "true".to_string(),
            };
            if out.opts.insert(key.to_string(), value).is_some() {
                return Err(format!("--{key} given twice"));
            }
        }
        Ok(out)
    }

    /// Raw option lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.opts.get(key).map(|s| s.as_str())
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Option with default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// All option keys (for unknown-flag diagnostics).
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.opts.keys().map(|s| s.as_str())
    }

    /// Boolean switch: present (bare or `--key true`) and not
    /// explicitly `false`.
    pub fn flag(&self, key: &str) -> bool {
        matches!(self.get(key), Some(v) if v != "false")
    }
}

/// Parse a human byte size: `4096`, `1K`, `64K`, `2M`, `1G` (binary
/// multiples, as MPI benchmarks use).
pub fn parse_size(s: &str) -> Result<u64, String> {
    let t = s.trim();
    let (num, mult) = match t.chars().last() {
        Some('K') | Some('k') => (&t[..t.len() - 1], 1u64 << 10),
        Some('M') | Some('m') => (&t[..t.len() - 1], 1u64 << 20),
        Some('G') | Some('g') => (&t[..t.len() - 1], 1u64 << 30),
        _ => (t, 1),
    };
    num.parse::<u64>()
        .map(|v| v * mult)
        .map_err(|_| format!("bad size {s:?} (use e.g. 4096, 64K, 2M)"))
}

/// Parse a comma-separated list with an element parser.
pub fn parse_list<T, F: Fn(&str) -> Result<T, String>>(s: &str, f: F) -> Result<Vec<T>, String> {
    s.split(',').map(|x| f(x.trim())).collect()
}

/// Parse a u32 list: `1,8,16`.
pub fn parse_u32_list(s: &str) -> Result<Vec<u32>, String> {
    parse_list(s, |x| x.parse::<u32>().map_err(|_| format!("bad number {x:?}")))
}

/// Parse a size list: `16,1K,64K`.
pub fn parse_size_list(s: &str) -> Result<Vec<u64>, String> {
    parse_list(s, parse_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Result<Args, String> {
        Args::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let a = args(&["bench", "--machine", "hydra", "--ppn", "1,8"]).unwrap();
        assert_eq!(a.command, "bench");
        assert_eq!(a.get("machine"), Some("hydra"));
        assert_eq!(a.require("ppn").unwrap(), "1,8");
        assert!(a.require("nope").is_err());
        assert_eq!(a.get_or("learner", "gam"), "gam");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(args(&["--machine", "hydra"]).is_err()); // flag before cmd
        assert!(args(&["bench", "stray"]).is_err());
        assert!(args(&["bench", "--x", "1", "--x", "2"]).is_err()); // dup
    }

    #[test]
    fn bare_flags_parse_as_boolean_switches() {
        let a = args(&["top", "--once", "--json", "--stats", "f.json"]).unwrap();
        assert!(a.flag("once"));
        assert!(a.flag("json"));
        assert_eq!(a.get("stats"), Some("f.json"));
        assert!(!a.flag("absent"));
        let b = args(&["top", "--once", "false"]).unwrap();
        assert!(!b.flag("once"));
        // A trailing bare flag is also a switch.
        assert!(args(&["top", "--once"]).unwrap().flag("once"));
    }

    #[test]
    fn sizes() {
        assert_eq!(parse_size("4096").unwrap(), 4096);
        assert_eq!(parse_size("64K").unwrap(), 65536);
        assert_eq!(parse_size("2M").unwrap(), 2 << 20);
        assert_eq!(parse_size("1g").unwrap(), 1 << 30);
        assert!(parse_size("x").is_err());
        assert!(parse_size("4.5K").is_err());
    }

    #[test]
    fn lists() {
        assert_eq!(parse_u32_list("1, 8,16").unwrap(), vec![1, 8, 16]);
        assert_eq!(parse_size_list("16,1K").unwrap(), vec![16, 1024]);
        assert!(parse_u32_list("1,x").is_err());
    }
}
