//! Implementations of the `mpcp` subcommands.

use std::path::Path;

use mpcp_benchmark::record::{read_csv, write_csv};
use mpcp_benchmark::{
    run_campaign, BenchConfig, CampaignConfig, CampaignReport, DatasetSpec, FaultPlan, LibKind,
    RetryPolicy,
};
use mpcp_collectives::{Collective, MpiLibrary};
use mpcp_core::tuning_file::{default_query_sizes, TuningFile};
use mpcp_core::{ArtifactMeta, Instance, RuntimeTable, Selector, TrainOptions, TrainReport};
use mpcp_ml::Learner;
use mpcp_simnet::{Machine, SimTime, Simulator, Topology};

use crate::args::{parse_size, parse_size_list, parse_u32_list, Args};

fn parse_coll(s: &str) -> Result<Collective, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "bcast" => Collective::Bcast,
        "allreduce" => Collective::Allreduce,
        "alltoall" => Collective::Alltoall,
        "reduce" => Collective::Reduce,
        "allgather" => Collective::Allgather,
        "scatter" => Collective::Scatter,
        "gather" => Collective::Gather,
        "barrier" => Collective::Barrier,
        other => return Err(format!("unknown collective {other:?}")),
    })
}

fn parse_machine(s: &str) -> Result<Machine, String> {
    Machine::by_name(s).ok_or_else(|| {
        format!("unknown machine {s:?} (available: Hydra, Jupiter, SuperMUC-NG)")
    })
}

fn parse_learner(s: &str) -> Result<Learner, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "knn" => Learner::knn(),
        "gam" => Learner::gam(),
        "xgboost" | "xgb" => Learner::xgboost(),
        "forest" | "rf" => Learner::forest(),
        "linear" => Learner::linear(),
        other => return Err(format!("unknown learner {other:?}")),
    })
}

fn library(args: &Args, machine: &Machine, coll: Collective) -> Result<MpiLibrary, String> {
    match args.get_or("lib", "openmpi").to_ascii_lowercase().as_str() {
        "openmpi" | "open-mpi" => Ok(MpiLibrary::open_mpi_4_0_2()),
        "intelmpi" | "intel-mpi" | "intel" => Ok(MpiLibrary::intel_mpi_2019_for(
            machine,
            mpcp_collectives::decision::TuningGrid::vendor_default(
                machine.max_nodes,
                machine.max_ppn,
            ),
            &[coll],
        )),
        other => Err(format!("unknown library {other:?} (openmpi | intelmpi)")),
    }
}

/// `mpcp machines`
pub fn machines() -> Result<String, String> {
    let mut out = String::from("machine       nodes  max_ppn  interconnect\n");
    for m in Machine::all() {
        out.push_str(&format!(
            "{:<12}  {:<5}  {:<7}  {}\n",
            m.name, m.max_nodes, m.max_ppn, m.interconnect
        ));
    }
    Ok(out)
}

/// `mpcp algorithms --coll <c> [--lib openmpi]`
pub fn algorithms(args: &Args) -> Result<String, String> {
    let coll = parse_coll(args.require("coll")?)?;
    let machine = parse_machine(args.get_or("machine", "hydra"))?;
    let lib = library(args, &machine, coll)?;
    let mut out = format!("{} {} — {} configurations for {}:\n", lib.name, lib.version,
        lib.configs(coll).len(), coll.mpi_name());
    out.push_str("uid   label\n");
    for (uid, cfg) in lib.configs(coll).iter().enumerate() {
        out.push_str(&format!(
            "{uid:<4}  {}{}\n",
            cfg.label(),
            if cfg.excluded { "   [excluded: benchmark-only]" } else { "" }
        ));
    }
    Ok(out)
}

/// `mpcp simulate ...`
pub fn simulate(args: &Args) -> Result<String, String> {
    let machine = parse_machine(args.require("machine")?)?;
    let coll = parse_coll(args.require("coll")?)?;
    let nodes: u32 = args.require("nodes")?.parse().map_err(|_| "bad --nodes".to_string())?;
    let ppn: u32 = args.require("ppn")?.parse().map_err(|_| "bad --ppn".to_string())?;
    let msize = parse_size(args.get_or("msize", "0"))?;
    let topo = Topology::new(nodes, ppn);
    let lib = library(args, &machine, coll)?;
    let uid = match args.get("alg") {
        Some(s) => s.parse::<usize>().map_err(|_| "bad --alg (use a uid)".to_string())?,
        None => lib.default_choice(coll, msize, &topo),
    };
    let configs = lib.configs(coll);
    if uid >= configs.len() {
        return Err(format!("--alg {uid} out of range (0..{})", configs.len()));
    }
    let progs = lib.build(coll, uid, &topo, msize);
    let r = Simulator::new(&machine.model, &topo)
        .run(&progs)
        .map_err(|e| format!("simulation failed: {e}"))?;
    Ok(format!(
        "{} of {} bytes on {} ({}x{} ranks)\nalgorithm: {}\nruntime:   {:.3} us\nmessages:  {} ({} bytes inter-node, {} intra-node)\nevents:    {}\n",
        coll.mpi_name(),
        msize,
        machine.name,
        nodes,
        ppn,
        configs[uid].label(),
        r.makespan().as_micros_f64(),
        r.messages,
        r.bytes_inter,
        r.bytes_intra,
        r.events
    ))
}

/// Everything a grid-measuring command (`bench`, `campaign`) needs,
/// parsed once so both commands accept the identical flag set.
struct BenchSetup {
    spec: DatasetSpec,
    library: MpiLibrary,
    bench: BenchConfig,
    plan: Option<FaultPlan>,
    retry: RetryPolicy,
}

fn bench_setup(args: &Args, id: &'static str) -> Result<BenchSetup, String> {
    let machine = parse_machine(args.require("machine")?)?;
    let coll = parse_coll(args.require("coll")?)?;
    let nodes = parse_u32_list(args.require("nodes")?)?;
    let ppn = parse_u32_list(args.require("ppn")?)?;
    let msizes = parse_size_list(args.require("msizes")?)?;
    let seed: u64 = args.get_or("seed", "1").parse().map_err(|_| "bad --seed".to_string())?;
    let plan = match args.get("fault-plan") {
        Some(s) => Some(FaultPlan::parse(s).map_err(|e| format!("--fault-plan: {e}"))?),
        None => None,
    };
    let retries: u32 = args
        .get_or("retries", "2")
        .parse()
        .map_err(|_| "bad --retries (want a small integer)".to_string())?;
    let backoff_ms: f64 = args
        .get_or("retry-backoff-ms", "0.1")
        .parse()
        .map_err(|_| "bad --retry-backoff-ms (want milliseconds)".to_string())?;
    if !backoff_ms.is_finite() || backoff_ms < 0.0 {
        return Err(format!("--retry-backoff-ms {backoff_ms} must be non-negative"));
    }
    let retry =
        RetryPolicy { max_retries: retries, backoff: SimTime::from_secs_f64(backoff_ms * 1e-3) };
    let lib_kind = match args.get_or("lib", "openmpi") {
        "intelmpi" | "intel" => LibKind::IntelMpi,
        _ => LibKind::OpenMpi,
    };
    let spec = DatasetSpec {
        id,
        coll,
        lib: lib_kind,
        machine: machine.clone(),
        nodes,
        ppn,
        msizes,
        seed,
    };
    let library = spec.library(None);
    let mut bench = BenchConfig::paper_default(&machine.name);
    if let Some(s) = args.get("max-reps") {
        bench.max_reps =
            s.parse().map_err(|_| "bad --max-reps (want a positive integer)".to_string())?;
    }
    Ok(BenchSetup { spec, library, bench, plan, retry })
}

/// `mpcp bench ...`
pub fn bench(args: &Args) -> Result<String, String> {
    let BenchSetup { spec, library, bench, plan, retry } = bench_setup(args, "cli")?;
    let coll = spec.coll;
    let out_path = args.require("out")?;
    let t0 = std::time::Instant::now();
    let data = spec.generate_with_faults(&library, &bench, plan.as_ref(), &retry);
    if data.records.is_empty() {
        return Err(format!(
            "no cells survived the benchmark run ({}); relax the fault plan",
            data.faults.summary()
        ));
    }
    write_csv(Path::new(out_path), &data.records).map_err(|e| e.to_string())?;
    let mut out = format!(
        "benchmarked {} cells ({} configurations) in {:.1}s\nsimulated benchmarking time: {:.1} min (bound {:.1} min)\n",
        data.records.len(),
        library.configs(coll).len(),
        t0.elapsed().as_secs_f64(),
        data.total_bench.as_secs_f64() / 60.0,
        data.budget_bound(&bench).as_secs_f64() / 60.0,
    );
    if plan.is_some() || data.faults.total() != data.faults.cells_ok {
        out.push_str(&format!("fault injection: {}\n", data.faults.summary()));
    }
    out.push_str(&format!("wrote {out_path}\n"));
    Ok(out)
}

/// One line of human-readable campaign accounting.
fn campaign_summary(report: &CampaignReport, secs: f64) -> String {
    let fresh = report.cells_total - report.cells_resumed;
    let mut out = format!(
        "campaign: {} cells in {} chunks, {} records ({:.1}% coverage)\n",
        report.cells_total,
        report.chunks_total,
        report.records.len(),
        100.0 * report.faults.coverage(),
    );
    if report.cells_resumed > 0 {
        out.push_str(&format!(
            "resumed {} cells ({} chunks) from the store; {} measured fresh\n",
            report.cells_resumed, report.chunks_resumed, fresh
        ));
    }
    if secs > 0.0 && fresh > 0 {
        out.push_str(&format!(
            "throughput: {:.0} cells/s over {:.1}s wall ({} steal(s))\n",
            fresh as f64 / secs,
            secs,
            report.steals
        ));
    }
    out.push_str(&format!(
        "simulated benchmarking time: {:.1} min\n",
        report.total_bench.as_secs_f64() / 60.0
    ));
    out
}

/// `mpcp campaign ...` — the parallel, checkpointed grid sweep.
///
/// With `--bench-out` it instead runs the same campaign fresh at 1
/// thread and at `--threads`, verifies the two stores are byte-for-byte
/// identical, and writes a BENCH_PR10.json speedup report (gated by
/// `--min-speedup`).
pub fn campaign(args: &Args) -> Result<String, String> {
    let setup = bench_setup(args, "campaign")?;
    let store_path = args.require("store")?;
    let threads: usize = match args.get("threads") {
        Some(s) => s.parse().map_err(|_| "bad --threads (want a positive integer)".to_string())?,
        None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    };
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    let checkpoint_every: u64 = args
        .get_or("checkpoint-every", "256")
        .parse()
        .map_err(|_| "bad --checkpoint-every (want cells per chunk)".to_string())?;
    if checkpoint_every == 0 {
        return Err("--checkpoint-every must be at least 1".into());
    }
    let cfg = CampaignConfig { threads, checkpoint_every, resume: args.flag("resume") };

    if let Some(bench_out) = args.get("bench-out") {
        return campaign_bench(args, &setup, store_path, &cfg, bench_out);
    }

    let t0 = std::time::Instant::now();
    let report = run_campaign(
        &setup.spec,
        &setup.library,
        &setup.bench,
        setup.plan.as_ref(),
        &setup.retry,
        &cfg,
        Path::new(store_path),
    )
    .map_err(|e| e.to_string())?;
    let secs = t0.elapsed().as_secs_f64();
    let mut out = campaign_summary(&report, secs);
    if setup.plan.is_some() || report.faults.total() != report.faults.cells_ok {
        out.push_str(&format!("fault injection: {}\n", report.faults.summary()));
    }
    if let Some(csv) = args.get("out") {
        if report.records.is_empty() {
            return Err(format!(
                "no cells survived the campaign ({}); relax the fault plan",
                report.faults.summary()
            ));
        }
        write_csv(Path::new(csv), &report.records).map_err(|e| e.to_string())?;
        out.push_str(&format!("wrote {csv}\n"));
    }
    out.push_str(&format!("store: {store_path} ({} chunks)\n", report.chunks_total));
    Ok(out)
}

/// The `--bench-out` mode of `mpcp campaign`: 1-thread vs N-thread
/// byte-identity check plus speedup measurement.
fn campaign_bench(
    args: &Args,
    setup: &BenchSetup,
    store_path: &str,
    cfg: &CampaignConfig,
    bench_out: &str,
) -> Result<String, String> {
    let single_path = format!("{store_path}.t1");
    let run = |threads: usize, path: &str| -> Result<(CampaignReport, f64), String> {
        let cfg = CampaignConfig { threads, resume: false, ..*cfg };
        let t0 = std::time::Instant::now();
        let report = run_campaign(
            &setup.spec,
            &setup.library,
            &setup.bench,
            setup.plan.as_ref(),
            &setup.retry,
            &cfg,
            Path::new(path),
        )
        .map_err(|e| e.to_string())?;
        Ok((report, t0.elapsed().as_secs_f64()))
    };
    let (_single, single_secs) = run(1, &single_path)?;
    let (multi, multi_secs) = run(cfg.threads, store_path)?;
    let single_bytes = std::fs::read(&single_path).map_err(|e| e.to_string())?;
    let multi_bytes = std::fs::read(store_path).map_err(|e| e.to_string())?;
    let byte_identical = single_bytes == multi_bytes;
    std::fs::remove_file(&single_path).ok();
    let cells = multi.cells_total;
    let speedup = if multi_secs > 0.0 { single_secs / multi_secs } else { 0.0 };
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let seed = setup.spec.seed;
    let prov = mpcp_obs::provenance::Provenance::capture("mpcp campaign --bench-out", Some(seed));
    let json = format!(
        r#"{{
  "pr": 10,
  "provenance": {},
  "config": {{
    "collective": {},
    "machine": {},
    "library": {},
    "seed": {seed},
    "cells": {cells},
    "chunks": {},
    "checkpoint_every": {},
    "threads": {},
    "cpus": {cpus}
  }},
  "single": {{ "secs": {single_secs:.3}, "cells_per_sec": {:.0} }},
  "multi": {{ "secs": {multi_secs:.3}, "cells_per_sec": {:.0} }},
  "speedup": {speedup:.2},
  "byte_identical": {byte_identical},
  "store_bytes": {}
}}
"#,
        prov.to_json(),
        mpcp_obs::export::json_string(setup.spec.coll.mpi_name()),
        mpcp_obs::export::json_string(&setup.spec.machine.name),
        mpcp_obs::export::json_string(setup.spec.lib.name()),
        multi.chunks_total,
        cfg.checkpoint_every,
        cfg.threads,
        if single_secs > 0.0 { cells as f64 / single_secs } else { 0.0 },
        if multi_secs > 0.0 { cells as f64 / multi_secs } else { 0.0 },
        multi_bytes.len(),
    );
    std::fs::write(bench_out, &json).map_err(|e| format!("writing {bench_out}: {e}"))?;
    let mut out = format!(
        "campaign bench: {cells} cells, {} threads on {cpus} cpu(s)\n\
         single-thread: {single_secs:.2}s ({:.0} cells/s)\n\
         {}-thread:     {multi_secs:.2}s ({:.0} cells/s)\n\
         speedup: {speedup:.2}x, stores byte-identical: {byte_identical}\n\
         wrote {bench_out}\n",
        cfg.threads,
        if single_secs > 0.0 { cells as f64 / single_secs } else { 0.0 },
        cfg.threads,
        if multi_secs > 0.0 { cells as f64 / multi_secs } else { 0.0 },
    );
    if !byte_identical {
        return Err(format!(
            "campaign gate failed: {}-thread store differs from 1-thread store\n{out}",
            cfg.threads
        ));
    }
    let min_speedup: f64 = args
        .get_or("min-speedup", "0")
        .parse()
        .map_err(|_| "bad --min-speedup (want a factor)".to_string())?;
    if min_speedup > 0.0 && speedup < min_speedup {
        return Err(format!(
            "campaign gate failed: speedup {speedup:.2}x at {} threads is below the \
             required {min_speedup}x\n{out}",
            cfg.threads
        ));
    }
    out.push_str(&campaign_summary(&multi, multi_secs));
    Ok(out)
}

type Trained = (Selector, TrainReport, MpiLibrary, Collective, Vec<mpcp_benchmark::Record>);

fn load_and_train(args: &Args) -> Result<Trained, String> {
    let coll = parse_coll(args.require("coll")?)?;
    let machine = parse_machine(args.get_or("machine", "hydra"))?;
    let lib = library(args, &machine, coll)?;
    let path = args.require("data")?;
    let data = read_csv(Path::new(path)).map_err(|e| e.to_string())?;
    if data.is_empty() {
        return Err(format!("dataset {path} is empty"));
    }
    let train = match args.get("train-nodes") {
        Some(s) => {
            let keep = parse_u32_list(s)?;
            data.iter().filter(|r| keep.contains(&r.nodes)).copied().collect()
        }
        None => data.clone(),
    };
    if train.is_empty() {
        return Err("no training records after --train-nodes filter".into());
    }
    let min_samples: usize = args
        .get_or("min-samples", "1")
        .parse()
        .map_err(|_| "bad --min-samples (want a positive integer)".to_string())?;
    let learner = parse_learner(args.get_or("learner", "gam"))?;
    let (selector, report) = Selector::train_with_report(
        &learner,
        &train,
        lib.configs(coll),
        &TrainOptions { min_samples },
    )
    .map_err(|e| format!("training on {path} failed: {e}"))?;
    Ok((selector, report, lib, coll, data))
}

/// Coverage note shown by `select`/`tune` when training was partial.
fn coverage_note(report: &TrainReport) -> String {
    if report.degraded() == 0 && report.records_out_of_range == 0 {
        return String::new();
    }
    format!("training coverage: {}\n", report.summary())
}

/// `mpcp train --data <csv> --coll <c> --save-model <path> [...]`
///
/// Offline half of the serving split: fit a selector from a dataset
/// CSV and persist it (models + coverage + provenance manifest) as a
/// binary artifact that `select --model` / `serve-bench` load without
/// retraining.
pub fn train(args: &Args) -> Result<String, String> {
    let out_path = args.require("save-model")?;
    let (selector, report, lib, coll, _data) = load_and_train(args)?;
    let machine = parse_machine(args.get_or("machine", "hydra"))?;
    let seed = match args.get("seed") {
        Some(s) => Some(s.parse::<u64>().map_err(|_| "bad --seed".to_string())?),
        None => None,
    };
    let min_samples: usize = args
        .get_or("min-samples", "1")
        .parse()
        .map_err(|_| "bad --min-samples (want a positive integer)".to_string())?;
    let meta = ArtifactMeta::capture(
        coll,
        &format!("{} {}", lib.name, lib.version),
        &machine.name,
        seed,
        &TrainOptions { min_samples },
    );
    selector
        .save(Path::new(out_path), &report, &meta)
        .map_err(|e| format!("saving model: {e}"))?;
    let bytes = std::fs::metadata(out_path).map(|m| m.len()).unwrap_or(0);
    let mut out = format!(
        "trained {} selector for {} ({} models)\n",
        selector.learner_name(),
        coll.mpi_name(),
        selector.model_count()
    );
    out.push_str(&coverage_note(&report));
    out.push_str(&format!(
        "saved model artifact to {out_path} ({bytes} bytes, git {})\n",
        meta.git_sha
    ));
    Ok(out)
}

/// Rebuild the library a saved artifact was trained against from its
/// manifest, for config labels and the degraded-fallback path.
fn library_of_meta(meta: &ArtifactMeta) -> Result<MpiLibrary, String> {
    if meta.library.to_ascii_lowercase().contains("intel") {
        let machine = parse_machine(&meta.machine)?;
        Ok(MpiLibrary::intel_mpi_2019_for(
            &machine,
            mpcp_collectives::decision::TuningGrid::vendor_default(
                machine.max_nodes,
                machine.max_ppn,
            ),
            &[meta.collective],
        ))
    } else {
        Ok(MpiLibrary::open_mpi_4_0_2())
    }
}

/// `mpcp select --model <artifact> ...`: answer from a saved artifact,
/// skipping dataset loading and training entirely.
fn select_from_model(args: &Args) -> Result<String, String> {
    let path = args.require("model")?;
    let artifact =
        Selector::load(Path::new(path)).map_err(|e| format!("loading model: {e}"))?;
    let coll = artifact.meta.collective;
    if let Some(c) = args.get("coll") {
        let want = parse_coll(c)?;
        if want != coll {
            return Err(format!(
                "--coll {} but {path} was trained for {}",
                want.mpi_name(),
                coll.mpi_name()
            ));
        }
    }
    let lib = library_of_meta(&artifact.meta)?;
    let nodes: u32 = args.require("nodes")?.parse().map_err(|_| "bad --nodes".to_string())?;
    let ppn: u32 = args.require("ppn")?.parse().map_err(|_| "bad --ppn".to_string())?;
    let msize = parse_size(args.require("msize")?)?;
    let inst = Instance::new(coll, msize, nodes, ppn);
    let selection = artifact.selector.select_with_fallback(&inst, &lib);
    let configs = lib.configs(coll);
    let default_uid = lib.default_choice(coll, msize, &Topology::new(nodes, ppn));
    let mut out = format!(
        "model: {path} ({} on {} / {}, git {})\ninstance: {inst}\n",
        artifact.selector.learner_name(),
        artifact.meta.machine,
        artifact.meta.library,
        artifact.meta.git_sha
    );
    out.push_str(&coverage_note(&artifact.report));
    match selection.predicted_us {
        Some(pred) => out.push_str(&format!(
            "predicted best: uid {} = {} (~{pred:.1} us predicted)\n",
            selection.uid,
            configs[selection.uid as usize].label()
        )),
        None => out.push_str(&format!(
            "DEGRADED selection: no trained model covers this instance; \
             falling back to library decision logic: uid {} = {}\n",
            selection.uid,
            configs[selection.uid as usize].label()
        )),
    }
    out.push_str(&format!(
        "library default: uid {default_uid} = {}\n",
        configs[default_uid].label()
    ));
    if let Some(data_path) = args.get("data") {
        let data = read_csv(Path::new(data_path)).map_err(|e| e.to_string())?;
        let table = RuntimeTable::new(&data);
        if let Some((best_uid, best)) = table.best(&inst) {
            out.push_str(&format!(
                "measured best: uid {best_uid} = {} ({:.1} us)\n",
                configs[best_uid as usize].label(),
                best * 1e6
            ));
        }
    }
    Ok(out)
}

/// `mpcp select ...`
pub fn select(args: &Args) -> Result<String, String> {
    if args.get("model").is_some() {
        return select_from_model(args);
    }
    let (selector, report, lib, coll, data) = load_and_train(args)?;
    let nodes: u32 = args.require("nodes")?.parse().map_err(|_| "bad --nodes".to_string())?;
    let ppn: u32 = args.require("ppn")?.parse().map_err(|_| "bad --ppn".to_string())?;
    let msize = parse_size(args.require("msize")?)?;
    let inst = Instance::new(coll, msize, nodes, ppn);
    let selection = selector.select_with_fallback(&inst, &lib);
    let uid = selection.uid;
    let configs = lib.configs(coll);
    let default_uid = lib.default_choice(coll, msize, &Topology::new(nodes, ppn));
    let mut out = format!("instance: {inst}\n");
    out.push_str(&coverage_note(&report));
    match selection.predicted_us {
        Some(pred) => out.push_str(&format!(
            "predicted best: uid {uid} = {} (~{pred:.1} us predicted)\n",
            configs[uid as usize].label()
        )),
        None => out.push_str(&format!(
            "DEGRADED selection: no trained model covers this instance; \
             falling back to library decision logic: uid {uid} = {}\n",
            configs[uid as usize].label()
        )),
    }
    out.push_str(&format!("library default: uid {default_uid} = {}\n", configs[default_uid].label()));
    // If the instance was benchmarked, show the ground truth too.
    let table = RuntimeTable::new(&data);
    if let Some((best_uid, best)) = table.best(&inst) {
        out.push_str(&format!(
            "measured best: uid {best_uid} = {} ({:.1} us)\n",
            configs[best_uid as usize].label(),
            best * 1e6
        ));
        if let Some(t) = table.runtime(&inst, uid) {
            out.push_str(&format!("predicted algorithm measured at {:.1} us\n", t * 1e6));
        }
    }
    Ok(out)
}

/// `mpcp tune ...`
pub fn tune(args: &Args) -> Result<String, String> {
    let (selector, report, lib, coll, _) = load_and_train(args)?;
    let nodes: u32 = args.require("nodes")?.parse().map_err(|_| "bad --nodes".to_string())?;
    let ppn: u32 = args.require("ppn")?.parse().map_err(|_| "bad --ppn".to_string())?;
    let tf = TuningFile::generate(
        &selector,
        lib.configs(coll),
        coll,
        nodes,
        ppn,
        &default_query_sizes(),
    );
    let rendered = format!("{}{}", coverage_note(&report), tf.render());
    if let Some(path) = args.get("out") {
        tf.write(Path::new(path)).map_err(|e| e.to_string())?;
        Ok(format!("{rendered}\nwritten to {path}\n"))
    } else {
        Ok(rendered)
    }
}

/// The fixed query-cell grid `serve-bench` cycles over: a cross
/// product of message sizes, node counts, and ppn clipped to the
/// machine the artifact was trained on.
fn bench_cells(coll: Collective, max_nodes: u32, max_ppn: u32) -> Vec<Instance> {
    let msizes = [16u64, 256, 4 << 10, 64 << 10, 1 << 20];
    let mut nodes = Vec::new();
    let mut n = 2u32;
    while n <= max_nodes.min(32) {
        nodes.push(n);
        n *= 2;
    }
    if nodes.is_empty() {
        nodes.push(max_nodes.max(1));
    }
    let ppns: Vec<u32> = [1u32, 2, 8, 16].into_iter().filter(|p| *p <= max_ppn.max(1)).collect();
    let mut cells = Vec::new();
    for &m in &msizes {
        for &nd in &nodes {
            for &p in &ppns {
                cells.push(Instance::new(coll, m, nd, p));
            }
        }
    }
    cells
}

/// Closed-loop load phase: `threads` threads issue `requests` queries
/// round-robin over `cells`, each thread starting at a different
/// offset. Returns `(wall_seconds, sorted per-request latencies in ns)`.
fn drive_phase<F>(
    threads: usize,
    requests: usize,
    cells: &[Instance],
    query: F,
) -> Result<(f64, Vec<u64>), String>
where
    F: Fn(&Instance) -> Result<mpcp_core::Selection, mpcp_serve::ServeError> + Sync,
{
    let per = requests.div_ceil(threads);
    let t0 = std::time::Instant::now();
    let mut lats: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let query = &query;
                s.spawn(move || -> Result<Vec<u64>, String> {
                    let mut lat = Vec::with_capacity(per);
                    for i in 0..per {
                        let inst = &cells[(t * 7919 + i) % cells.len()];
                        let q0 = std::time::Instant::now();
                        query(inst).map_err(|e| format!("serve query failed: {e}"))?;
                        let ns = q0.elapsed().as_nanos();
                        lat.push(u64::try_from(ns).unwrap_or(u64::MAX));
                    }
                    Ok(lat)
                })
            })
            .collect();
        let mut all = Vec::with_capacity(per * threads);
        for h in handles {
            let lat = h.join().map_err(|_| "bench thread panicked".to_string())??;
            all.extend(lat);
        }
        Ok::<Vec<u64>, String>(all)
    })?;
    let wall = t0.elapsed().as_secs_f64();
    lats.sort_unstable();
    Ok((wall, lats))
}

/// Percentile (0..=100) of a sorted latency vector.
fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (sorted.len() * p / 100).min(sorted.len() - 1);
    sorted[idx]
}

/// Raw selection-kernel instance rates, measured on the bare
/// [`Selector`] before it moves into the service: the tiled batch
/// argmin over a 2048-row block, and the scalar fused argmin one row
/// at a time. These isolate the SoA tree kernels from routing, cache,
/// and queue overhead.
fn kernel_rates(selector: &Selector, cells: &[Instance]) -> (f64, f64) {
    const BLOCK: usize = 2048;
    let mut block = Vec::with_capacity(BLOCK + cells.len());
    while block.len() < BLOCK {
        block.extend_from_slice(cells);
    }
    block.truncate(BLOCK);
    let t0 = std::time::Instant::now();
    let mut done = 0u64;
    loop {
        std::hint::black_box(selector.select_batch(std::hint::black_box(&block)));
        done += block.len() as u64;
        if t0.elapsed().as_secs_f64() > 0.2 {
            break;
        }
    }
    let batch_ips = done as f64 / t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let mut done = 0u64;
    loop {
        for inst in cells {
            std::hint::black_box(selector.select(std::hint::black_box(inst)));
        }
        done += cells.len() as u64;
        if t1.elapsed().as_secs_f64() > 0.2 {
            break;
        }
    }
    let scalar_ips = done as f64 / t1.elapsed().as_secs_f64();
    (batch_ips, scalar_ips)
}

/// Atomically publish `body` at `path`: write a sibling tmp file and
/// rename it over the target, so a concurrent `mpcp top` never reads a
/// torn document.
fn write_atomic(path: &str, body: &str) -> Result<(), String> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, body)
        .and_then(|()| std::fs::rename(&tmp, path))
        .map_err(|e| format!("writing {path}: {e}"))
}

/// The flight recorder's state as a JSON fragment (`null` if never
/// armed).
fn flight_status_json() -> String {
    match mpcp_obs::flight::status() {
        Some(st) => format!(
            "{{\"armed\":{},\"dumped\":{},\"dump_ok\":{},\"events_seen\":{},\"dump_path\":{}}}",
            st.armed,
            st.dumped,
            st.dump_ok,
            st.events_seen,
            mpcp_obs::export::json_string(&st.dump_path.display().to_string()),
        ),
        None => "null".to_string(),
    }
}

/// A daemon counter snapshot as a JSON fragment for the stats file.
fn net_stats_json(n: &mpcp_serve::NetStatsSnapshot) -> String {
    format!(
        "{{\"requests\":{},\"accepted\":{},\"shed\":{},\"overloaded\":{},\
         \"errors\":{},\"inflight\":{},\"connections_open\":{},\
         \"connections_total\":{},\"idle_closed\":{}}}",
        n.requests,
        n.accepted,
        n.shed,
        n.overloaded,
        n.errors,
        n.inflight,
        n.connections_open,
        n.connections_total,
        n.idle_closed,
    )
}

/// Publish the service's live windowed stats (plus flight-recorder
/// state and, for the daemon, the wire counters) to `path`. The
/// `finished` marker tells `mpcp top` the run is over.
fn write_live_stats(
    path: &str,
    svc: &mpcp_serve::PredictionService,
    net: Option<&mpcp_serve::NetStatsSnapshot>,
    finished: bool,
) -> Result<(), String> {
    let Some(stats) = svc.live_stats() else { return Ok(()) };
    let net_json = match net {
        Some(n) => net_stats_json(n),
        None => "null".to_string(),
    };
    let body = format!(
        "{{\"finished\":{finished},\"flight\":{},\"net\":{net_json},\"stats\":{}}}\n",
        flight_status_json(),
        stats.to_json(),
    );
    write_atomic(path, &body)
}

/// One synthetic latency spike: a `serve.spike` span that sleeps for
/// `ms` — long enough to cross the flight recorder's latency trigger.
fn latency_spike(ms: f64) {
    let _g = mpcp_obs::span("serve.spike").attr("ms", ms);
    std::thread::sleep(std::time::Duration::from_secs_f64(ms / 1e3));
}

/// Open-ended load phase for `--duration`: `threads` threads hammer
/// the cached path while this thread publishes live stats to
/// `stats_out` every 200ms (and fires the synthetic spike halfway
/// through, if requested). Returns the number of requests served.
fn sustained_phase(
    threads: usize,
    secs: f64,
    cells: &[Instance],
    svc: &mpcp_serve::PredictionService,
    key: &mpcp_serve::ShardKey,
    stats_out: Option<&str>,
    spike_ms: f64,
) -> Result<u64, String> {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    std::thread::scope(|s| -> Result<(), String> {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let (stop, total) = (&stop, &total);
                s.spawn(move || -> Result<(), String> {
                    let mut i = t * 7919;
                    let mut served = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let inst = &cells[i % cells.len()];
                        i += 1;
                        svc.select(key, inst).map_err(|e| format!("sustained query: {e}"))?;
                        served += 1;
                    }
                    total.fetch_add(served, Ordering::Relaxed);
                    Ok(())
                })
            })
            .collect();
        let t0 = std::time::Instant::now();
        let mut spiked = spike_ms <= 0.0;
        let mut publish_err = Ok(());
        while t0.elapsed().as_secs_f64() < secs {
            std::thread::sleep(std::time::Duration::from_millis(200));
            if !spiked && t0.elapsed().as_secs_f64() >= secs * 0.5 {
                spiked = true;
                latency_spike(spike_ms);
            }
            if let Some(p) = stats_out {
                if publish_err.is_ok() {
                    publish_err = write_live_stats(p, svc, None, false);
                }
            }
        }
        if !spiked {
            latency_spike(spike_ms); // duration too short for the midpoint
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().map_err(|_| "sustained thread panicked".to_string())??;
        }
        publish_err
    })?;
    Ok(total.load(std::sync::atomic::Ordering::Relaxed))
}

/// `mpcp served --model <artifact> [--addr 127.0.0.1:0]
/// [--addr-out <file>] [--workers 2] [--max-batch 64] [--max-queue 1024]
/// [--idle-timeout-ms 300000] [--reply-timeout-ms 30000]
/// [--max-shed-inflight 64] [--cache 4096] [--duration <secs>]
/// [--stats-out <file>]`
///
/// Serve a saved model artifact over TCP. Requests and responses are
/// length-framed with the persist codec (magic, version, kind,
/// checksum — see DESIGN §15) and pipelined per connection. Admission
/// is bounded by `--max-queue`: overloaded requests are shed to the
/// library's built-in decision logic and the reply is marked degraded;
/// once `--max-shed-inflight` concurrent fallbacks are in flight the
/// daemon answers a typed `overloaded` error instead. Nothing queues
/// unboundedly and nothing is silently dropped.
///
/// Runs until a wire `shutdown` op arrives (`mpcp serve-bench
/// --connect <addr> --shutdown-server`) or `--duration` elapses, then
/// drains every admitted request to a written reply before exiting.
/// With `--stats-out`, live windowed stats plus the wire counters are
/// published for `mpcp top`; `--addr-out` writes the resolved listen
/// address (use `--addr 127.0.0.1:0` for an ephemeral port).
pub fn served(args: &Args) -> Result<String, String> {
    use mpcp_serve::{BatchConfig, NetConfig, NetServer, PredictionService, ShedFn};

    let path = args.require("model")?;
    let addr = args.get_or("addr", "127.0.0.1:0").to_string();
    let workers: usize =
        args.get_or("workers", "2").parse().map_err(|_| "bad --workers".to_string())?;
    let max_batch: usize =
        args.get_or("max-batch", "64").parse().map_err(|_| "bad --max-batch".to_string())?;
    let max_queue: usize =
        args.get_or("max-queue", "1024").parse().map_err(|_| "bad --max-queue".to_string())?;
    let cache: usize =
        args.get_or("cache", "4096").parse().map_err(|_| "bad --cache".to_string())?;
    let idle_ms: u64 = args
        .get_or("idle-timeout-ms", "300000")
        .parse()
        .map_err(|_| "bad --idle-timeout-ms".to_string())?;
    let reply_ms: u64 = args
        .get_or("reply-timeout-ms", "30000")
        .parse()
        .map_err(|_| "bad --reply-timeout-ms".to_string())?;
    let max_shed_inflight: usize = args
        .get_or("max-shed-inflight", "64")
        .parse()
        .map_err(|_| "bad --max-shed-inflight".to_string())?;
    let duration: f64 =
        args.get_or("duration", "0").parse().map_err(|_| "bad --duration".to_string())?;
    let stats_out = args.get("stats-out");

    let artifact =
        Selector::load(Path::new(path)).map_err(|e| format!("loading model: {e}"))?;
    let learner = artifact.selector.learner_name();
    let meta = artifact.meta.clone();
    let lib = library_of_meta(&meta)?;
    let coll = meta.collective;
    let svc = std::sync::Arc::new(PredictionService::new(cache));
    let key = svc.insert_artifact(artifact);

    let self_enabled_obs = stats_out.is_some() && !mpcp_obs::enabled();
    if self_enabled_obs {
        mpcp_obs::set_enabled(true);
    }
    if stats_out.is_some() {
        svc.enable_telemetry(mpcp_serve::TelemetryConfig::default());
    }

    // The overload fallback: the library's own decision logic, exactly
    // what an untrained deployment would run. Shard/collective
    // mismatches return None so the daemon answers a typed error
    // instead of a wrong-model guess.
    let shed: ShedFn = {
        let key = key.clone();
        std::sync::Arc::new(move |k: &mpcp_serve::ShardKey, inst: &Instance| {
            if *k != key || inst.coll != coll {
                return None;
            }
            let uid =
                lib.default_choice(coll, inst.msize, &Topology::new(inst.nodes, inst.ppn));
            let uid = u32::try_from(uid).ok()?;
            Some(mpcp_core::Selection { uid, predicted_us: None, degraded: true })
        })
    };
    let cfg = NetConfig {
        addr,
        batch: BatchConfig {
            workers: workers.max(1),
            max_batch: max_batch.max(1),
            max_queue: max_queue.max(1),
        },
        idle_timeout: std::time::Duration::from_millis(idle_ms.max(1)),
        reply_timeout: std::time::Duration::from_millis(reply_ms.max(1)),
        max_shed_inflight,
    };
    let server = NetServer::start(std::sync::Arc::clone(&svc), shed, cfg)
        .map_err(|e| format!("starting daemon: {e}"))?;
    let bound = server.local_addr();
    if let Some(p) = args.get("addr-out") {
        write_atomic(p, &format!("{bound}\n"))?;
    }
    println!("mpcp served: {learner}/{} listening on {bound} (shard {key})", meta.machine);
    {
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
    }

    let t0 = std::time::Instant::now();
    let mut publish_err: Result<(), String> = Ok(());
    while server.running() {
        if duration > 0.0 && t0.elapsed().as_secs_f64() >= duration {
            server.stop();
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
        if let Some(p) = stats_out {
            if publish_err.is_ok() {
                publish_err = write_live_stats(p, &svc, Some(&server.stats()), false);
            }
        }
    }
    // Join before surfacing a publish error: the drain must happen
    // even when the stats file went bad mid-run.
    let stats = server.join();
    publish_err?;
    if let Some(p) = stats_out {
        write_live_stats(p, &svc, Some(&stats), true)?;
    }
    if self_enabled_obs {
        mpcp_obs::set_enabled(false);
    }
    Ok(format!(
        "mpcp served: drained and stopped after {:.1}s\n\
         connections: {} total, {} closed idle\n\
         requests:    {} decoded = {} accepted + {} shed + {} overloaded \
         ({} error replies, {} in flight at exit)\n",
        t0.elapsed().as_secs_f64(),
        stats.connections_total,
        stats.idle_closed,
        stats.requests,
        stats.accepted,
        stats.shed,
        stats.overloaded,
        stats.errors,
        stats.inflight,
    ))
}

/// `mpcp serve-bench --model <artifact> [--threads 8] [--requests N]
/// [--cache CAP] [--min-speedup X] [--baseline BENCH_PRn.json]
/// [--min-uncached-speedup X] [--out BENCH_PR7.json]
/// [--telemetry-gate R] [--duration S] [--stats-out <file>]
/// [--spike-ms MS] [--flight-out <file>] [--flight-threshold-ms MS]`
///
/// Drives N-thread closed-loop load against a [`PredictionService`]
/// three ways — uncached (every query evaluates all models), cached
/// (per-shard LRU), and through the [`BatchServer`] queue — after
/// asserting all paths return identical selections per grid cell. A
/// kernel phase additionally reports raw selector instance rates
/// (batch and scalar fused argmin) with no serving layer in the way.
/// `--baseline` points at an earlier run's JSON; combined with
/// `--min-uncached-speedup` it gates this run's uncached throughput
/// against that file's `uncached.qps`.
///
/// [`PredictionService`]: mpcp_serve::PredictionService
/// [`BatchServer`]: mpcp_serve::BatchServer
pub fn serve_bench(args: &Args) -> Result<String, String> {
    use mpcp_serve::{BatchConfig, BatchServer, PredictionService};

    if args.get("connect").is_some() {
        return serve_bench_connect(args);
    }

    let path = args.require("model")?;
    let threads: usize = args
        .get_or("threads", "8")
        .parse()
        .map_err(|_| "bad --threads".to_string())?;
    let threads = threads.max(1);
    let requests: usize = args
        .get_or("requests", "20000")
        .parse()
        .map_err(|_| "bad --requests".to_string())?;
    let cache: usize = args.get_or("cache", "4096").parse().map_err(|_| "bad --cache".to_string())?;
    let min_speedup: f64 = args
        .get_or("min-speedup", "0")
        .parse()
        .map_err(|_| "bad --min-speedup".to_string())?;
    let min_uncached_speedup: f64 = args
        .get_or("min-uncached-speedup", "0")
        .parse()
        .map_err(|_| "bad --min-uncached-speedup".to_string())?;
    let telemetry_gate: f64 = args
        .get_or("telemetry-gate", "0")
        .parse()
        .map_err(|_| "bad --telemetry-gate".to_string())?;
    let duration: f64 = args
        .get_or("duration", "0")
        .parse()
        .map_err(|_| "bad --duration".to_string())?;
    let spike_ms: f64 = args
        .get_or("spike-ms", "0")
        .parse()
        .map_err(|_| "bad --spike-ms".to_string())?;
    let flight_threshold_ms: f64 = args
        .get_or("flight-threshold-ms", "50")
        .parse()
        .map_err(|_| "bad --flight-threshold-ms".to_string())?;
    let stats_out = args.get("stats-out");
    let flight_out = args.get("flight-out");
    let baseline_qps: Option<f64> = match args.get("baseline") {
        Some(p) => {
            let text =
                std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"))?;
            let doc =
                mpcp_obs::json::parse(&text).map_err(|e| format!("{p}: bad JSON: {e}"))?;
            let qps = doc
                .get("uncached")
                .and_then(|u| u.get("qps"))
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("{p}: no uncached.qps field"))?;
            Some(qps)
        }
        None => None,
    };
    if min_uncached_speedup > 0.0 && baseline_qps.is_none() {
        return Err("--min-uncached-speedup needs --baseline".to_string());
    }

    let artifact =
        Selector::load(Path::new(path)).map_err(|e| format!("loading model: {e}"))?;
    let learner = artifact.selector.learner_name();
    let coverage = artifact.report.summary();
    let meta = artifact.meta.clone();
    let (max_nodes, max_ppn) = match parse_machine(&meta.machine) {
        Ok(m) => (m.max_nodes, m.max_ppn),
        Err(_) => (8, 16), // foreign machine name: a conservative grid
    };
    let cells = bench_cells(meta.collective, max_nodes, max_ppn);
    let (kernel_batch_ips, kernel_scalar_ips) = kernel_rates(&artifact.selector, &cells);
    let svc = std::sync::Arc::new(PredictionService::new(cache));
    let key = svc.insert_artifact(artifact);

    // Equal-results gate before any timing: per cell, the cached,
    // uncached, and batch paths must agree bit-for-bit.
    let batch = BatchServer::start(
        std::sync::Arc::clone(&svc),
        BatchConfig { workers: threads.min(4), max_batch: 64, ..BatchConfig::default() },
    );
    for inst in &cells {
        let uncached = svc.select_uncached(&key, inst).map_err(|e| e.to_string())?;
        let cached = svc.select(&key, inst).map_err(|e| e.to_string())?;
        let batched = batch.query(key.clone(), *inst).map_err(|e| e.to_string())?;
        for (name, got) in [("cached", cached), ("batched", batched)] {
            if got.uid != uncached.uid
                || got.predicted_us.map(f64::to_bits)
                    != uncached.predicted_us.map(f64::to_bits)
            {
                return Err(format!(
                    "{name} path diverged from uncached on {inst}: \
                     {got:?} vs {uncached:?}"
                ));
            }
        }
    }

    // Phase 1: uncached — every query runs the full model argmin.
    let (wall_unc, lat_unc) = drive_phase(threads, requests, &cells, |i| {
        svc.select_uncached(&key, i)
    })?;
    // Phase 2: cached — the warm LRU answers from the grid cell key.
    let (wall_c, lat_c) = drive_phase(threads, requests, &cells, |i| svc.select(&key, i))?;
    // Phase 3: the batch queue (submit + wait per request).
    let (wall_b, lat_b) =
        drive_phase(threads, requests, &cells, |i| batch.query(key.clone(), *i))?;
    batch.shutdown();

    let stats = svc.stats();
    let qps = |wall: f64| if wall > 0.0 { requests as f64 / wall } else { 0.0 };
    let (qps_unc, qps_c, qps_b) = (qps(wall_unc), qps(wall_c), qps(wall_b));
    let speedup = if qps_unc > 0.0 { qps_c / qps_unc } else { 0.0 };

    // Optional telemetry phases: enable windowed recording, re-run the
    // cached phase to measure the recording overhead (both runs see a
    // fully warm cache, so the comparison is apples-to-apples), then
    // sustain load for `--duration` seconds while publishing live
    // stats for `mpcp top` and letting the flight recorder watch for
    // the synthetic spike.
    let run_telemetry =
        telemetry_gate > 0.0 || duration > 0.0 || stats_out.is_some() || spike_ms > 0.0;
    let mut telemetry_json = String::new();
    let mut telemetry_human = String::new();
    let mut overhead_ratio = None;
    if run_telemetry {
        let self_enabled_obs = !mpcp_obs::enabled();
        if self_enabled_obs {
            mpcp_obs::set_enabled(true);
        }
        svc.enable_telemetry(mpcp_serve::TelemetryConfig::default());
        let (wall_on, _) = drive_phase(threads, requests, &cells, |i| svc.select(&key, i))?;
        let qps_on = qps(wall_on);
        let ratio = if qps_c > 0.0 { qps_on / qps_c } else { 0.0 };
        overhead_ratio = Some(ratio);
        // Arm the flight recorder only now: the batch pool (and its
        // `serve.batch.*` spans) is already drained, so the synthetic
        // `serve.spike` span is the only thing that can trip the
        // latency trigger.
        let armed = spike_ms > 0.0 || flight_out.is_some();
        if armed {
            mpcp_obs::flight::arm(mpcp_obs::flight::FlightConfig {
                latency_threshold_ns: Some((flight_threshold_ms * 1e6) as u64),
                latency_prefix: "serve.".to_string(),
                dump_path: flight_out.unwrap_or("flight_dump.json").into(),
                ..mpcp_obs::flight::FlightConfig::default()
            });
        }
        let sustained = if duration > 0.0 {
            sustained_phase(threads, duration, &cells, &svc, &key, stats_out, spike_ms)?
        } else {
            if spike_ms > 0.0 {
                latency_spike(spike_ms);
            }
            0
        };
        let live =
            svc.live_stats().ok_or_else(|| "telemetry enabled but no live stats".to_string())?;
        if let Some(p) = stats_out {
            write_live_stats(p, &svc, None, true)?;
        }
        let flight_json = flight_status_json();
        if armed {
            mpcp_obs::flight::disarm();
        }
        if self_enabled_obs {
            mpcp_obs::set_enabled(false);
        }
        telemetry_json = format!(
            "\n  \"telemetry\": {{ \"qps_on\": {qps_on:.0}, \"qps_off\": {qps_c:.0}, \
             \"overhead_ratio\": {ratio:.3}, \"sustained_requests\": {sustained}, \
             \"window\": {{ \"p50_ns\": {}, \"p99_ns\": {}, \"rate_per_sec\": {:.0}, \
             \"hit_ratio\": {:.4}, \"worst_burn_rate\": {:.3} }}, \"flight\": {flight_json} }},",
            live.p50_ns,
            live.p99_ns,
            live.rate_per_sec(),
            live.hit_ratio(),
            live.worst_burn_rate(),
        );
        telemetry_human = format!(
            "telemetry: {qps_on:>10.0} qps recording-on vs {qps_c:.0} off \
             ({ratio:.3}x), window p99 {} ns, hit ratio {:.3}\n",
            live.p99_ns,
            live.hit_ratio(),
        );
    }

    let uncached_speedup = baseline_qps.map(|b| if b > 0.0 { qps_unc / b } else { 0.0 });
    let baseline_json = match (args.get("baseline"), baseline_qps, uncached_speedup) {
        (Some(p), Some(b), Some(s)) => format!(
            "\n  \"baseline\": {{ \"path\": {}, \"uncached_qps\": {b:.0}, \
             \"uncached_speedup\": {s:.2} }},",
            mpcp_obs::export::json_string(p)
        ),
        _ => String::new(),
    };
    let prov = mpcp_obs::provenance::Provenance::capture("mpcp serve-bench", meta.seed);
    let json = format!(
        r#"{{
  "pr": 7,
  "provenance": {},
  "config": {{
    "model": {},
    "learner": {},
    "collective": {},
    "machine": {},
    "library": {},
    "coverage": {},
    "threads": {threads},
    "requests_per_phase": {requests},
    "cache_capacity": {cache},
    "distinct_cells": {}
  }},
  "kernel": {{ "batch_insts_per_sec": {kernel_batch_ips:.0}, "scalar_insts_per_sec": {kernel_scalar_ips:.0} }},
  "uncached": {{ "qps": {qps_unc:.0}, "p50_ns": {}, "p99_ns": {} }},
  "cached": {{ "qps": {qps_c:.0}, "p50_ns": {}, "p99_ns": {}, "hits": {}, "misses": {}, "hit_ratio": {:.4} }},
  "batched": {{ "qps": {qps_b:.0}, "p50_ns": {}, "p99_ns": {} }},{baseline_json}{telemetry_json}
  "speedup_cached_vs_uncached": {speedup:.2},
  "equal_results": true
}}
"#,
        prov.to_json(),
        mpcp_obs::export::json_string(path),
        mpcp_obs::export::json_string(learner),
        mpcp_obs::export::json_string(meta.collective.mpi_name()),
        mpcp_obs::export::json_string(&meta.machine),
        mpcp_obs::export::json_string(&meta.library),
        mpcp_obs::export::json_string(&coverage),
        cells.len(),
        percentile(&lat_unc, 50),
        percentile(&lat_unc, 99),
        percentile(&lat_c, 50),
        percentile(&lat_c, 99),
        stats.hits(),
        stats.misses(),
        stats.hit_ratio(),
        percentile(&lat_b, 50),
        percentile(&lat_b, 99),
    );
    let mut out = format!(
        "serve-bench: {} on {} cells, {threads} threads x {requests} requests/phase\n\
         kernel:   {kernel_batch_ips:>10.0} inst/s batch, {kernel_scalar_ips:>10.0} inst/s scalar\n\
         uncached: {qps_unc:>10.0} qps  (p99 {:>8} ns)\n\
         cached:   {qps_c:>10.0} qps  (p99 {:>8} ns, hit ratio {:.3})\n\
         batched:  {qps_b:>10.0} qps  (p99 {:>8} ns)\n\
         cached/uncached speedup: {speedup:.1}x\n",
        key,
        cells.len(),
        percentile(&lat_unc, 99),
        percentile(&lat_c, 99),
        stats.hit_ratio(),
        percentile(&lat_b, 99),
    );
    if let Some(s) = uncached_speedup {
        out.push_str(&format!("uncached speedup vs baseline: {s:.2}x\n"));
    }
    out.push_str(&telemetry_human);
    if let Some(out_path) = args.get("out") {
        std::fs::write(out_path, &json).map_err(|e| format!("writing {out_path}: {e}"))?;
        out.push_str(&format!("wrote {out_path}\n"));
    }
    if min_speedup > 0.0 && speedup < min_speedup {
        return Err(format!(
            "serve-bench gate failed: cached/uncached speedup {speedup:.2}x \
             is below the required {min_speedup}x\n{out}"
        ));
    }
    if min_uncached_speedup > 0.0 {
        let s = uncached_speedup.unwrap_or(0.0);
        if s < min_uncached_speedup {
            return Err(format!(
                "serve-bench gate failed: uncached throughput {qps_unc:.0} qps is \
                 {s:.2}x the baseline, below the required {min_uncached_speedup}x\n{out}"
            ));
        }
    }
    if telemetry_gate > 0.0 {
        let r = overhead_ratio.unwrap_or(0.0);
        if r < telemetry_gate {
            return Err(format!(
                "serve-bench gate failed: telemetry-on throughput is {r:.3}x \
                 telemetry-off, below the required {telemetry_gate}x\n{out}"
            ));
        }
    }
    Ok(out)
}

/// One wire phase's merged tally (see [`wire_phase`]).
struct WirePhase {
    /// Per-reply round-trip latencies in ns, unsorted.
    lats: Vec<u64>,
    /// Non-degraded selections.
    ok: u64,
    /// Degraded (shed) selections.
    shed: u64,
    /// Typed error replies (overloaded, timeout, ...).
    errors: u64,
}

/// Drive `requests` pipelined selects against the daemon at `addr`
/// from `threads` connections, keeping up to `window` requests in
/// flight per connection. Every send is matched to exactly one
/// in-order reply — a missing or reordered reply fails the phase, so
/// a silent drop can never masquerade as throughput. Returns
/// `(wall_secs, offered, tally)`; `offered = threads *
/// ceil(requests/threads)`.
fn wire_phase(
    addr: &str,
    key: &mpcp_serve::ShardKey,
    cells: &[Instance],
    threads: usize,
    requests: usize,
    window: usize,
) -> Result<(f64, usize, WirePhase), String> {
    use mpcp_serve::{NetClient, Reply};

    let per = requests.div_ceil(threads);
    let t0 = std::time::Instant::now();
    let parts = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || -> Result<WirePhase, String> {
                    let mut client = NetClient::connect(addr)
                        .map_err(|e| format!("connecting {addr}: {e}"))?;
                    let mut out =
                        WirePhase { lats: Vec::with_capacity(per), ok: 0, shed: 0, errors: 0 };
                    let mut pending: std::collections::VecDeque<(u64, std::time::Instant)> =
                        std::collections::VecDeque::with_capacity(window);
                    let mut sent = 0usize;
                    while sent < per || !pending.is_empty() {
                        while sent < per && pending.len() < window {
                            let inst = &cells[(t * 7919 + sent) % cells.len()];
                            let id = client
                                .send_select(key, inst)
                                .map_err(|e| format!("send: {e}"))?;
                            pending.push_back((id, std::time::Instant::now()));
                            sent += 1;
                        }
                        let (id, reply) = client.recv().map_err(|e| format!("recv: {e}"))?;
                        let Some((want, q0)) = pending.pop_front() else {
                            return Err(format!("reply {id} with nothing in flight"));
                        };
                        if id != want {
                            return Err(format!("reply order broken: got {id}, want {want}"));
                        }
                        out.lats
                            .push(u64::try_from(q0.elapsed().as_nanos()).unwrap_or(u64::MAX));
                        match reply {
                            Reply::Selection { shed: true, .. } => out.shed += 1,
                            Reply::Selection { .. } => out.ok += 1,
                            Reply::Error { .. } => out.errors += 1,
                            Reply::ShutdownAck => {
                                return Err("unsolicited shutdown ack".to_string());
                            }
                        }
                    }
                    Ok(out)
                })
            })
            .collect();
        let mut acc = Vec::with_capacity(threads);
        for h in handles {
            acc.push(h.join().map_err(|_| "wire client thread panicked".to_string()));
        }
        acc
    });
    let wall = t0.elapsed().as_secs_f64();
    let mut merged = WirePhase { lats: Vec::new(), ok: 0, shed: 0, errors: 0 };
    for p in parts {
        let p = p??;
        merged.lats.extend(p.lats);
        merged.ok += p.ok;
        merged.shed += p.shed;
        merged.errors += p.errors;
    }
    let offered = per * threads;
    if merged.lats.len() != offered
        || merged.ok + merged.shed + merged.errors != offered as u64
    {
        return Err(format!(
            "wire phase accounting broken: offered {offered}, got {} replies \
             ({} ok + {} shed + {} errors)",
            merged.lats.len(),
            merged.ok,
            merged.shed,
            merged.errors,
        ));
    }
    Ok((wall, offered, merged))
}

/// `mpcp serve-bench --connect <addr> --model <artifact> [--threads 4]
/// [--requests 4000] [--window 32] [--overload-burst N]
/// [--max-p99-ms X] [--shutdown-server] [--out BENCH_PR8.json]`
///
/// Client mode: drive a running `mpcp served` daemon over TCP instead
/// of an in-process service. Three phases:
///
/// 1. **Equal results** — one synchronous sweep over the bench grid;
///    every non-shed wire answer must be bit-identical to the
///    in-process `select_uncached` on the same artifact file.
/// 2. **Pipelined throughput** — `--threads` connections, up to
///    `--window` requests in flight each.
/// 3. **Overload burst** (with `--overload-burst N`) — each
///    connection blasts N requests open-loop before reading a single
///    reply, pushing the daemon's admission queue past its cap. The
///    phase asserts exactly one reply per request: shed and
///    overloaded answers are counted, never dropped.
///
/// `--max-p99-ms` gates the overload phase's p99 round-trip (the
/// pipelined phase's when no burst is requested). `--shutdown-server`
/// sends the wire shutdown op at the end, draining the daemon.
fn serve_bench_connect(args: &Args) -> Result<String, String> {
    use mpcp_serve::{NetClient, PredictionService};

    let addr = args.require("connect")?;
    let path = args.require("model")?;
    let threads: usize =
        args.get_or("threads", "4").parse().map_err(|_| "bad --threads".to_string())?;
    let threads = threads.max(1);
    let requests: usize =
        args.get_or("requests", "4000").parse().map_err(|_| "bad --requests".to_string())?;
    let window: usize =
        args.get_or("window", "32").parse().map_err(|_| "bad --window".to_string())?;
    let window = window.max(1);
    let overload_burst: usize = args
        .get_or("overload-burst", "0")
        .parse()
        .map_err(|_| "bad --overload-burst".to_string())?;
    let max_p99_ms: f64 = args
        .get_or("max-p99-ms", "0")
        .parse()
        .map_err(|_| "bad --max-p99-ms".to_string())?;

    let artifact =
        Selector::load(Path::new(path)).map_err(|e| format!("loading model: {e}"))?;
    let learner = artifact.selector.learner_name();
    let meta = artifact.meta.clone();
    let (max_nodes, max_ppn) = match parse_machine(&meta.machine) {
        Ok(m) => (m.max_nodes, m.max_ppn),
        Err(_) => (8, 16),
    };
    let cells = bench_cells(meta.collective, max_nodes, max_ppn);
    // The local oracle: the same artifact file the daemon loaded,
    // evaluated in-process with no cache in the way.
    let svc = PredictionService::new(cells.len().max(16));
    let key = svc.insert_artifact(artifact);

    // Phase 1: synchronous equal-results sweep.
    let mut client =
        NetClient::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    let mut sync_shed = 0u64;
    for inst in &cells {
        let want = svc.select_uncached(&key, inst).map_err(|e| e.to_string())?;
        let (got, shed) =
            client.select(&key, inst).map_err(|e| format!("select {inst}: {e}"))?;
        if shed {
            sync_shed += 1; // degraded fallback: not comparable to the model
            continue;
        }
        if got.uid != want.uid
            || got.predicted_us.map(f64::to_bits) != want.predicted_us.map(f64::to_bits)
            || got.degraded != want.degraded
        {
            return Err(format!(
                "wire answer diverged from in-process select on {inst}: {got:?} vs {want:?}"
            ));
        }
    }

    // Phase 2: pipelined throughput.
    let (wall_p, offered_p, pipe) = wire_phase(addr, &key, &cells, threads, requests, window)?;
    let mut lat_p = pipe.lats.clone();
    lat_p.sort_unstable();
    let qps_p = if wall_p > 0.0 { offered_p as f64 / wall_p } else { 0.0 };

    // Phase 3: open-loop overload burst (window == burst: every
    // request is sent before the first reply is read).
    let overload = if overload_burst > 0 {
        let (wall_o, offered_o, o) = wire_phase(
            addr,
            &key,
            &cells,
            threads,
            overload_burst * threads,
            overload_burst,
        )?;
        let mut lat_o = o.lats.clone();
        lat_o.sort_unstable();
        let qps_o = if wall_o > 0.0 { offered_o as f64 / wall_o } else { 0.0 };
        Some((wall_o, offered_o, o, lat_o, qps_o))
    } else {
        None
    };

    // The latency gate reads the harshest phase we ran.
    let gated_p99_ns = match &overload {
        Some((_, _, _, lat_o, _)) => percentile(lat_o, 99),
        None => percentile(&lat_p, 99),
    };
    if args.flag("shutdown-server") {
        client.shutdown_server().map_err(|e| format!("shutdown: {e}"))?;
    }
    drop(client);

    let overload_json = match &overload {
        Some((_, offered_o, o, lat_o, qps_o)) => format!(
            "{{ \"offered\": {offered_o}, \"qps\": {qps_o:.0}, \"p50_ns\": {}, \
             \"p99_ns\": {}, \"ok\": {}, \"shed\": {}, \"errors\": {} }}",
            percentile(lat_o, 50),
            percentile(lat_o, 99),
            o.ok,
            o.shed,
            o.errors,
        ),
        None => "null".to_string(),
    };
    let prov = mpcp_obs::provenance::Provenance::capture("mpcp serve-bench --connect", meta.seed);
    let json = format!(
        r#"{{
  "pr": 8,
  "provenance": {},
  "config": {{
    "addr": {},
    "model": {},
    "learner": {},
    "collective": {},
    "machine": {},
    "threads": {threads},
    "requests": {requests},
    "window": {window},
    "overload_burst": {overload_burst},
    "distinct_cells": {}
  }},
  "sync": {{ "requests": {}, "shed": {sync_shed} }},
  "pipelined": {{ "offered": {offered_p}, "qps": {qps_p:.0}, "p50_ns": {}, "p99_ns": {}, "ok": {}, "shed": {}, "errors": {} }},
  "overload": {overload_json},
  "equal_results": true,
  "all_replies_accounted": true
}}
"#,
        prov.to_json(),
        mpcp_obs::export::json_string(addr),
        mpcp_obs::export::json_string(path),
        mpcp_obs::export::json_string(learner),
        mpcp_obs::export::json_string(meta.collective.mpi_name()),
        mpcp_obs::export::json_string(&meta.machine),
        cells.len(),
        cells.len(),
        percentile(&lat_p, 50),
        percentile(&lat_p, 99),
        pipe.ok,
        pipe.shed,
        pipe.errors,
    );

    let mut out = format!(
        "serve-bench --connect {addr}: {key} over {} cells\n\
         sync:      {} requests, {sync_shed} shed, non-shed bit-identical to in-process\n\
         pipelined: {qps_p:>10.0} qps  (p99 {:>8} ns, {} ok / {} shed / {} errors of {offered_p})\n",
        cells.len(),
        cells.len(),
        percentile(&lat_p, 99),
        pipe.ok,
        pipe.shed,
        pipe.errors,
    );
    if let Some((_, offered_o, o, lat_o, qps_o)) = &overload {
        out.push_str(&format!(
            "overload:  {qps_o:>10.0} qps  (p99 {:>8} ns, {} ok / {} shed / {} errors of {offered_o})\n\
             every request answered: accepted + shed + errors == offered\n",
            percentile(lat_o, 99),
            o.ok,
            o.shed,
            o.errors,
        ));
    }
    if let Some(out_path) = args.get("out") {
        std::fs::write(out_path, &json).map_err(|e| format!("writing {out_path}: {e}"))?;
        out.push_str(&format!("wrote {out_path}\n"));
    }
    if max_p99_ms > 0.0 && gated_p99_ns as f64 > max_p99_ms * 1e6 {
        return Err(format!(
            "serve-bench gate failed: wire p99 {:.3} ms exceeds --max-p99-ms {max_p99_ms}\n{out}",
            gated_p99_ns as f64 / 1e6
        ));
    }
    Ok(out)
}

/// Render one parsed metrics-JSONL document as a summary line.
fn metric_line(doc: &mpcp_obs::json::JsonValue) -> Option<String> {
    if let Some(p) = doc.get("provenance") {
        let git = p.get("git_sha").and_then(|v| v.as_str()).unwrap_or("?");
        let config = p.get("config").and_then(|v| v.as_str()).unwrap_or("?");
        return Some(format!("-- run git={git} config={config:?}"));
    }
    let name = doc.get("metric")?.as_str()?.to_string();
    let kind = doc.get("type")?.as_str()?;
    Some(match kind {
        "histogram" => format!(
            "{name:<28} count={:<8} mean={:<12.1} p50={:<10} p95={:<10} p99={}",
            doc.get("count")?.as_f64()?,
            doc.get("mean")?.as_f64()?,
            doc.get("p50")?.as_f64()?,
            doc.get("p95")?.as_f64()?,
            doc.get("p99")?.as_f64()?,
        ),
        _ => format!("{name:<28} {kind:<9} {}", doc.get("value")?.as_f64()?),
    })
}

/// Serialize a parsed [`JsonValue`] back to JSON text (the vendored
/// parser has no writer; numbers print shortest-round-trip).
///
/// [`JsonValue`]: mpcp_obs::json::JsonValue
fn json_value_to_string(v: &mpcp_obs::json::JsonValue) -> String {
    use mpcp_obs::json::JsonValue as J;
    match v {
        J::Null => "null".to_string(),
        J::Bool(b) => b.to_string(),
        J::Num(n) if n.is_finite() => format!("{n}"),
        J::Num(_) => "null".to_string(),
        J::Str(s) => mpcp_obs::export::json_string(s),
        J::Arr(xs) => {
            let inner: Vec<String> = xs.iter().map(json_value_to_string).collect();
            format!("[{}]", inner.join(","))
        }
        J::Obj(m) => {
            let inner: Vec<String> = m
                .iter()
                .map(|(k, x)| {
                    format!("{}:{}", mpcp_obs::export::json_string(k), json_value_to_string(x))
                })
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

/// `mpcp report [--trace <file>] [--metrics <file>] [--require <spans>]
/// [--require-metric <name[>=N]>] [--format text|json]`
///
/// Validates (strict JSON parse) and summarizes the files produced by
/// `--trace-out` / `--metrics-out`. `--require` takes a comma-separated
/// list of span names that must appear in the trace — the CI smoke test
/// uses it to assert the pipeline was actually instrumented. With
/// `--format json` the same validated content is emitted as one JSON
/// document for downstream tooling.
pub fn report(args: &Args) -> Result<String, String> {
    let format = args.get_or("format", "text");
    if !matches!(format, "text" | "json") {
        return Err(format!("--format must be text or json, got {format:?}"));
    }
    let mut out = String::new();
    let mut json_parts: Vec<String> = Vec::new();
    let mut any = false;
    if let Some(path) = args.get("trace") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let docs = if text.trim_start().starts_with('[') {
            vec![mpcp_obs::json::parse(&text).map_err(|e| format!("{path}: bad JSON: {e}"))?]
        } else {
            mpcp_obs::json::parse_jsonl(&text).map_err(|e| format!("{path}: bad JSONL: {e}"))?
        };
        out.push_str(&format!("== trace {path} ==\n"));
        out.push_str(&mpcp_obs::export::summarize_trace_value(&docs));
        if let Some(req) = args.get("require") {
            let names = mpcp_obs::export::trace_span_names(&docs);
            for want in req.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                if !names.contains(want) {
                    return Err(format!(
                        "required span {want:?} missing from {path} (present: {})",
                        names.into_iter().collect::<Vec<_>>().join(", ")
                    ));
                }
            }
            out.push_str(&format!("required spans present: {req}\n"));
        }
        let mut names: Vec<String> =
            mpcp_obs::export::trace_span_names(&docs).into_iter().collect();
        names.sort();
        let names: Vec<String> =
            names.iter().map(|n| mpcp_obs::export::json_string(n)).collect();
        let events = match docs.as_slice() {
            [one] if one.as_arr().is_some() => one.as_arr().map_or(0, <[_]>::len),
            _ => docs.len(),
        };
        json_parts.push(format!(
            "\"trace\":{{\"file\":{},\"events\":{events},\"span_names\":[{}]}}",
            mpcp_obs::export::json_string(path),
            names.join(","),
        ));
        any = true;
    }
    if let Some(path) = args.get("metrics") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let docs =
            mpcp_obs::json::parse_jsonl(&text).map_err(|e| format!("{path}: bad JSONL: {e}"))?;
        out.push_str(&format!("== metrics {path} ==\n"));
        for doc in &docs {
            if let Some(line) = metric_line(doc) {
                out.push_str(&line);
                out.push('\n');
            }
        }
        if let Some(req) = args.get("require-metric") {
            // `name` asserts presence; `name>=N` additionally asserts the
            // (summed) value — the CI fault smoke uses this to prove the
            // retry/failure counters actually moved.
            for want in req.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                let (name, min) = match want.split_once(">=") {
                    Some((n, v)) => {
                        let min: f64 = v.trim().parse().map_err(|_| {
                            format!("--require-metric: bad threshold in {want:?}")
                        })?;
                        (n.trim(), Some(min))
                    }
                    None => (want, None),
                };
                let total: f64 = docs
                    .iter()
                    .filter(|d| d.get("metric").and_then(|v| v.as_str()) == Some(name))
                    .filter_map(|d| d.get("value").and_then(|v| v.as_f64()))
                    .sum();
                let present = docs
                    .iter()
                    .any(|d| d.get("metric").and_then(|v| v.as_str()) == Some(name));
                if !present {
                    return Err(format!("required metric {name:?} missing from {path}"));
                }
                if let Some(min) = min {
                    if total < min {
                        return Err(format!(
                            "required metric {name:?} is {total}, below the required {min}"
                        ));
                    }
                }
            }
            out.push_str(&format!("required metrics present: {req}\n"));
        }
        let rendered: Vec<String> = docs.iter().map(json_value_to_string).collect();
        json_parts.push(format!(
            "\"metrics\":{{\"file\":{},\"documents\":[{}]}}",
            mpcp_obs::export::json_string(path),
            rendered.join(","),
        ));
        any = true;
    } else if args.get("require-metric").is_some() {
        return Err("--require-metric needs --metrics <file>".into());
    }
    if !any {
        return Err("report needs --trace <file> and/or --metrics <file>".into());
    }
    if format == "json" {
        return Ok(format!("{{{}}}\n", json_parts.join(",")));
    }
    Ok(out)
}

/// Compact duration for the `top` table (the exporter's formatter is
/// private to `mpcp-obs`).
fn fmt_dur(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.1}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

/// Render one live-stats document as the `top` table.
fn render_top(doc: &mpcp_obs::json::JsonValue) -> Result<String, String> {
    let stats = doc.get("stats").ok_or("stats file has no \"stats\" object")?;
    let num = |v: &mpcp_obs::json::JsonValue, k: &str| {
        v.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0)
    };
    let finished = matches!(doc.get("finished"), Some(mpcp_obs::json::JsonValue::Bool(true)));
    let mut out = format!(
        "mpcp top — window {}ms x {} slots, epoch {}{}\n\
         requests {:>8}   rate {:>9.0}/s   hit ratio {:.3}   \
         p50 {:>9}   p95 {:>9}   p99 {:>9}   burn {:.3}\n",
        num(stats, "slot_ns") / 1e6,
        num(stats, "slots"),
        num(stats, "epoch"),
        if finished { " (finished)" } else { "" },
        num(stats, "requests"),
        num(stats, "rate_per_sec"),
        num(stats, "hit_ratio"),
        fmt_dur(num(stats, "p50_ns")),
        fmt_dur(num(stats, "p95_ns")),
        fmt_dur(num(stats, "p99_ns")),
        num(stats, "worst_burn_rate"),
    );
    if let Some(fl) = doc.get("flight") {
        if fl.get("armed").is_some() {
            let dumped = matches!(
                fl.get("dumped"),
                Some(mpcp_obs::json::JsonValue::Bool(true))
            );
            out.push_str(&format!(
                "flight:   {} ({} events seen{})\n",
                if dumped { "DUMPED" } else { "armed" },
                num(fl, "events_seen"),
                match fl.get("dump_path").and_then(|v| v.as_str()) {
                    Some(p) if dumped => format!(", trace at {p}"),
                    _ => String::new(),
                },
            ));
        }
    }
    if let Some(net) = doc.get("net") {
        if net.get("requests").is_some() {
            out.push_str(&format!(
                "net:      conns {}/{}   reqs {}   accepted {}   shed {}   \
                 overloaded {}   errors {}   inflight {}   idle-closed {}\n",
                num(net, "connections_open"),
                num(net, "connections_total"),
                num(net, "requests"),
                num(net, "accepted"),
                num(net, "shed"),
                num(net, "overloaded"),
                num(net, "errors"),
                num(net, "inflight"),
                num(net, "idle_closed"),
            ));
        }
    }
    out.push_str(&format!(
        "{:<40} {:>8} {:>9} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>6}\n",
        "shard", "reqs", "rate/s", "hit%", "p50", "p99", "queue p99", "compute99", "probe p99", "burn",
    ));
    for s in stats.get("shards").and_then(|v| v.as_arr()).unwrap_or(&[]) {
        let reqs = num(s, "requests");
        let hitpc = num(s, "hit_ratio") * 100.0;
        out.push_str(&format!(
            "{:<40} {reqs:>8} {:>9.0} {hitpc:>6.1} {:>9} {:>9} {:>9} {:>9} {:>9} {:>6.3}\n",
            s.get("key").and_then(|v| v.as_str()).unwrap_or("?"),
            num(s, "rate_per_sec"),
            fmt_dur(num(s, "p50_ns")),
            fmt_dur(num(s, "p99_ns")),
            fmt_dur(num(s, "queue_wait_p99_ns")),
            fmt_dur(num(s, "compute_p99_ns")),
            fmt_dur(num(s, "cache_probe_p99_ns")),
            num(s, "burn_rate"),
        ));
    }
    Ok(out)
}

/// `mpcp top --stats <file> [--once] [--json] [--interval-ms 500]
/// [--timeout 30]`
///
/// Introspect a running `mpcp serve-bench --duration N --stats-out
/// <file>` session: the bench publishes its live windowed stats
/// atomically to `<file>`, and `top` renders them as a refreshing
/// per-shard table — requests, rate, hit ratio, latency quantiles,
/// the queue-wait/compute/probe attribution split, and the SLO burn
/// rate. `--once` prints a single sample and exits; `--json` emits
/// the raw document instead of the table.
pub fn top(args: &Args) -> Result<String, String> {
    let path = args.require("stats")?;
    let once = args.flag("once");
    let json = args.flag("json");
    let interval_ms: u64 = args
        .get_or("interval-ms", "500")
        .parse()
        .map_err(|_| "bad --interval-ms".to_string())?;
    let timeout: f64 = args
        .get_or("timeout", "30")
        .parse()
        .map_err(|_| "bad --timeout".to_string())?;

    let t0 = std::time::Instant::now();
    let mut last = String::new();
    loop {
        // The publisher writes tmp-then-rename, so a successful read is
        // always a complete document; a missing file means the bench
        // has not published yet (or a sample landed between unlink and
        // rename on exotic filesystems) — retry until the deadline.
        if let Ok(text) = std::fs::read_to_string(path) {
            if !text.trim().is_empty() {
                let doc = mpcp_obs::json::parse(&text)
                    .map_err(|e| format!("{path}: bad JSON: {e}"))?;
                let finished =
                    matches!(doc.get("finished"), Some(mpcp_obs::json::JsonValue::Bool(true)));
                if once {
                    return Ok(if json { text } else { render_top(&doc)? });
                }
                if text != last {
                    // Clear + home: a refreshing full-screen table.
                    let frame = if json { text.clone() } else { render_top(&doc)? };
                    print!("\x1b[2J\x1b[H{frame}");
                    use std::io::Write as _;
                    let _ = std::io::stdout().flush();
                    last = text;
                }
                if finished {
                    return Ok("serve-bench session finished\n".to_string());
                }
            }
        }
        if t0.elapsed().as_secs_f64() > timeout {
            return Err(format!("top: no live stats at {path} within {timeout}s"));
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(50)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;
    use mpcp_obs::json::JsonValue;

    fn run_args(v: &[&str]) -> Result<String, String> {
        crate::run(Args::parse(v.iter().map(|s| s.to_string())).unwrap())
    }

    /// Tests that pass `--trace-out`/`--metrics-out` toggle the global
    /// observability layer; serialize them so they don't drain each
    /// other's spans.
    static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn machines_lists_all_three() {
        let out = machines().unwrap();
        assert!(out.contains("Hydra"));
        assert!(out.contains("Jupiter"));
        assert!(out.contains("SuperMUC-NG"));
    }

    #[test]
    fn algorithms_lists_configs() {
        let out = run_args(&["algorithms", "--coll", "allreduce"]).unwrap();
        assert!(out.contains("recursive_doubling"));
        assert!(out.contains("rabenseifner"));
    }

    #[test]
    fn simulate_runs_default_and_explicit() {
        let out = run_args(&[
            "simulate", "--machine", "hydra", "--coll", "bcast", "--nodes", "4", "--ppn", "2",
            "--msize", "64K",
        ])
        .unwrap();
        assert!(out.contains("runtime:"), "{out}");
        let out2 = run_args(&[
            "simulate", "--machine", "jupiter", "--coll", "barrier", "--nodes", "3", "--ppn", "2",
            "--alg", "2",
        ])
        .unwrap();
        assert!(out2.contains("dissemination"), "{out2}");
    }

    #[test]
    fn bench_select_tune_roundtrip() {
        let dir = std::env::temp_dir().join("mpcp_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("d.csv");
        let tunef = dir.join("x.tune");
        let out = run_args(&[
            "bench", "--machine", "hydra", "--coll", "allreduce", "--nodes", "2,3,4", "--ppn",
            "1,2", "--msizes", "16,4K", "--out", csv.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("benchmarked"), "{out}");
        let out = run_args(&[
            "select", "--data", csv.to_str().unwrap(), "--coll", "allreduce", "--learner", "knn",
            "--train-nodes", "2,4", "--nodes", "3", "--ppn", "2", "--msize", "4K",
        ])
        .unwrap();
        assert!(out.contains("predicted best"), "{out}");
        assert!(out.contains("measured best"), "{out}");
        let out = run_args(&[
            "tune", "--data", csv.to_str().unwrap(), "--coll", "allreduce", "--learner", "knn",
            "--train-nodes", "2,4", "--nodes", "3", "--ppn", "2", "--out",
            tunef.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("written to"), "{out}");
        assert!(tunef.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn served_daemon_roundtrip_over_tcp() {
        let dir = std::env::temp_dir().join("mpcp_cli_served_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("d.csv");
        let model = dir.join("m.model");
        let addr_file = dir.join("addr.txt");
        std::fs::remove_file(&addr_file).ok();
        run_args(&[
            "bench", "--machine", "hydra", "--coll", "allreduce", "--nodes", "2,3,4", "--ppn",
            "1,2", "--msizes", "16,4K", "--out", csv.to_str().unwrap(),
        ])
        .unwrap();
        run_args(&[
            "train", "--data", csv.to_str().unwrap(), "--coll", "allreduce", "--learner",
            "knn", "--save-model", model.to_str().unwrap(),
        ])
        .unwrap();

        let model_s = model.to_str().unwrap().to_string();
        let addr_s = addr_file.to_str().unwrap().to_string();
        let daemon = std::thread::spawn(move || {
            run_args(&[
                "served", "--model", &model_s, "--addr", "127.0.0.1:0", "--addr-out", &addr_s,
                "--workers", "1", "--max-batch", "8",
            ])
        });
        let t0 = std::time::Instant::now();
        let addr = loop {
            if let Ok(s) = std::fs::read_to_string(&addr_file) {
                if s.trim().contains(':') {
                    break s.trim().to_string();
                }
            }
            assert!(t0.elapsed().as_secs() < 30, "daemon never published its address");
            std::thread::sleep(std::time::Duration::from_millis(20));
        };

        // The wire answers match the same artifact file evaluated
        // in-process, bit for bit.
        let artifact = Selector::load(&model).unwrap();
        let coll = artifact.meta.collective;
        let svc = mpcp_serve::PredictionService::new(16);
        let key = svc.insert_artifact(artifact);
        let mut client = mpcp_serve::NetClient::connect(&addr).unwrap();
        for inst in [Instance::new(coll, 4096, 3, 2), Instance::new(coll, 16, 2, 1)] {
            let want = svc.select_uncached(&key, &inst).unwrap();
            let (got, shed) = client.select(&key, &inst).unwrap();
            assert!(!shed, "an idle daemon must not shed");
            assert_eq!((got.uid, got.degraded), (want.uid, want.degraded));
            assert_eq!(
                got.predicted_us.map(f64::to_bits),
                want.predicted_us.map(f64::to_bits)
            );
        }
        // An unknown shard is a typed remote error, not a guess.
        let bogus = mpcp_serve::ShardKey { coll, scope: "nowhere/none".into() };
        let err = client.select(&bogus, &Instance::new(coll, 64, 2, 1)).unwrap_err();
        assert!(
            matches!(err, mpcp_serve::NetError::Remote { code, .. }
                if code == mpcp_serve::net::ERR_UNKNOWN_SHARD),
            "{err}"
        );
        // The wire shutdown op drains the daemon and resolves the CLI
        // call with the final counter summary.
        client.shutdown_server().unwrap();
        let out = daemon.join().unwrap().unwrap();
        assert!(out.contains("drained and stopped"), "{out}");
        assert!(out.contains("connections: 1 total"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn traced_pipeline_writes_trace_metrics_and_reports() {
        let _obs = OBS_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("mpcp_cli_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("d.csv");
        let trace = dir.join("trace.json");
        let metrics = dir.join("metrics.jsonl");
        std::fs::remove_file(&trace).ok();
        std::fs::remove_file(&metrics).ok();
        let out = run_args(&[
            "bench", "--machine", "hydra", "--coll", "allreduce", "--nodes", "2,3", "--ppn",
            "1,2", "--msizes", "16,4K", "--out", csv.to_str().unwrap(), "--trace-out",
            trace.to_str().unwrap(), "--metrics-out", metrics.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("trace ("), "{out}");
        assert!(out.contains("metrics appended"), "{out}");
        let out = run_args(&[
            "select", "--data", csv.to_str().unwrap(), "--coll", "allreduce", "--learner",
            "xgboost", "--nodes", "3", "--ppn", "2", "--msize", "4K", "--trace-out",
            trace.to_str().unwrap(), "--metrics-out", metrics.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("predicted best"), "{out}");
        // The merged trace must hold the full pipeline: simulate +
        // measure from the bench run, fit + select from the select run.
        let report = run_args(&[
            "report", "--trace", trace.to_str().unwrap(), "--metrics",
            metrics.to_str().unwrap(), "--require", "simulate,measure,fit,select",
        ])
        .unwrap();
        assert!(report.contains("required spans present"), "{report}");
        assert!(report.contains("bench.cells"), "{report}");
        // Both files are strict JSON / JSONL.
        let text = std::fs::read_to_string(&trace).unwrap();
        let doc = mpcp_obs::json::parse(&text).unwrap();
        assert!(doc.as_arr().unwrap().len() > 4);
        let mtext = std::fs::read_to_string(&metrics).unwrap();
        let docs = mpcp_obs::json::parse_jsonl(&mtext).unwrap();
        // Two provenance-stamped blocks: one per traced command.
        let prov = docs.iter().filter(|d| d.get("provenance").is_some()).count();
        assert_eq!(prov, 2);
        // A missing required span is an error, not a silent pass.
        let err = run_args(&[
            "report", "--trace", trace.to_str().unwrap(), "--require", "no_such_span",
        ])
        .unwrap_err();
        assert!(err.contains("no_such_span"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faulty_bench_to_select_pipeline_degrades_gracefully() {
        let _obs = OBS_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("mpcp_cli_fault_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("f.csv");
        let metrics = dir.join("m.jsonl");
        std::fs::remove_file(&metrics).ok();
        // 30% failures + a node blackout: the bench must still succeed
        // and report coverage.
        let out = run_args(&[
            "bench", "--machine", "hydra", "--coll", "allreduce", "--nodes", "2,3,4", "--ppn",
            "1,2", "--msizes", "16,4K", "--out", csv.to_str().unwrap(), "--fault-plan",
            "fail=0.3,blackout=4,seed=9", "--retries", "1", "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("fault injection:"), "{out}");
        assert!(out.contains("failed"), "{out}");
        // The partial dataset still trains and answers queries; the
        // blacked-out node count forces fallback-free selection for a
        // measured instance.
        let out = run_args(&[
            "select", "--data", csv.to_str().unwrap(), "--coll", "allreduce", "--learner", "knn",
            "--nodes", "3", "--ppn", "2", "--msize", "4K",
        ])
        .unwrap();
        assert!(out.contains("predicted best") || out.contains("DEGRADED"), "{out}");
        // The failure counters are asserted through `report`.
        let report = run_args(&[
            "report", "--metrics", metrics.to_str().unwrap(), "--require-metric",
            "bench.cells_failed>=1,bench.attempt_failures>=1",
        ])
        .unwrap();
        assert!(report.contains("required metrics present"), "{report}");
        // Absent metric or unmet threshold is a hard error.
        let err = run_args(&[
            "report", "--metrics", metrics.to_str().unwrap(), "--require-metric", "no.such",
        ])
        .unwrap_err();
        assert!(err.contains("no.such"), "{err}");
        let err = run_args(&[
            "report", "--metrics", metrics.to_str().unwrap(), "--require-metric",
            "bench.cells_failed>=1000000",
        ])
        .unwrap_err();
        assert!(err.contains("below the required"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn impossible_fault_plan_is_a_readable_error() {
        let dir = std::env::temp_dir().join("mpcp_cli_fault_err_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("f.csv");
        // Blacking out every node count leaves nothing to write.
        let err = run_args(&[
            "bench", "--machine", "hydra", "--coll", "allreduce", "--nodes", "2,3", "--ppn", "1",
            "--msizes", "16", "--out", csv.to_str().unwrap(), "--fault-plan", "blackout=2+3",
        ])
        .unwrap_err();
        assert!(err.contains("no cells survived"), "{err}");
        assert!(!csv.exists());
        // Malformed plans fail fast with the offending key.
        let err = run_args(&[
            "bench", "--machine", "hydra", "--coll", "allreduce", "--nodes", "2", "--ppn", "1",
            "--msizes", "16", "--out", csv.to_str().unwrap(), "--fault-plan", "fail=2.0",
        ])
        .unwrap_err();
        assert!(err.contains("fail"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_probability_fault_plan_matches_clean_run() {
        let dir = std::env::temp_dir().join("mpcp_cli_fault_noop_test");
        std::fs::create_dir_all(&dir).unwrap();
        let clean = dir.join("clean.csv");
        let faulty = dir.join("noop.csv");
        let base = [
            "bench", "--machine", "hydra", "--coll", "allreduce", "--nodes", "2,3", "--ppn", "1",
            "--msizes", "16,4K",
        ];
        let mut a = base.to_vec();
        a.extend(["--out", clean.to_str().unwrap()]);
        run_args(&a).unwrap();
        let mut b = base.to_vec();
        b.extend(["--out", faulty.to_str().unwrap(), "--fault-plan", "fail=0.0,seed=123"]);
        run_args(&b).unwrap();
        assert_eq!(
            std::fs::read_to_string(&clean).unwrap(),
            std::fs::read_to_string(&faulty).unwrap(),
            "a zero-probability fault plan must be bit-identical to no plan"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn min_samples_threshold_is_accepted() {
        let dir = std::env::temp_dir().join("mpcp_cli_minsamples_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("d.csv");
        run_args(&[
            "bench", "--machine", "hydra", "--coll", "allreduce", "--nodes", "2,3", "--ppn", "1",
            "--msizes", "16,4K", "--out", csv.to_str().unwrap(),
        ])
        .unwrap();
        // An absurd threshold excludes every config: typed error, not a
        // panic.
        let err = run_args(&[
            "select", "--data", csv.to_str().unwrap(), "--coll", "allreduce", "--learner", "knn",
            "--nodes", "3", "--ppn", "1", "--msize", "4K", "--min-samples", "100000",
        ])
        .unwrap_err();
        assert!(err.contains("training"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn train_save_select_model_serve_bench_roundtrip() {
        let _obs = OBS_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("mpcp_cli_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("d.csv");
        let model = dir.join("m.mpcp");
        let bench_json = dir.join("b.json");
        let metrics = dir.join("m.jsonl");
        std::fs::remove_file(&metrics).ok();
        run_args(&[
            "bench", "--machine", "hydra", "--coll", "allreduce", "--nodes", "2,3,4", "--ppn",
            "1,2", "--msizes", "16,4K", "--out", csv.to_str().unwrap(),
        ])
        .unwrap();
        let out = run_args(&[
            "train", "--data", csv.to_str().unwrap(), "--coll", "allreduce", "--learner", "knn",
            "--save-model", model.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("saved model artifact"), "{out}");
        assert!(model.exists());
        // Answer from the artifact, no retraining; --data adds ground truth.
        let out = run_args(&[
            "select", "--model", model.to_str().unwrap(), "--nodes", "3", "--ppn", "2",
            "--msize", "4K", "--data", csv.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("predicted best"), "{out}");
        assert!(out.contains("measured best"), "{out}");
        // The trained-from-CSV path and the loaded-artifact path agree.
        let fresh = run_args(&[
            "select", "--data", csv.to_str().unwrap(), "--coll", "allreduce", "--learner", "knn",
            "--nodes", "3", "--ppn", "2", "--msize", "4K",
        ])
        .unwrap();
        let line = |s: &str| {
            s.lines().find(|l| l.starts_with("predicted best")).map(str::to_string)
        };
        assert_eq!(line(&out), line(&fresh), "artifact diverged from retraining");
        // A collective mismatch is a readable error.
        let err = run_args(&[
            "select", "--model", model.to_str().unwrap(), "--coll", "bcast", "--nodes", "3",
            "--ppn", "2", "--msize", "4K",
        ])
        .unwrap_err();
        assert!(err.contains("trained for"), "{err}");
        // serve-bench over the artifact: equal results, JSON out, and
        // the cache-hit counters flowing into --metrics-out.
        let out = run_args(&[
            "serve-bench", "--model", model.to_str().unwrap(), "--threads", "2", "--requests",
            "400", "--out", bench_json.to_str().unwrap(), "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("cached/uncached speedup"), "{out}");
        let doc = mpcp_obs::json::parse(&std::fs::read_to_string(&bench_json).unwrap()).unwrap();
        assert_eq!(doc.get("pr").and_then(|v| v.as_f64()), Some(7.0));
        assert!(doc.get("provenance").and_then(|p| p.get("git_sha")).is_some());
        assert!(doc.get("cached").and_then(|c| c.get("qps")).and_then(|v| v.as_f64()).unwrap() > 0.0);
        assert!(
            doc.get("kernel")
                .and_then(|k| k.get("batch_insts_per_sec"))
                .and_then(|v| v.as_f64())
                .unwrap()
                > 0.0
        );
        // A second run gated against the first as a baseline: 0.5x is
        // trivially met by a same-machine re-run; an absurd uncached
        // gate fails loudly.
        let out = run_args(&[
            "serve-bench", "--model", model.to_str().unwrap(), "--threads", "2", "--requests",
            "200", "--baseline", bench_json.to_str().unwrap(), "--min-uncached-speedup", "0.01",
        ])
        .unwrap();
        assert!(out.contains("uncached speedup vs baseline"), "{out}");
        let err = run_args(&[
            "serve-bench", "--model", model.to_str().unwrap(), "--threads", "2", "--requests",
            "200", "--baseline", bench_json.to_str().unwrap(), "--min-uncached-speedup",
            "1000000",
        ])
        .unwrap_err();
        assert!(err.contains("gate failed"), "{err}");
        let err = run_args(&[
            "serve-bench", "--model", model.to_str().unwrap(), "--min-uncached-speedup", "2",
        ])
        .unwrap_err();
        assert!(err.contains("needs --baseline"), "{err}");
        let report = run_args(&[
            "report", "--metrics", metrics.to_str().unwrap(), "--require-metric",
            "serve.cache_hits>=1",
        ])
        .unwrap();
        assert!(report.contains("required metrics present"), "{report}");
        // An absurd speedup gate fails loudly, not silently.
        let err = run_args(&[
            "serve-bench", "--model", model.to_str().unwrap(), "--threads", "2", "--requests",
            "200", "--min-speedup", "1000000",
        ])
        .unwrap_err();
        assert!(err.contains("gate failed"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The full telemetry loop: `serve-bench --duration` publishes live
    /// stats + a flight dump, `mpcp top` reads them, `mpcp report` sees
    /// the windowed gauges, and `--format json` re-serializes cleanly.
    #[test]
    fn serve_bench_telemetry_top_and_flight_roundtrip() {
        let _obs = OBS_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("mpcp_cli_telemetry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("d.csv");
        let model = dir.join("m.mpcp");
        let stats = dir.join("live.json");
        let flight = dir.join("flight.json");
        let bench_json = dir.join("b.json");
        let metrics = dir.join("m.jsonl");
        std::fs::remove_file(&metrics).ok();
        std::fs::remove_file(&flight).ok();
        run_args(&[
            "bench", "--machine", "hydra", "--coll", "bcast", "--nodes", "2,3", "--ppn", "1,2",
            "--msizes", "16,4K", "--out", csv.to_str().unwrap(),
        ])
        .unwrap();
        run_args(&[
            "train", "--data", csv.to_str().unwrap(), "--coll", "bcast", "--learner", "knn",
            "--save-model", model.to_str().unwrap(),
        ])
        .unwrap();

        let out = run_args(&[
            "serve-bench", "--model", model.to_str().unwrap(), "--threads", "2", "--requests",
            "300", "--duration", "1", "--stats-out", stats.to_str().unwrap(), "--spike-ms",
            "60", "--flight-out", flight.to_str().unwrap(), "--flight-threshold-ms", "20",
            "--telemetry-gate", "0.01", "--out", bench_json.to_str().unwrap(),
            "--metrics-out", metrics.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("telemetry:"), "{out}");

        // The bench JSON carries the telemetry block: overhead ratio,
        // windowed summary, and the flight status.
        let doc =
            mpcp_obs::json::parse(&std::fs::read_to_string(&bench_json).unwrap()).unwrap();
        let tel = doc.get("telemetry").expect("telemetry block in bench JSON");
        assert!(tel.get("overhead_ratio").and_then(|v| v.as_f64()).unwrap() > 0.0);
        assert!(tel.get("sustained_requests").and_then(|v| v.as_f64()).unwrap() > 0.0);
        let win = tel.get("window").unwrap();
        assert!(win.get("p99_ns").and_then(|v| v.as_f64()).unwrap() > 0.0);
        let fl = tel.get("flight").expect("flight status in telemetry block");
        assert!(matches!(fl.get("dumped"), Some(JsonValue::Bool(true))), "spike must dump");
        assert!(matches!(fl.get("dump_ok"), Some(JsonValue::Bool(true))));

        // The dump is a valid Chrome trace containing the spike span.
        let ftext = std::fs::read_to_string(&flight).unwrap();
        let fdoc = mpcp_obs::json::parse(&ftext).unwrap();
        let rows = fdoc.as_arr().expect("flight dump is a JSON array");
        assert!(
            rows.iter().any(|r| {
                r.get("name").and_then(|v| v.as_str()) == Some("serve.spike")
            }),
            "offending span missing from flight dump"
        );

        // The final live-stats file is finished and carries traffic.
        let sdoc = mpcp_obs::json::parse(&std::fs::read_to_string(&stats).unwrap()).unwrap();
        assert!(matches!(sdoc.get("finished"), Some(JsonValue::Bool(true))));
        assert!(
            sdoc.get("stats").and_then(|s| s.get("requests")).and_then(|v| v.as_f64()).unwrap()
                > 0.0
        );

        // `top --once --json` hands back the published document.
        let top_json = run_args(&[
            "top", "--stats", stats.to_str().unwrap(), "--once", "--json",
        ])
        .unwrap();
        let tdoc = mpcp_obs::json::parse(&top_json).unwrap();
        assert!(matches!(tdoc.get("finished"), Some(JsonValue::Bool(true))));
        // ... and the table form renders the header, attribution
        // columns, and the flight line.
        let table =
            run_args(&["top", "--stats", stats.to_str().unwrap(), "--once"]).unwrap();
        assert!(table.contains("mpcp top"), "{table}");
        assert!(table.contains("hit ratio"), "{table}");
        assert!(table.contains("queue p99"), "{table}");
        assert!(table.contains("DUMPED"), "{table}");
        // A missing stats file times out with a readable error.
        let err = run_args(&[
            "top", "--stats", dir.join("nope.json").to_str().unwrap(), "--once", "--timeout",
            "0.2", "--interval-ms", "50",
        ])
        .unwrap_err();
        assert!(err.contains("no live stats"), "{err}");

        // The windowed gauges flow into --metrics-out, so `report`
        // can gate on them end-to-end...
        let report = run_args(&[
            "report", "--metrics", metrics.to_str().unwrap(), "--require-metric",
            "serve.window.p99_ns",
        ])
        .unwrap();
        assert!(report.contains("required metrics present"), "{report}");
        // ...and `--format json` re-serializes the validated content.
        let rj = run_args(&[
            "report", "--metrics", metrics.to_str().unwrap(), "--format", "json",
        ])
        .unwrap();
        let rdoc = mpcp_obs::json::parse(&rj).unwrap();
        let docs = rdoc
            .get("metrics")
            .and_then(|m| m.get("documents"))
            .and_then(|v| v.as_arr())
            .expect("documents array");
        assert!(
            docs.iter().any(|d| {
                d.get("metric").and_then(|v| v.as_str()) == Some("serve.window.p99_ns")
            }),
            "{rj}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_format_json_round_trips_a_trace() {
        let dir = std::env::temp_dir().join("mpcp_cli_report_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.json");
        std::fs::write(
            &trace,
            "[{\"name\":\"fit\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0,\"dur\":5},\n\
             {\"name\":\"select\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":5,\"dur\":3}]\n",
        )
        .unwrap();
        let out = run_args(&[
            "report", "--trace", trace.to_str().unwrap(), "--require", "fit,select",
            "--format", "json",
        ])
        .unwrap();
        let doc = mpcp_obs::json::parse(&out).unwrap();
        let tr = doc.get("trace").expect("trace block");
        assert_eq!(tr.get("events").and_then(|v| v.as_f64()), Some(2.0));
        let names: Vec<&str> = tr
            .get("span_names")
            .and_then(|v| v.as_arr())
            .unwrap()
            .iter()
            .filter_map(|v| v.as_str())
            .collect();
        assert_eq!(names, ["fit", "select"]);
        // Unknown formats are a readable error, not silent text.
        let err = run_args(&[
            "report", "--trace", trace.to_str().unwrap(), "--format", "yaml",
        ])
        .unwrap_err();
        assert!(err.contains("--format"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_model_artifact_is_a_typed_cli_error() {
        let dir = std::env::temp_dir().join("mpcp_cli_corrupt_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("d.csv");
        let model = dir.join("m.mpcp");
        run_args(&[
            "bench", "--machine", "hydra", "--coll", "allreduce", "--nodes", "2,3", "--ppn", "1",
            "--msizes", "16,4K", "--out", csv.to_str().unwrap(),
        ])
        .unwrap();
        run_args(&[
            "train", "--data", csv.to_str().unwrap(), "--coll", "allreduce", "--learner",
            "linear", "--save-model", model.to_str().unwrap(),
        ])
        .unwrap();
        // Truncate the artifact: select --model must fail with the
        // codec's typed reason, and serve-bench likewise.
        let bytes = std::fs::read(&model).unwrap();
        std::fs::write(&model, &bytes[..bytes.len() / 2]).unwrap();
        let err = run_args(&[
            "select", "--model", model.to_str().unwrap(), "--nodes", "2", "--ppn", "1",
            "--msize", "16",
        ])
        .unwrap_err();
        assert!(err.contains("truncated"), "{err}");
        let err = run_args(&["serve-bench", "--model", model.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_are_readable() {
        assert!(run_args(&["frobnicate"]).unwrap_err().contains("unknown command"));
        assert!(run_args(&["simulate", "--coll", "bcast"]).unwrap_err().contains("--machine"));
        assert!(run_args(&[
            "simulate", "--machine", "moonbase", "--coll", "bcast", "--nodes", "2", "--ppn", "1",
            "--msize", "1K"
        ])
        .unwrap_err()
        .contains("unknown machine"));
    }

    #[test]
    fn help_prints_usage() {
        let out = run_args(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
    }
}
