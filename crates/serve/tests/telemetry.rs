//! Live-telemetry integration tests: rolling-window stats must count
//! every request, split hits from misses, expire with the clock, and
//! attribute batch-path time — all without pausing traffic.

// The shared integration fixture: the grid is benchmarked once per
// binary and each learner's selector is trained once, saved, and
// reloaded through the artifact codec.
#[path = "../../../tests/fixture.rs"]
mod fixture;

use std::sync::Arc;

use mpcp_core::Instance;
use mpcp_ml::Learner;
use mpcp_obs::clock::Clock;
use mpcp_obs::window::WindowConfig;
use mpcp_serve::{BatchConfig, BatchServer, PredictionService, TelemetryConfig};

const SLOT_NS: u64 = 1_000_000; // 1ms windows for the manual-clock tests
const SLOTS: usize = 8;

fn manual_cfg(clock: &Clock) -> TelemetryConfig {
    TelemetryConfig {
        window: WindowConfig { slot_ns: SLOT_NS, slots: SLOTS },
        slo_ns: 1_000_000,
        clock: clock.clone(),
        scalar_sample: 1, // record everything: exact counts for asserts
    }
}

#[test]
fn live_stats_count_roll_and_expire_deterministically() {
    let artifact = fixture::trained(&Learner::knn(), &[]);
    let coll = artifact.meta.collective;
    let svc = PredictionService::new(64);
    assert!(svc.live_stats().is_none(), "no stats before telemetry is enabled");
    let key = svc.insert_artifact(artifact);

    let clock = Clock::manual(1);
    assert!(svc.enable_telemetry(manual_cfg(&clock)));
    assert!(svc.telemetry_enabled());
    // Idempotent: the first configuration wins.
    assert!(!svc.enable_telemetry(TelemetryConfig::default()));

    let cells: Vec<Instance> =
        (0..5u32).map(|i| Instance::new(coll, 64u64 << i, 2 + i, 2)).collect();
    for inst in &cells {
        svc.select(&key, inst).unwrap(); // cold: 5 misses
    }
    for inst in &cells {
        svc.select(&key, inst).unwrap(); // warm: 5 hits
    }

    let stats = svc.live_stats().unwrap();
    assert_eq!(stats.requests(), 10);
    assert_eq!(stats.shards.len(), 1);
    let s = &stats.shards[0];
    assert_eq!((s.hits, s.misses), (5, 5));
    assert!((s.hit_ratio - 0.5).abs() < 1e-9);
    assert!(s.rate_per_sec > 0.0);
    // The manual clock never advanced mid-query, so every recorded
    // latency is exactly zero — and so are the quantiles.
    assert_eq!((s.p50_ns, s.p99_ns, s.max_ns), (0, 0, 0));
    assert_eq!(s.burn_rate, 0.0);
    assert_eq!(stats.slot_ns, SLOT_NS);
    assert_eq!(stats.slots, SLOTS);
    assert_eq!(stats.epoch, 1, "one publication so far");

    // The JSON form round-trips through the vendored parser.
    let doc = mpcp_obs::json::parse(&stats.to_json()).unwrap();
    assert_eq!(doc.get("requests").and_then(|v| v.as_f64()), Some(10.0));
    assert_eq!(
        doc.get("shards").and_then(|v| v.as_arr()).map(<[_]>::len),
        Some(1)
    );
    let shard0 = &doc.get("shards").unwrap().as_arr().unwrap()[0];
    assert_eq!(shard0.get("hits").and_then(|v| v.as_f64()), Some(5.0));

    // Roll the clock past the retention horizon: the traffic above
    // expires out of the windows and live stats go quiet.
    clock.advance(SLOT_NS * (SLOTS as u64 + 1));
    let quiet = svc.live_stats().unwrap();
    assert_eq!(quiet.requests(), 0, "expired windows must not be counted");
    assert_eq!(quiet.shards[0].hits, 0);
}

#[test]
fn scalar_sampling_keeps_windowed_counts_unbiased() {
    let artifact = fixture::trained(&Learner::knn(), &[]);
    let coll = artifact.meta.collective;
    let svc = PredictionService::new(64);
    let key = svc.insert_artifact(artifact);
    let clock = Clock::manual(1);
    // Sample every 5th scalar request, weight 5. This test runs on its
    // own thread, so the thread-local tick deterministically starts
    // fresh.
    assert!(svc.enable_telemetry(TelemetryConfig { scalar_sample: 5, ..manual_cfg(&clock) }));

    let inst = Instance::new(coll, 1024, 3, 2);
    svc.select(&key, &inst).unwrap(); // miss, warms the cell
    for _ in 0..24 {
        svc.select(&key, &inst).unwrap(); // 24 hits
    }
    // 25 scalar requests -> 5 sampled events of weight 5 each: the
    // windowed totals match the true request count exactly, and every
    // sampled tick after the first landed on a hit.
    let stats = svc.live_stats().unwrap();
    assert_eq!(stats.requests(), 25);
    assert_eq!(stats.shards[0].hits + stats.shards[0].misses, 25);
    assert!(stats.shards[0].hits >= 20);
}

#[test]
fn telemetry_attaches_to_existing_and_future_shards() {
    let a = fixture::trained(&Learner::knn(), &[]);
    let coll = a.meta.collective;
    let mut b = fixture::trained(&Learner::linear(), &[]);
    b.meta.machine = "otherbox".into();

    let svc = PredictionService::new(16);
    let key_a = svc.insert_artifact(a); // loaded before enable_telemetry
    let clock = Clock::manual(1);
    assert!(svc.enable_telemetry(manual_cfg(&clock)));
    let key_b = svc.insert_artifact(b); // loaded after

    let inst = Instance::new(coll, 1024, 3, 2);
    svc.select(&key_a, &inst).unwrap();
    svc.select(&key_b, &inst).unwrap();
    svc.select(&key_b, &inst).unwrap();

    let stats = svc.live_stats().unwrap();
    assert_eq!(stats.shards.len(), 2, "both shards report windowed stats");
    let by_key: std::collections::HashMap<String, u64> =
        stats.shards.iter().map(|s| (s.key.to_string(), s.requests)).collect();
    assert_eq!(by_key[&key_a.to_string()], 1);
    assert_eq!(by_key[&key_b.to_string()], 2);
    // Sorted by shard key, like `ServeStats`.
    let mut keys: Vec<_> = stats.shards.iter().map(|s| s.key.clone()).collect();
    let sorted = keys.clone();
    keys.sort();
    assert_eq!(keys, sorted);
}

#[test]
fn batch_path_attributes_queue_wait_and_counts_every_request() {
    let artifact = fixture::trained(&Learner::knn(), &[]);
    let coll = artifact.meta.collective;
    let svc = Arc::new(PredictionService::new(64));
    let key = svc.insert_artifact(artifact);
    // Wall clock, default windows: a test run fits well inside the
    // 60s retention, so nothing expires mid-assertion.
    assert!(svc.enable_telemetry(TelemetryConfig::default()));

    let server = BatchServer::start(
        Arc::clone(&svc),
        BatchConfig { workers: 2, max_batch: 16, ..BatchConfig::default() },
    );
    let cells: Vec<Instance> = (0..20u32)
        .map(|i| Instance::new(coll, (u64::from(i) * 37 + 5) % 50_000, 2 + i % 8, 1 + i % 4))
        .collect();
    for round in 0..5 {
        let tickets: Vec<_> = cells
            .iter()
            .map(|inst| server.submit(key.clone(), *inst).expect("under queue cap"))
            .collect();
        for t in tickets {
            t.wait().unwrap_or_else(|e| panic!("round {round}: {e}"));
        }
    }
    server.shutdown();

    let stats = svc.live_stats().unwrap();
    assert_eq!(stats.requests(), 100, "every batch request is windowed");
    let s = &stats.shards[0];
    assert_eq!(s.hits + s.misses, 100);
    assert!(s.misses >= 20, "each distinct cell misses at least once");
    assert!(s.hits > 0, "repeat rounds hit the shared cache");
    // End-to-end batch latency includes a real (wall-clock) wait, so
    // the windowed quantiles are nonzero and ordered.
    assert!(s.p99_ns >= s.p50_ns);
    assert!(s.max_ns >= s.p99_ns);
    assert!(s.p99_ns > 0, "batch round-trips take measurable time");
    // Attribution recorded on the batch path: compute happened (there
    // were misses), and queue-wait quantiles are well-formed.
    assert!(s.compute_p99_ns > 0, "batched compute takes measurable time");
    assert!(s.queue_wait_p99_ns >= s.queue_wait_p50_ns);
    // The merged service-level view agrees with the single shard.
    assert_eq!(stats.p99_ns, s.p99_ns);
    assert!((stats.hit_ratio() - s.hit_ratio).abs() < 1e-9);
}
