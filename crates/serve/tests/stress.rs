//! Concurrency stress tests: the serving layer must give every thread
//! the single-threaded answer, bit for bit, and its cache counters
//! must account for every query — under eviction pressure (cache
//! capacity is far below the distinct-cell count) and across both the
//! scalar path and the batched worker queue.

// The shared integration fixture: the grid is benchmarked once per
// binary and each learner's selector is trained once, saved, and
// reloaded through the artifact codec.
#[path = "../../../tests/fixture.rs"]
mod fixture;

use std::collections::HashMap;
use std::sync::Arc;

use mpcp_collectives::Collective;
use mpcp_core::{Instance, Selection};
use mpcp_ml::Learner;
use mpcp_serve::{BatchConfig, BatchServer, PredictionService, ServeError, ShardKey};

const THREADS: usize = 8;
const QUERIES_PER_THREAD: usize = 10_000;
const DISTINCT_CELLS: usize = 200;
const CACHE_CAPACITY: usize = 64; // << DISTINCT_CELLS: forces evictions

/// A selector trained on the tiny grid, already round-tripped through
/// the artifact codec by the shared fixture.
fn trained_artifact(learner: &Learner) -> mpcp_core::SelectorArtifact {
    fixture::trained(learner, &[])
}

/// A deterministic pool of distinct query cells (more than the cache
/// can hold), mixing benchmarked and off-grid instances.
fn cells(coll: Collective) -> Vec<Instance> {
    (0..DISTINCT_CELLS)
        .map(|i| {
            Instance::new(
                coll,
                ((i as u64) * 37 + 5) % 100_000,
                2 + (i as u32) % 8,
                1 + (i as u32) % 4,
            )
        })
        .collect()
}

fn assert_same(a: &Selection, b: &Selection, ctx: &str) {
    assert_eq!(a.uid, b.uid, "{ctx}: uid");
    assert_eq!(a.degraded, b.degraded, "{ctx}: degraded");
    assert_eq!(
        a.predicted_us.map(f64::to_bits),
        b.predicted_us.map(f64::to_bits),
        "{ctx}: predicted_us bits"
    );
}

#[test]
fn eight_threads_match_the_single_threaded_oracle() {
    let artifact = trained_artifact(&Learner::xgboost());
    let coll = artifact.meta.collective;
    let svc = Arc::new(PredictionService::new(CACHE_CAPACITY));
    let key = svc.insert_artifact(artifact);
    let pool = cells(coll);

    // Single-threaded oracle through the uncached path (does not touch
    // the hit/miss counters).
    let oracle: HashMap<(u64, u32, u32), Selection> = pool
        .iter()
        .map(|i| ((i.msize, i.nodes, i.ppn), svc.select_uncached(&key, i).unwrap()))
        .collect();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (svc, key, pool, oracle) = (&svc, &key, &pool, &oracle);
            s.spawn(move || {
                for q in 0..QUERIES_PER_THREAD {
                    let inst = &pool[(t * 7919 + q * 31) % pool.len()];
                    let got = svc.select(key, inst).unwrap();
                    let want = &oracle[&(inst.msize, inst.nodes, inst.ppn)];
                    assert_same(&got, want, &format!("thread {t} query {q} ({inst})"));
                    // Every 5th query also re-derives the answer
                    // uncached: the cache must never go stale.
                    if q % 5 == 0 {
                        let fresh = svc.select_uncached(key, inst).unwrap();
                        assert_same(&got, &fresh, &format!("thread {t} query {q} uncached"));
                    }
                }
            });
        }
    });

    let stats = svc.stats();
    let total = (THREADS * QUERIES_PER_THREAD) as u64;
    assert_eq!(
        stats.hits() + stats.misses(),
        total,
        "hit/miss counters must account for every cached-path query"
    );
    // Eviction pressure guarantees a genuine mix of both outcomes.
    assert!(stats.hits() > 0, "no cache hits under repeated queries");
    assert!(
        stats.misses() >= DISTINCT_CELLS as u64,
        "fewer misses than distinct cells: {}",
        stats.misses()
    );
    assert_eq!(stats.shards.len(), 1);
    assert!(stats.shards[0].cached_entries <= CACHE_CAPACITY);
    assert!(stats.shards[0].evictions > 0, "capacity below cell count must evict");
}

#[test]
fn batch_server_matches_oracle_and_shuts_down_cleanly() {
    let artifact = trained_artifact(&Learner::knn());
    let coll = artifact.meta.collective;
    let svc = Arc::new(PredictionService::new(CACHE_CAPACITY));
    let key = svc.insert_artifact(artifact);
    let pool = cells(coll);
    let oracle: HashMap<(u64, u32, u32), Selection> = pool
        .iter()
        .map(|i| ((i.msize, i.nodes, i.ppn), svc.select_uncached(&key, i).unwrap()))
        .collect();

    let server = Arc::new(BatchServer::start(
        Arc::clone(&svc),
        BatchConfig { workers: 3, max_batch: 32, ..BatchConfig::default() },
    ));
    std::thread::scope(|s| {
        for t in 0..4 {
            let (server, key, pool, oracle) = (&server, &key, &pool, &oracle);
            s.spawn(move || {
                // Submit a window of tickets, then wait on them, so the
                // workers actually see multi-request batches.
                for chunk in 0..50 {
                    let tickets: Vec<_> = (0..40)
                        .map(|i| {
                            let inst = pool[(t * 131 + chunk * 17 + i) % pool.len()];
                            (inst, server.submit(key.clone(), inst).expect("under queue cap"))
                        })
                        .collect();
                    for (inst, ticket) in tickets {
                        let got = ticket.wait().unwrap();
                        let want = &oracle[&(inst.msize, inst.nodes, inst.ppn)];
                        assert_same(&got, want, &format!("batch thread {t} ({inst})"));
                    }
                }
            });
        }
    });
    let stats = svc.stats();
    assert_eq!(stats.hits() + stats.misses(), 4 * 50 * 40);

    // Clean shutdown: accepted-but-unserved work is drained, and new
    // submissions after shutdown resolve to Disconnected.
    let server = Arc::try_unwrap(server).ok().expect("all clones dropped");
    server.shutdown();
}

#[test]
fn drop_and_shutdown_both_stop_cleanly() {
    let artifact = trained_artifact(&Learner::linear());
    let coll = artifact.meta.collective;
    let svc = Arc::new(PredictionService::new(8));
    let key = svc.insert_artifact(artifact);
    let inst = Instance::new(coll, 64, 2, 1);

    // Implicit stop: dropping the server joins its workers.
    let server = BatchServer::start(Arc::clone(&svc), BatchConfig::default());
    assert!(server.query(key.clone(), inst).is_ok());
    drop(server);

    // Explicit stop: shutdown() consumes and joins.
    let server2 = BatchServer::start(Arc::clone(&svc), BatchConfig::default());
    assert!(server2.query(key, inst).is_ok());
    server2.shutdown();

    // A request for a shard that was never loaded resolves to a typed
    // error through the worker, not a hang.
    let server3 = BatchServer::start(svc, BatchConfig::default());
    let missing = ShardKey { coll, scope: "nowhere/NoMPI".into() };
    assert_eq!(
        server3.query(missing.clone(), inst),
        Err(ServeError::UnknownShard { key: missing })
    );
    server3.shutdown();
}

#[test]
fn snapshot_swaps_are_never_torn() {
    // A writer republishes a *pair* of shards (machine "swapA" and
    // "swapB") tagged with the same generation in `meta.seed`, through
    // the atomic multi-artifact publication. Readers grab snapshots as
    // fast as they can: every snapshot must hold both shards of one
    // generation — never a mix of generations, never a half-published
    // pair — and generations must be non-decreasing per reader.
    const GENERATIONS: u64 = 150;
    let base = trained_artifact(&Learner::knn());
    let coll = base.meta.collective;
    let svc = Arc::new(PredictionService::new(CACHE_CAPACITY));

    let pair = |generation: u64| -> Vec<mpcp_core::SelectorArtifact> {
        ["swapA", "swapB"]
            .iter()
            .map(|machine| {
                let mut a = trained_artifact(&Learner::knn());
                a.meta.machine = (*machine).into();
                a.meta.seed = Some(generation);
                a
            })
            .collect()
    };
    let keys = svc.insert_artifacts(pair(0));
    assert_eq!(keys.len(), 2);
    let inst = Instance::new(coll, 1024, 3, 2);

    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        // Writer: republish the pair for every generation.
        s.spawn(|| {
            for generation in 1..GENERATIONS {
                svc.insert_artifacts(pair(generation));
            }
            done.store(true, std::sync::atomic::Ordering::Release);
        });
        for _ in 0..THREADS {
            let (svc, keys, done, inst) = (&svc, &keys, &done, &inst);
            s.spawn(move || {
                let mut last_generation = 0u64;
                let mut observed = 0u64;
                loop {
                    let finished = done.load(std::sync::atomic::Ordering::Acquire);
                    let snap = svc.snapshot();
                    assert_eq!(snap.len(), 2, "snapshot lost a shard of the pair");
                    let seeds: Vec<Option<u64>> =
                        keys.iter().map(|k| snap.meta(k).expect("pair shard present").seed).collect();
                    assert_eq!(
                        seeds[0], seeds[1],
                        "torn snapshot: shards from different publications"
                    );
                    let generation = seeds[0].expect("generation tag");
                    assert!(
                        generation >= last_generation,
                        "snapshot went back in time: {generation} < {last_generation}"
                    );
                    last_generation = generation;
                    observed += 1;
                    // Queries through the snapshot keep answering.
                    assert!(snap.select(&keys[0], inst).is_ok());
                    if finished {
                        break;
                    }
                }
                assert!(observed > 0);
            });
        }
    });
    // The final snapshot is the last generation, on both shards.
    let snap = svc.snapshot();
    for k in &keys {
        assert_eq!(snap.meta(k).unwrap().seed, Some(GENERATIONS - 1));
    }
}

#[test]
fn collective_mismatch_is_typed_on_both_paths() {
    let artifact = trained_artifact(&Learner::gam());
    let coll = artifact.meta.collective;
    let wrong = if coll == Collective::Bcast { Collective::Barrier } else { Collective::Bcast };
    let svc = Arc::new(PredictionService::new(8));
    let key = svc.insert_artifact(artifact);
    let inst = Instance::new(wrong, 64, 2, 1);
    let want = Err(ServeError::CollectiveMismatch { shard: coll, instance: wrong });
    assert_eq!(svc.select(&key, &inst), want);
    assert_eq!(svc.select_uncached(&key, &inst), want);
    let server = BatchServer::start(Arc::clone(&svc), BatchConfig::default());
    assert_eq!(server.query(key, inst), want);
    server.shutdown();
}

#[test]
fn corrupt_artifact_bytes_surface_as_typed_serve_errors() {
    let artifact = trained_artifact(&Learner::forest());
    let spec_meta = artifact.meta.clone();
    let selector = artifact.selector;
    let report = artifact.report;
    let bytes = selector.to_artifact_bytes(&report, &spec_meta);

    let dir = std::env::temp_dir().join(format!("mpcp_serve_corrupt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("m.mpcp");

    let svc = PredictionService::new(8);
    // Truncated, flipped, and version-bumped files: all typed Artifact
    // errors, never a panic, and the service stays usable afterwards.
    let half = bytes.len() / 2;
    std::fs::write(&path, &bytes[..half]).unwrap();
    let err = svc.load_artifact(&path).unwrap_err();
    assert!(matches!(err, ServeError::Artifact(_)), "{err:?}");

    let mut flipped = bytes.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x01;
    std::fs::write(&path, &flipped).unwrap();
    assert!(matches!(svc.load_artifact(&path).unwrap_err(), ServeError::Artifact(_)));

    let mut vbump = bytes.clone();
    vbump[4..8].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&path, &vbump).unwrap();
    assert!(matches!(svc.load_artifact(&path).unwrap_err(), ServeError::Artifact(_)));

    // The intact bytes still load into the same service.
    std::fs::write(&path, &bytes).unwrap();
    let key = svc.load_artifact(&path).unwrap();
    let inst = Instance::new(spec_meta.collective, 1024, 3, 2);
    assert!(svc.select(&key, &inst).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}
