//! Wire-level stress tests for the serving daemon: sustained
//! multi-connection load with bit-identity against the in-process
//! service, deterministic overload (wedged workers) that sheds
//! degraded answers instead of dropping or panicking, typed
//! `overloaded` errors once shedding saturates, idle-timeout
//! housekeeping, and clean shutdown with zero leaked threads.

// The shared integration fixture: the grid is benchmarked once per
// binary and each learner's selector is trained once, saved, and
// reloaded through the artifact codec.
#[path = "../../../tests/fixture.rs"]
mod fixture;

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mpcp_collectives::Collective;
use mpcp_core::{Instance, Selection};
use mpcp_ml::Learner;
use mpcp_serve::net::{ERR_OVERLOADED, ERR_TIMEOUT};
use mpcp_serve::{
    BatchConfig, NetClient, NetConfig, NetServer, PredictionService, Reply, ShardKey, ShedFn,
};

/// These tests assert on process-wide thread counts and daemon
/// counters; serialize them so one test's threads never show up in
/// another's books.
static NET_LOCK: Mutex<()> = Mutex::new(());

/// A latch the daemon's batch workers block on, so overload tests can
/// wedge the pipeline deterministically (same shape as the batch
/// unit tests, rebuilt here because it is test-only).
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate { open: Mutex::new(false), cv: Condvar::new() })
    }

    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    fn as_fn(self: &Arc<Gate>) -> Arc<dyn Fn() + Send + Sync> {
        let g = Arc::clone(self);
        Arc::new(move || {
            let mut open = g.open.lock().unwrap();
            while !*open {
                open = g.cv.wait(open).unwrap();
            }
        })
    }
}

fn fixture_service() -> (Arc<PredictionService>, ShardKey, Collective) {
    let artifact = fixture::trained(&Learner::knn(), &[]);
    let coll = artifact.meta.collective;
    let svc = Arc::new(PredictionService::new(256));
    let key = svc.insert_artifact(artifact);
    (svc, key, coll)
}

/// A degraded fallback that always answers uid 0 — distinguishable
/// from real predictions by the `degraded` flag and `None` runtime.
fn always_shed() -> ShedFn {
    Arc::new(|_k, _inst| Some(Selection { uid: 0, predicted_us: None, degraded: true }))
}

fn grid(coll: Collective) -> Vec<Instance> {
    (0..24u32)
        .map(|i| Instance::new(coll, (u64::from(i) * 613 + 16) % 100_000, 2 + i % 7, 1 + i % 4))
        .collect()
}

fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .unwrap_or_default()
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// Poll until the process thread count drops back to `baseline`
/// (thread exit is asynchronous after `join` returns the counters).
fn assert_threads_drain_to(baseline: usize) {
    let t0 = Instant::now();
    loop {
        let now = thread_count();
        if now <= baseline {
            return;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "leaked threads: {now} alive, baseline {baseline}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sustained_multi_connection_load_is_lossless_and_bit_identical() {
    let _serial = NET_LOCK.lock().unwrap();
    let (svc, key, coll) = fixture_service();
    let cells = grid(coll);
    let baseline = thread_count();
    let server = NetServer::start(
        Arc::clone(&svc),
        always_shed(),
        NetConfig {
            batch: BatchConfig { workers: 2, max_batch: 16, max_queue: 4096 },
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    const CLIENTS: usize = 4;
    const PER: usize = 500;
    const WINDOW: usize = 16;
    let tallies: Vec<(u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let (key, cells, svc) = (&key, &cells, &svc);
                s.spawn(move || {
                    let mut client = NetClient::connect(addr).unwrap();
                    let mut pending: VecDeque<(u64, Instance)> = VecDeque::new();
                    let (mut ok, mut shed) = (0u64, 0u64);
                    let mut sent = 0usize;
                    while sent < PER || !pending.is_empty() {
                        while sent < PER && pending.len() < WINDOW {
                            let inst = cells[(t * 31 + sent) % cells.len()];
                            let id = client.send_select(key, &inst).unwrap();
                            pending.push_back((id, inst));
                            sent += 1;
                        }
                        let (id, reply) = client.recv().unwrap();
                        let (want_id, inst) = pending.pop_front().unwrap();
                        assert_eq!(id, want_id, "replies arrive in request order");
                        match reply {
                            Reply::Selection { selection, shed: true } => {
                                assert!(selection.degraded, "shed replies are degraded");
                                shed += 1;
                            }
                            Reply::Selection { selection, shed: false } => {
                                // Bit-identical to the in-process path.
                                let want = svc.select_uncached(key, &inst).unwrap();
                                assert_eq!(selection.uid, want.uid, "{inst}");
                                assert_eq!(
                                    selection.predicted_us.map(f64::to_bits),
                                    want.predicted_us.map(f64::to_bits),
                                    "{inst}"
                                );
                                assert_eq!(selection.degraded, want.degraded, "{inst}");
                                ok += 1;
                            }
                            Reply::Error { code, message } => {
                                panic!("unexpected error reply ({code}): {message}")
                            }
                            Reply::ShutdownAck => panic!("unsolicited shutdown ack"),
                        }
                    }
                    (ok, shed)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let offered = (CLIENTS * PER) as u64;
    let (ok, shed) = tallies.iter().fold((0, 0), |(a, b), (o, s)| (a + o, b + s));
    assert_eq!(ok + shed, offered, "one reply per request, none dropped");
    assert!(ok > 0, "the sustained phase must serve real predictions");

    let stats = server.join();
    assert_eq!(stats.requests, offered);
    assert_eq!(
        stats.accepted + stats.shed + stats.overloaded,
        stats.requests,
        "every decoded request is admitted, shed, or refused: {stats:?}"
    );
    assert_eq!(stats.errors, 0, "{stats:?}");
    assert_eq!(stats.inflight, 0, "drained: {stats:?}");
    assert_eq!(stats.connections_total, CLIENTS as u64);
    assert_threads_drain_to(baseline);
}

#[test]
fn wedged_workers_shed_degraded_answers_and_never_drop() {
    let _serial = NET_LOCK.lock().unwrap();
    let (svc, key, coll) = fixture_service();
    let cells = grid(coll);
    let baseline = thread_count();
    let gate = Gate::new();
    let server = NetServer::start_with_gate(
        Arc::clone(&svc),
        always_shed(),
        NetConfig {
            batch: BatchConfig { workers: 1, max_batch: 4, max_queue: 2 },
            reply_timeout: Duration::from_millis(300),
            max_shed_inflight: 1024,
            ..NetConfig::default()
        },
        gate.as_fn(),
    )
    .unwrap();
    let addr = server.local_addr();

    // 4 connections blast open-loop bursts at a 2-slot admission queue
    // behind a wedged worker: replies must be shed (degraded) or typed
    // timeouts for the few admitted tickets — never a hang, never a
    // missing reply.
    const CLIENTS: usize = 4;
    const BURST: usize = 50;
    let tallies: Vec<(u64, u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let (key, cells) = (&key, &cells);
                s.spawn(move || {
                    let mut client = NetClient::connect(addr).unwrap();
                    let mut ids = VecDeque::new();
                    for i in 0..BURST {
                        let inst = &cells[(t + i) % cells.len()];
                        ids.push_back(client.send_select(key, inst).unwrap());
                    }
                    let (mut shed, mut timeouts, mut overloaded) = (0u64, 0u64, 0u64);
                    while let Some(want) = ids.pop_front() {
                        let (id, reply) = client.recv().unwrap();
                        assert_eq!(id, want);
                        match reply {
                            Reply::Selection { selection, shed: true } => {
                                assert!(selection.degraded);
                                assert_eq!(selection.predicted_us, None);
                                shed += 1;
                            }
                            Reply::Selection { shed: false, .. } => {
                                panic!("wedged workers cannot produce a real prediction")
                            }
                            Reply::Error { code: ERR_TIMEOUT, .. } => timeouts += 1,
                            Reply::Error { code: ERR_OVERLOADED, .. } => overloaded += 1,
                            Reply::Error { code, message } => {
                                panic!("unexpected error ({code}): {message}")
                            }
                            Reply::ShutdownAck => panic!("unsolicited shutdown ack"),
                        }
                    }
                    (shed, timeouts, overloaded)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let offered = (CLIENTS * BURST) as u64;
    let (shed, timeouts, overloaded) =
        tallies.iter().fold((0, 0, 0), |(a, b, c), (s, t, o)| (a + s, b + t, c + o));
    assert_eq!(shed + timeouts + overloaded, offered, "every request answered");
    assert!(shed > 0, "the queue cap must force shedding");
    assert!(timeouts <= offered, "sanity");

    let stats = server.stats();
    assert_eq!(stats.requests, offered);
    assert_eq!(stats.accepted + stats.shed + stats.overloaded, offered, "{stats:?}");
    assert_eq!(stats.shed, shed, "{stats:?}");

    // Unwedge so shutdown can drain the stuck tickets, then verify a
    // clean exit: counters final, no threads left behind.
    gate.release();
    let stats = server.join();
    assert_eq!(stats.inflight, 0, "drained: {stats:?}");
    assert_threads_drain_to(baseline);
}

#[test]
fn saturated_shedding_degrades_to_typed_overloaded_errors() {
    let _serial = NET_LOCK.lock().unwrap();
    let (svc, key, coll) = fixture_service();
    let cells = grid(coll);
    let baseline = thread_count();
    let gate = Gate::new();
    // max_shed_inflight 0: the fallback lane is closed, so everything
    // past the 1-slot queue must come back as a typed error.
    let server = NetServer::start_with_gate(
        Arc::clone(&svc),
        always_shed(),
        NetConfig {
            batch: BatchConfig { workers: 1, max_batch: 4, max_queue: 1 },
            reply_timeout: Duration::from_millis(200),
            max_shed_inflight: 0,
            ..NetConfig::default()
        },
        gate.as_fn(),
    )
    .unwrap();

    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let mut ids = VecDeque::new();
    for i in 0..8 {
        ids.push_back(client.send_select(&key, &cells[i % cells.len()]).unwrap());
    }
    let (mut overloaded, mut timeouts) = (0u64, 0u64);
    while let Some(want) = ids.pop_front() {
        let (id, reply) = client.recv().unwrap();
        assert_eq!(id, want);
        match reply {
            Reply::Error { code: ERR_OVERLOADED, .. } => overloaded += 1,
            Reply::Error { code: ERR_TIMEOUT, .. } => timeouts += 1,
            other => panic!("expected a typed error, got {other:?}"),
        }
    }
    assert!(overloaded >= 1, "saturated shedding must answer overloaded");
    assert_eq!(overloaded + timeouts, 8);
    let stats = server.stats();
    assert_eq!(stats.shed, 0, "the closed fallback lane shed nothing: {stats:?}");
    assert_eq!(stats.overloaded, overloaded, "{stats:?}");

    gate.release();
    drop(client);
    server.join();
    assert_threads_drain_to(baseline);
}

#[test]
fn idle_connections_are_reaped_and_shutdown_leaks_nothing() {
    let _serial = NET_LOCK.lock().unwrap();
    let (svc, key, coll) = fixture_service();
    let baseline = thread_count();
    let server = NetServer::start(
        Arc::clone(&svc),
        always_shed(),
        NetConfig { idle_timeout: Duration::from_millis(100), ..NetConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr();

    let mut client = NetClient::connect(addr).unwrap();
    let inst = Instance::new(coll, 4096, 3, 2);
    let (sel, shed) = client.select(&key, &inst).unwrap();
    assert!(!shed);
    assert_eq!(sel.uid, svc.select_uncached(&key, &inst).unwrap().uid);

    // Stay silent past the idle deadline: the daemon closes the
    // connection and counts it; the client sees EOF, not a hang.
    let t0 = Instant::now();
    while server.stats().idle_closed == 0 {
        assert!(t0.elapsed() < Duration::from_secs(10), "idle reap never fired");
        std::thread::sleep(Duration::from_millis(20));
    }
    client.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    assert!(client.select(&key, &inst).is_err(), "the reaped connection is dead");

    let stats = server.join();
    assert_eq!(stats.idle_closed, 1, "{stats:?}");
    assert_eq!(stats.connections_open, 0, "{stats:?}");
    assert_threads_drain_to(baseline);
}

#[test]
fn wire_shutdown_op_stops_the_daemon_for_all_clients() {
    let _serial = NET_LOCK.lock().unwrap();
    let (svc, key, coll) = fixture_service();
    let baseline = thread_count();
    let server =
        NetServer::start(Arc::clone(&svc), always_shed(), NetConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut a = NetClient::connect(addr).unwrap();
    let mut b = NetClient::connect(addr).unwrap();
    let inst = Instance::new(coll, 1024, 2, 2);
    a.select(&key, &inst).unwrap();
    b.select(&key, &inst).unwrap();

    b.shutdown_server().unwrap();
    assert!(!server.running(), "the wire op flips the stop flag");
    let stats = server.join();
    assert_eq!(stats.connections_total, 2);
    assert_eq!(stats.inflight, 0, "{stats:?}");
    // Client `a` finds the daemon gone on its next round-trip.
    a.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    assert!(a.select(&key, &inst).is_err());
    assert_threads_drain_to(baseline);
}
