//! Batched request serving: a bounded queue drained by worker threads
//! through [`Selector::select_batch`].
//!
//! Individual misses pay per-model dispatch once per query; under
//! concurrent load it is cheaper to drain whatever has queued up,
//! group it by shard, and push each group through the selector's
//! batched argmin kernel in one call. Results land in the same
//! per-shard LRU cache the scalar path uses, so a batch miss warms
//! later [`PredictionService::select`] calls and vice versa.
//!
//! [`Selector::select_batch`]: mpcp_core::Selector::select_batch

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use mpcp_core::{Instance, Selection};

use crate::{lock, PredictionService, ServeError, ServiceSnapshot, ShardKey};

/// Worker-pool knobs.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// Worker threads draining the queue (floored at 1).
    pub workers: usize,
    /// Most requests a worker takes per drain (floored at 1).
    pub max_batch: usize,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig { workers: 2, max_batch: 64 }
    }
}

struct Job {
    key: ShardKey,
    instance: Instance,
    reply: mpsc::Sender<Result<Selection, ServeError>>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Inner {
    service: Arc<PredictionService>,
    state: Mutex<QueueState>,
    cv: Condvar,
}

/// A pending reply from [`BatchServer::submit`].
pub struct Ticket {
    rx: mpsc::Receiver<Result<Selection, ServeError>>,
}

impl Ticket {
    /// Block until the batch worker answers. A worker that died (or a
    /// server shut down) before replying is [`ServeError::Disconnected`].
    pub fn wait(self) -> Result<Selection, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Disconnected))
    }
}

/// A worker pool answering queued selection requests in batches.
///
/// Dropping the server (or calling [`BatchServer::shutdown`]) stops
/// accepting new work, drains what is already queued, and joins the
/// workers — no request that was accepted is silently dropped.
pub struct BatchServer {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl BatchServer {
    /// Spawn `cfg.workers` threads serving queries against `service`.
    pub fn start(service: Arc<PredictionService>, cfg: BatchConfig) -> BatchServer {
        let inner = Arc::new(Inner {
            service,
            state: Mutex::new(QueueState { jobs: VecDeque::new(), shutdown: false }),
            cv: Condvar::new(),
        });
        let max_batch = cfg.max_batch.max(1);
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner, max_batch))
            })
            .collect();
        BatchServer { inner, workers }
    }

    /// Enqueue one request; the returned [`Ticket`] resolves when a
    /// worker has served the batch containing it.
    pub fn submit(&self, key: ShardKey, instance: Instance) -> Ticket {
        let (tx, rx) = mpsc::channel();
        {
            let mut st = lock(&self.inner.state);
            if st.shutdown {
                let _ = tx.send(Err(ServeError::Disconnected));
            } else {
                st.jobs.push_back(Job { key, instance, reply: tx });
                mpcp_obs::gauge_set!("serve.queue_depth", st.jobs.len() as f64);
            }
        }
        self.inner.cv.notify_one();
        Ticket { rx }
    }

    /// [`BatchServer::submit`] + [`Ticket::wait`] in one call.
    pub fn query(&self, key: ShardKey, instance: Instance) -> Result<Selection, ServeError> {
        self.submit(key, instance).wait()
    }

    /// Stop accepting work, drain the queue, and join the workers.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        lock(&self.inner.state).shutdown = true;
        self.inner.cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for BatchServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn worker_loop(inner: &Inner, max_batch: usize) {
    loop {
        let batch: Vec<Job> = {
            let mut st = lock(&inner.state);
            loop {
                if !st.jobs.is_empty() {
                    break;
                }
                if st.shutdown {
                    return;
                }
                st = inner
                    .cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            let n = st.jobs.len().min(max_batch);
            let drained: Vec<Job> = st.jobs.drain(..n).collect();
            mpcp_obs::gauge_set!("serve.queue_depth", st.jobs.len() as f64);
            drained
        };
        mpcp_obs::hist_record!("serve.batch_size", batch.len() as u64);
        serve_one_batch(&inner.service, batch);
    }
}

/// Serve a drained batch: group by shard, answer cache hits directly,
/// and push each shard's misses through one `select_batch` call.
///
/// The whole batch resolves against **one** routing snapshot, so every
/// group sees the same shard set even if an artifact publication lands
/// mid-batch.
fn serve_one_batch(service: &PredictionService, jobs: Vec<Job>) {
    let snapshot = service.snapshot();
    let mut groups: HashMap<ShardKey, Vec<Job>> = HashMap::new();
    for j in jobs {
        groups.entry(j.key.clone()).or_default().push(j);
    }
    for (key, group) in groups {
        serve_shard_group(&snapshot, &key, group);
    }
}

fn serve_shard_group(snapshot: &ServiceSnapshot, key: &ShardKey, jobs: Vec<Job>) {
    let Some(shard) = snapshot.shard(key) else {
        let e = ServeError::UnknownShard { key: key.clone() };
        for j in jobs {
            let _ = j.reply.send(Err(e.clone()));
        }
        return;
    };
    let mut misses: Vec<Job> = Vec::new();
    for j in jobs {
        if let Err(e) = shard.check_collective(&j.instance) {
            let _ = j.reply.send(Err(e));
            continue;
        }
        if let Some(sel) = shard.cache_lookup(&j.instance) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            mpcp_obs::counter_add!("serve.cache_hits", 1);
            let _ = j.reply.send(Ok(sel));
        } else {
            shard.misses.fetch_add(1, Ordering::Relaxed);
            mpcp_obs::counter_add!("serve.cache_misses", 1);
            misses.push(j);
        }
    }
    if misses.is_empty() {
        return;
    }
    let instances: Vec<Instance> = misses.iter().map(|j| j.instance).collect();
    let t = mpcp_obs::maybe_now();
    let best = shard.selector.select_batch(&instances);
    mpcp_obs::record_elapsed(shard.latency_metric, t);
    for (j, (uid, pred)) in misses.into_iter().zip(best) {
        // `select_batch` marks an all-non-finite instance with the
        // `u32::MAX` sentinel; surface it as the same typed error the
        // scalar path returns.
        if uid == u32::MAX || !pred.is_finite() {
            let _ = j
                .reply
                .send(Err(ServeError::NoFinitePrediction { instance: j.instance }));
            continue;
        }
        let sel = Selection { uid, predicted_us: Some(pred), degraded: false };
        shard.cache_insert(&j.instance, sel);
        let _ = j.reply.send(Ok(sel));
    }
}
