//! Batched request serving: a bounded queue drained by worker threads
//! through [`Selector::select_batch`].
//!
//! Individual misses pay per-model dispatch once per query; under
//! concurrent load it is cheaper to drain whatever has queued up,
//! group it by shard, and push each group through the selector's
//! batched argmin kernel in one call. Results land in the same
//! per-shard LRU cache the scalar path uses, so a batch miss warms
//! later [`PredictionService::select`] calls and vice versa.
//!
//! [`Selector::select_batch`]: mpcp_core::Selector::select_batch

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use mpcp_core::{Instance, Selection};

use crate::{lock, PredictionService, ServeError, ServiceSnapshot, ShardKey};

/// Worker-pool knobs.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// Worker threads draining the queue (floored at 1).
    pub workers: usize,
    /// Most requests a worker takes per drain (floored at 1).
    pub max_batch: usize,
    /// Admission cap: jobs waiting in the queue beyond which
    /// [`BatchServer::submit`] rejects with [`ServeError::Overloaded`]
    /// instead of queueing (floored at 1). Bounding the queue is what
    /// lets callers shed to a fallback decision under overload rather
    /// than letting latency grow without limit.
    pub max_queue: usize,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig { workers: 2, max_batch: 64, max_queue: 1024 }
    }
}

/// Sentinel for [`Job::submitted_ns`] when telemetry was off at
/// submit time (the telemetry clock may legitimately read 0).
const UNSTAMPED: u64 = u64::MAX;

struct Job {
    key: ShardKey,
    instance: Instance,
    reply: mpsc::Sender<Result<Selection, ServeError>>,
    /// Telemetry-clock reading at submit, [`UNSTAMPED`] if telemetry
    /// was disabled — the anchor for queue-wait and end-to-end latency
    /// attribution.
    submitted_ns: u64,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// Test hook run by each worker at the top of every drain iteration —
/// lets regression tests wedge the workers deliberately (to prove the
/// queue cap holds and [`Ticket::wait_timeout`] fires) without the
/// workers holding the queue lock while stalled.
type WorkerGate = Arc<dyn Fn() + Send + Sync>;

struct Inner {
    service: Arc<PredictionService>,
    state: Mutex<QueueState>,
    cv: Condvar,
    max_queue: usize,
    gate: Option<WorkerGate>,
}

/// A pending reply from [`BatchServer::submit`].
pub struct Ticket {
    rx: mpsc::Receiver<Result<Selection, ServeError>>,
}

impl Ticket {
    /// Block until the batch worker answers. A worker that died (or a
    /// server shut down) before replying is [`ServeError::Disconnected`].
    pub fn wait(self) -> Result<Selection, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Disconnected))
    }

    /// Like [`Ticket::wait`], but give up after `timeout` with
    /// [`ServeError::Timeout`]. The daemon reply path uses this so a
    /// wedged worker turns into a typed error on the wire instead of a
    /// connection that hangs forever.
    pub fn wait_timeout(self, timeout: std::time::Duration) -> Result<Selection, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(reply) => reply,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::Disconnected),
        }
    }
}

/// A worker pool answering queued selection requests in batches.
///
/// Dropping the server (or calling [`BatchServer::shutdown`]) stops
/// accepting new work, drains what is already queued, and joins the
/// workers — no request that was accepted is silently dropped.
pub struct BatchServer {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl BatchServer {
    /// Spawn `cfg.workers` threads serving queries against `service`.
    pub fn start(service: Arc<PredictionService>, cfg: BatchConfig) -> BatchServer {
        BatchServer::start_inner(service, cfg, None)
    }

    /// [`BatchServer::start`] with a test-only hook each worker runs at
    /// the top of every drain iteration. Regression tests use it to
    /// stall the workers on purpose; production code must not.
    #[doc(hidden)]
    pub fn start_with_gate(
        service: Arc<PredictionService>,
        cfg: BatchConfig,
        gate: Arc<dyn Fn() + Send + Sync>,
    ) -> BatchServer {
        BatchServer::start_inner(service, cfg, Some(gate))
    }

    fn start_inner(
        service: Arc<PredictionService>,
        cfg: BatchConfig,
        gate: Option<WorkerGate>,
    ) -> BatchServer {
        let inner = Arc::new(Inner {
            service,
            state: Mutex::new(QueueState { jobs: VecDeque::new(), shutdown: false }),
            cv: Condvar::new(),
            max_queue: cfg.max_queue.max(1),
            gate,
        });
        let max_batch = cfg.max_batch.max(1);
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner, max_batch))
            })
            .collect();
        BatchServer { inner, workers }
    }

    /// Enqueue one request; the returned [`Ticket`] resolves when a
    /// worker has served the batch containing it.
    ///
    /// Admission is bounded: once `max_queue` jobs are already waiting,
    /// the request is rejected with [`ServeError::Overloaded`] instead
    /// of queued. Rejection is the caller's cue to shed — answer from
    /// the library-default fallback rather than stack latency onto an
    /// already-behind queue.
    pub fn submit(&self, key: ShardKey, instance: Instance) -> Result<Ticket, ServeError> {
        let (tx, rx) = mpsc::channel();
        let submitted_ns = self
            .inner
            .service
            .telemetry()
            .map_or(UNSTAMPED, crate::telemetry::ServiceTelemetry::now_ns);
        {
            let mut st = lock(&self.inner.state);
            if st.shutdown {
                return Err(ServeError::Disconnected);
            }
            if st.jobs.len() >= self.inner.max_queue {
                mpcp_obs::counter_add!("serve.queue_rejected", 1);
                return Err(ServeError::Overloaded);
            }
            st.jobs.push_back(Job { key, instance, reply: tx, submitted_ns });
            mpcp_obs::gauge_set!("serve.queue_depth", st.jobs.len() as f64);
        }
        self.inner.cv.notify_one();
        Ok(Ticket { rx })
    }

    /// [`BatchServer::submit`] + [`Ticket::wait`] in one call.
    pub fn query(&self, key: ShardKey, instance: Instance) -> Result<Selection, ServeError> {
        self.submit(key, instance)?.wait()
    }

    /// Stop accepting work, drain the queue, and join the workers.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        lock(&self.inner.state).shutdown = true;
        self.inner.cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for BatchServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn worker_loop(inner: &Inner, max_batch: usize) {
    loop {
        if let Some(gate) = &inner.gate {
            gate();
        }
        let batch: Vec<Job> = {
            let mut st = lock(&inner.state);
            loop {
                if !st.jobs.is_empty() {
                    break;
                }
                if st.shutdown {
                    return;
                }
                st = inner
                    .cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            let n = st.jobs.len().min(max_batch);
            let drained: Vec<Job> = st.jobs.drain(..n).collect();
            mpcp_obs::gauge_set!("serve.queue_depth", st.jobs.len() as f64);
            drained
        };
        mpcp_obs::hist_record!("serve.batch_size", batch.len() as u64);
        serve_one_batch(&inner.service, batch);
    }
}

/// Serve a drained batch: group by shard, answer cache hits directly,
/// and push each shard's misses through one `select_batch` call.
///
/// The whole batch resolves against **one** routing snapshot, so every
/// group sees the same shard set even if an artifact publication lands
/// mid-batch.
fn serve_one_batch(service: &PredictionService, jobs: Vec<Job>) {
    let snapshot = service.snapshot();
    let mut groups: HashMap<ShardKey, Vec<Job>> = HashMap::new();
    for j in jobs {
        groups.entry(j.key.clone()).or_default().push(j);
    }
    for (key, group) in groups {
        serve_shard_group(&snapshot, &key, group);
    }
}

fn serve_shard_group(snapshot: &ServiceSnapshot, key: &ShardKey, jobs: Vec<Job>) {
    let Some(shard) = snapshot.shard(key) else {
        let e = ServeError::UnknownShard { key: key.clone() };
        for j in jobs {
            let _ = j.reply.send(Err(e.clone()));
        }
        return;
    };
    // Latency attribution: queue-wait is recorded per job as it is
    // picked up; the cache-probe pass and the batched compute call are
    // timed per group (windowed histograms plus trace spans), and each
    // reply records the job's end-to-end submit→reply latency.
    let tel = shard.telemetry.get();
    let probe_start = tel.map_or(0, crate::telemetry::ShardTelemetry::now_ns);
    let mut misses: Vec<Job> = Vec::new();
    {
        let _probe_span = mpcp_obs::span("serve.batch.cache_probe").attr("jobs", jobs.len());
        for j in jobs {
            if let (Some(tl), false) = (tel, j.submitted_ns == UNSTAMPED) {
                let now = tl.now_ns();
                tl.record_queue_wait(now, now.saturating_sub(j.submitted_ns));
            }
            if let Err(e) = shard.check_collective(&j.instance) {
                let _ = j.reply.send(Err(e));
                continue;
            }
            if let Some(sel) = shard.cache_lookup(&j.instance) {
                // ORDERING: Relaxed — monotonic stat counter; readers
                // only ever sum it, nothing is published under it.
                shard.hits.fetch_add(1, Ordering::Relaxed);
                mpcp_obs::counter_add!("serve.cache_hits", 1);
                if let (Some(tl), false) = (tel, j.submitted_ns == UNSTAMPED) {
                    let now = tl.now_ns();
                    tl.record_batch_done(now, now.saturating_sub(j.submitted_ns), true);
                }
                let _ = j.reply.send(Ok(sel));
            } else {
                // ORDERING: Relaxed — monotonic stat counter, as above.
                shard.misses.fetch_add(1, Ordering::Relaxed);
                mpcp_obs::counter_add!("serve.cache_misses", 1);
                misses.push(j);
            }
        }
    }
    if let Some(tl) = tel {
        let now = tl.now_ns();
        tl.record_batch_probe(now, now.saturating_sub(probe_start));
    }
    if misses.is_empty() {
        return;
    }
    // Collapse duplicate instances before computing: N identical queued
    // misses must cost exactly one `select_batch` row and one LRU
    // insert, with that one result fanned out to every waiting reply.
    let mut unique: Vec<Instance> = Vec::with_capacity(misses.len());
    let mut index_of: HashMap<(u64, u32, u32), usize> = HashMap::new();
    let mut slot: Vec<usize> = Vec::with_capacity(misses.len());
    for j in &misses {
        let k = (j.instance.msize, j.instance.nodes, j.instance.ppn);
        let next = unique.len();
        let idx = *index_of.entry(k).or_insert(next);
        if idx == next {
            unique.push(j.instance);
        }
        slot.push(idx);
    }
    let deduped = misses.len() - unique.len();
    if deduped > 0 {
        mpcp_obs::counter_add!("serve.batch.dedup_saved", deduped as u64);
    }
    let t = mpcp_obs::maybe_now();
    let compute_start = tel.map_or(0, crate::telemetry::ShardTelemetry::now_ns);
    let best = {
        let _compute_span =
            mpcp_obs::span("serve.batch.compute").attr("batch", unique.len());
        shard.selector.select_batch(&unique)
    };
    mpcp_obs::record_elapsed(shard.latency_metric, t);
    if let Some(tl) = tel {
        let now = tl.now_ns();
        tl.record_batch_compute(now, now.saturating_sub(compute_start));
    }
    // Resolve each distinct instance once — including its single cache
    // insert — then fan the per-row result out to all of its waiters.
    let mut results: Vec<Result<Selection, ServeError>> = Vec::with_capacity(unique.len());
    for (inst, (uid, pred)) in unique.iter().zip(best) {
        // `select_batch` marks an all-non-finite instance with the
        // `u32::MAX` sentinel; surface it as the same typed error the
        // scalar path returns (and as the degraded-selection instant
        // event the flight recorder triggers on).
        if uid == u32::MAX || !pred.is_finite() {
            mpcp_obs::event("serve.degraded.no_finite")
                .attr("msize", inst.msize)
                .attr("nodes", inst.nodes)
                .attr("ppn", inst.ppn)
                .emit();
            results.push(Err(ServeError::NoFinitePrediction { instance: *inst }));
            continue;
        }
        let sel = Selection { uid, predicted_us: Some(pred), degraded: false };
        shard.cache_insert(inst, sel);
        results.push(Ok(sel));
    }
    for (j, idx) in misses.into_iter().zip(slot) {
        let reply = results.get(idx).cloned().unwrap_or(Err(ServeError::Disconnected));
        if let (Some(tl), false, true) = (tel, j.submitted_ns == UNSTAMPED, reply.is_ok()) {
            let now = tl.now_ns();
            tl.record_batch_done(now, now.saturating_sub(j.submitted_ns), false);
        }
        let _ = j.reply.send(reply);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::PoisonError;
    use std::time::Duration;

    /// A latch the worker gate blocks on until the test releases it —
    /// the "deliberately stalled worker" from the regression briefs.
    struct Gate {
        open: Mutex<bool>,
        cv: Condvar,
    }

    impl Gate {
        fn new() -> Arc<Gate> {
            Arc::new(Gate { open: Mutex::new(false), cv: Condvar::new() })
        }

        fn release(&self) {
            *lock(&self.open) = true;
            self.cv.notify_all();
        }

        fn as_fn(self: &Arc<Gate>) -> Arc<dyn Fn() + Send + Sync> {
            let g = Arc::clone(self);
            Arc::new(move || {
                let mut open = lock(&g.open);
                while !*open {
                    open = g.cv.wait(open).unwrap_or_else(PoisonError::into_inner);
                }
            })
        }
    }

    fn fixture_service() -> (Arc<PredictionService>, ShardKey, mpcp_collectives::Collective) {
        let artifact = crate::test_artifact();
        let coll = artifact.meta.collective;
        let svc = Arc::new(PredictionService::new(64));
        let key = svc.insert_artifact(artifact);
        (svc, key, coll)
    }

    #[test]
    fn stalled_worker_cannot_grow_queue_past_cap() {
        let (svc, key, coll) = fixture_service();
        let gate = Gate::new();
        let server = BatchServer::start_with_gate(
            Arc::clone(&svc),
            BatchConfig { workers: 1, max_batch: 64, max_queue: 4 },
            gate.as_fn(),
        );
        // The lone worker is wedged in the gate, so nothing drains:
        // exactly `max_queue` submissions are admitted and every one
        // past the cap is a typed rejection, not unbounded growth.
        let insts: Vec<Instance> =
            (0..8).map(|i| Instance::new(coll, 64 + i as u64 * 8, 2, 1)).collect();
        let tickets: Vec<Ticket> = insts[..4]
            .iter()
            .map(|i| server.submit(key.clone(), *i).expect("under cap admits"))
            .collect();
        for i in &insts[4..] {
            assert!(matches!(
                server.submit(key.clone(), *i),
                Err(ServeError::Overloaded)
            ));
        }
        // Releasing the worker serves everything that was admitted.
        gate.release();
        for (t, i) in tickets.into_iter().zip(&insts[..4]) {
            let got = t.wait().expect("admitted job is served");
            let want = svc.select_uncached(&key, i).expect("oracle");
            assert_eq!(got.uid, want.uid);
            assert_eq!(
                got.predicted_us.map(f64::to_bits),
                want.predicted_us.map(f64::to_bits)
            );
        }
        server.shutdown();
    }

    #[test]
    fn wait_timeout_fires_against_wedged_worker() {
        let (svc, key, coll) = fixture_service();
        let gate = Gate::new();
        let server = BatchServer::start_with_gate(
            Arc::clone(&svc),
            BatchConfig { workers: 1, max_batch: 8, max_queue: 8 },
            gate.as_fn(),
        );
        let inst = Instance::new(coll, 256, 2, 1);
        let ticket = server.submit(key.clone(), inst).expect("admitted");
        assert_eq!(
            ticket.wait_timeout(Duration::from_millis(50)),
            Err(ServeError::Timeout),
            "a wedged worker must surface as Timeout, not a hang"
        );
        // Un-wedge so shutdown can join the worker; a live worker then
        // answers well within a generous deadline.
        gate.release();
        let sel = server
            .submit(key, inst)
            .expect("admitted")
            .wait_timeout(Duration::from_secs(30))
            .expect("live worker answers in time");
        assert!(!sel.degraded);
        server.shutdown();
    }

    #[test]
    fn duplicate_misses_cost_one_computed_row() {
        let (svc, key, coll) = fixture_service();
        let gate = Gate::new();
        let server = BatchServer::start_with_gate(
            Arc::clone(&svc),
            BatchConfig { workers: 1, max_batch: 64, max_queue: 64 },
            gate.as_fn(),
        );
        // Queue N identical cold misses while the worker is wedged, so
        // they all land in one drained batch.
        const N: usize = 8;
        let inst = Instance::new(coll, 4096, 4, 2);
        // This counter is only bumped by the miss-dedupe path, and no
        // other test in this binary queues duplicate instances, so the
        // delta is exact. Recording is off by default in tests.
        mpcp_obs::set_enabled(true);
        let dedup_before = mpcp_obs::metrics::counter("serve.batch.dedup_saved").get();
        let tickets: Vec<Ticket> = (0..N)
            .map(|_| server.submit(key.clone(), inst).expect("admitted"))
            .collect();
        gate.release();
        let replies: Vec<Selection> =
            tickets.into_iter().map(|t| t.wait().expect("served")).collect();
        // Every waiter got the same answer, bit for bit.
        for r in &replies[1..] {
            assert_eq!(r.uid, replies[0].uid);
            assert_eq!(
                r.predicted_us.map(f64::to_bits),
                replies[0].predicted_us.map(f64::to_bits)
            );
        }
        assert_eq!(
            mpcp_obs::metrics::counter("serve.batch.dedup_saved").get() - dedup_before,
            (N - 1) as u64,
            "N identical queued misses must collapse to one computed row"
        );
        let stats = svc.stats();
        assert_eq!(stats.shards[0].inserts, 1, "one cache insert for N duplicate misses");
        assert_eq!(stats.misses(), N as u64, "all N probed as misses before the compute");
        server.shutdown();
    }
}
