//! Batched request serving: a bounded queue drained by worker threads
//! through [`Selector::select_batch`].
//!
//! Individual misses pay per-model dispatch once per query; under
//! concurrent load it is cheaper to drain whatever has queued up,
//! group it by shard, and push each group through the selector's
//! batched argmin kernel in one call. Results land in the same
//! per-shard LRU cache the scalar path uses, so a batch miss warms
//! later [`PredictionService::select`] calls and vice versa.
//!
//! [`Selector::select_batch`]: mpcp_core::Selector::select_batch

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use mpcp_core::{Instance, Selection};

use crate::{lock, PredictionService, ServeError, ServiceSnapshot, ShardKey};

/// Worker-pool knobs.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// Worker threads draining the queue (floored at 1).
    pub workers: usize,
    /// Most requests a worker takes per drain (floored at 1).
    pub max_batch: usize,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig { workers: 2, max_batch: 64 }
    }
}

/// Sentinel for [`Job::submitted_ns`] when telemetry was off at
/// submit time (the telemetry clock may legitimately read 0).
const UNSTAMPED: u64 = u64::MAX;

struct Job {
    key: ShardKey,
    instance: Instance,
    reply: mpsc::Sender<Result<Selection, ServeError>>,
    /// Telemetry-clock reading at submit, [`UNSTAMPED`] if telemetry
    /// was disabled — the anchor for queue-wait and end-to-end latency
    /// attribution.
    submitted_ns: u64,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Inner {
    service: Arc<PredictionService>,
    state: Mutex<QueueState>,
    cv: Condvar,
}

/// A pending reply from [`BatchServer::submit`].
pub struct Ticket {
    rx: mpsc::Receiver<Result<Selection, ServeError>>,
}

impl Ticket {
    /// Block until the batch worker answers. A worker that died (or a
    /// server shut down) before replying is [`ServeError::Disconnected`].
    pub fn wait(self) -> Result<Selection, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Disconnected))
    }
}

/// A worker pool answering queued selection requests in batches.
///
/// Dropping the server (or calling [`BatchServer::shutdown`]) stops
/// accepting new work, drains what is already queued, and joins the
/// workers — no request that was accepted is silently dropped.
pub struct BatchServer {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl BatchServer {
    /// Spawn `cfg.workers` threads serving queries against `service`.
    pub fn start(service: Arc<PredictionService>, cfg: BatchConfig) -> BatchServer {
        let inner = Arc::new(Inner {
            service,
            state: Mutex::new(QueueState { jobs: VecDeque::new(), shutdown: false }),
            cv: Condvar::new(),
        });
        let max_batch = cfg.max_batch.max(1);
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner, max_batch))
            })
            .collect();
        BatchServer { inner, workers }
    }

    /// Enqueue one request; the returned [`Ticket`] resolves when a
    /// worker has served the batch containing it.
    pub fn submit(&self, key: ShardKey, instance: Instance) -> Ticket {
        let (tx, rx) = mpsc::channel();
        let submitted_ns = self
            .inner
            .service
            .telemetry()
            .map_or(UNSTAMPED, crate::telemetry::ServiceTelemetry::now_ns);
        {
            let mut st = lock(&self.inner.state);
            if st.shutdown {
                let _ = tx.send(Err(ServeError::Disconnected));
            } else {
                st.jobs.push_back(Job { key, instance, reply: tx, submitted_ns });
                mpcp_obs::gauge_set!("serve.queue_depth", st.jobs.len() as f64);
            }
        }
        self.inner.cv.notify_one();
        Ticket { rx }
    }

    /// [`BatchServer::submit`] + [`Ticket::wait`] in one call.
    pub fn query(&self, key: ShardKey, instance: Instance) -> Result<Selection, ServeError> {
        self.submit(key, instance).wait()
    }

    /// Stop accepting work, drain the queue, and join the workers.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        lock(&self.inner.state).shutdown = true;
        self.inner.cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for BatchServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn worker_loop(inner: &Inner, max_batch: usize) {
    loop {
        let batch: Vec<Job> = {
            let mut st = lock(&inner.state);
            loop {
                if !st.jobs.is_empty() {
                    break;
                }
                if st.shutdown {
                    return;
                }
                st = inner
                    .cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            let n = st.jobs.len().min(max_batch);
            let drained: Vec<Job> = st.jobs.drain(..n).collect();
            mpcp_obs::gauge_set!("serve.queue_depth", st.jobs.len() as f64);
            drained
        };
        mpcp_obs::hist_record!("serve.batch_size", batch.len() as u64);
        serve_one_batch(&inner.service, batch);
    }
}

/// Serve a drained batch: group by shard, answer cache hits directly,
/// and push each shard's misses through one `select_batch` call.
///
/// The whole batch resolves against **one** routing snapshot, so every
/// group sees the same shard set even if an artifact publication lands
/// mid-batch.
fn serve_one_batch(service: &PredictionService, jobs: Vec<Job>) {
    let snapshot = service.snapshot();
    let mut groups: HashMap<ShardKey, Vec<Job>> = HashMap::new();
    for j in jobs {
        groups.entry(j.key.clone()).or_default().push(j);
    }
    for (key, group) in groups {
        serve_shard_group(&snapshot, &key, group);
    }
}

fn serve_shard_group(snapshot: &ServiceSnapshot, key: &ShardKey, jobs: Vec<Job>) {
    let Some(shard) = snapshot.shard(key) else {
        let e = ServeError::UnknownShard { key: key.clone() };
        for j in jobs {
            let _ = j.reply.send(Err(e.clone()));
        }
        return;
    };
    // Latency attribution: queue-wait is recorded per job as it is
    // picked up; the cache-probe pass and the batched compute call are
    // timed per group (windowed histograms plus trace spans), and each
    // reply records the job's end-to-end submit→reply latency.
    let tel = shard.telemetry.get();
    let probe_start = tel.map_or(0, crate::telemetry::ShardTelemetry::now_ns);
    let mut misses: Vec<Job> = Vec::new();
    {
        let _probe_span = mpcp_obs::span("serve.batch.cache_probe").attr("jobs", jobs.len());
        for j in jobs {
            if let (Some(tl), false) = (tel, j.submitted_ns == UNSTAMPED) {
                let now = tl.now_ns();
                tl.record_queue_wait(now, now.saturating_sub(j.submitted_ns));
            }
            if let Err(e) = shard.check_collective(&j.instance) {
                let _ = j.reply.send(Err(e));
                continue;
            }
            if let Some(sel) = shard.cache_lookup(&j.instance) {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                mpcp_obs::counter_add!("serve.cache_hits", 1);
                if let (Some(tl), false) = (tel, j.submitted_ns == UNSTAMPED) {
                    let now = tl.now_ns();
                    tl.record_batch_done(now, now.saturating_sub(j.submitted_ns), true);
                }
                let _ = j.reply.send(Ok(sel));
            } else {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                mpcp_obs::counter_add!("serve.cache_misses", 1);
                misses.push(j);
            }
        }
    }
    if let Some(tl) = tel {
        let now = tl.now_ns();
        tl.record_batch_probe(now, now.saturating_sub(probe_start));
    }
    if misses.is_empty() {
        return;
    }
    let instances: Vec<Instance> = misses.iter().map(|j| j.instance).collect();
    let t = mpcp_obs::maybe_now();
    let compute_start = tel.map_or(0, crate::telemetry::ShardTelemetry::now_ns);
    let best = {
        let _compute_span =
            mpcp_obs::span("serve.batch.compute").attr("batch", instances.len());
        shard.selector.select_batch(&instances)
    };
    mpcp_obs::record_elapsed(shard.latency_metric, t);
    if let Some(tl) = tel {
        let now = tl.now_ns();
        tl.record_batch_compute(now, now.saturating_sub(compute_start));
    }
    for (j, (uid, pred)) in misses.into_iter().zip(best) {
        // `select_batch` marks an all-non-finite instance with the
        // `u32::MAX` sentinel; surface it as the same typed error the
        // scalar path returns (and as the degraded-selection instant
        // event the flight recorder triggers on).
        if uid == u32::MAX || !pred.is_finite() {
            mpcp_obs::event("serve.degraded.no_finite")
                .attr("msize", j.instance.msize)
                .attr("nodes", j.instance.nodes)
                .attr("ppn", j.instance.ppn)
                .emit();
            let _ = j
                .reply
                .send(Err(ServeError::NoFinitePrediction { instance: j.instance }));
            continue;
        }
        let sel = Selection { uid, predicted_us: Some(pred), degraded: false };
        shard.cache_insert(&j.instance, sel);
        if let (Some(tl), false) = (tel, j.submitted_ns == UNSTAMPED) {
            let now = tl.now_ns();
            tl.record_batch_done(now, now.saturating_sub(j.submitted_ns), false);
        }
        let _ = j.reply.send(Ok(sel));
    }
}
