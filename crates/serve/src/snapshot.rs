//! Epoch-swapped immutable snapshots of the shard routing table.
//!
//! The query hot path must never block on a reader-writer lock: model
//! refreshes are rare, queries are constant. A [`SnapshotCell`] holds
//! the routing table as an immutable `Arc<ShardMap>` plus a
//! monotonically increasing epoch. Publications build a fresh map
//! (copy-on-write over `Arc`-shared shards), swap it into the slot,
//! and bump the epoch; readers keep a thread-local `(epoch, Arc)`
//! pair and revalidate it with a single `Acquire` load per read. In
//! steady state a read is one atomic load and a thread-local lookup —
//! no lock, no reference-count traffic, no waiting on writers.
//!
//! The slot mutex exists for writers (serializing publications) and
//! for the *refresh* edge: a reader whose cached epoch is stale takes
//! it once to fetch a consistent `(epoch, map)` pair, then goes back
//! to lock-free reads until the next publication.

use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::{lock, Shard, ShardKey};

/// FNV-1a, the shard map's hasher. Routing keys are hashed on every
/// uncached query, the map holds a handful of operator-controlled
/// entries, and SipHash's DoS resistance buys nothing here — a short
/// multiply-per-byte hash cuts the per-query routing cost.
#[derive(Default)]
pub(crate) struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// The immutable routing table one publication installs.
pub(crate) type ShardMap = HashMap<ShardKey, Arc<Shard>, BuildHasherDefault<Fnv1a>>;

/// Process-wide id source, so thread-local entries cached for
/// different service instances never collide.
static NEXT_CELL_ID: AtomicU64 = AtomicU64::new(1);

/// Thread-local cache entries kept per thread. A thread typically
/// serves one or two services; old entries are evicted FIFO, so a
/// dropped service's map is released on the next few reads.
const TLS_CAP: usize = 4;

struct TlsEntry {
    cell: u64,
    epoch: u64,
    map: Arc<ShardMap>,
}

thread_local! {
    static SNAPSHOTS: RefCell<Vec<TlsEntry>> = const { RefCell::new(Vec::new()) };
}

/// One atomically-swapped routing table (see module docs).
pub(crate) struct SnapshotCell {
    id: u64,
    /// Bumped with `Release` ordering — and only while the slot lock
    /// is held — on every publication; one `Acquire` load on the read
    /// path detects staleness.
    epoch: AtomicU64,
    /// Writer-side slot. Readers touch it only when their thread-local
    /// epoch is stale (or on a reentrant read), never in steady state.
    slot: Mutex<Arc<ShardMap>>,
}

impl SnapshotCell {
    pub(crate) fn new() -> SnapshotCell {
        SnapshotCell {
            // ORDERING: Relaxed — an id ticket; uniqueness comes from
            // the RMW itself, nothing is published under it.
            id: NEXT_CELL_ID.fetch_add(1, Ordering::Relaxed),
            epoch: AtomicU64::new(0),
            slot: Mutex::new(Arc::new(ShardMap::default())),
        }
    }

    /// Borrow the current snapshot without blocking: one `Acquire`
    /// epoch load plus a thread-local lookup in steady state, no
    /// reference-count bump.
    ///
    /// `f` should not call back into this cell from the same thread
    /// (the thread-local table is borrowed for its duration); a
    /// reentrant call is still answered correctly, straight from the
    /// slot.
    pub(crate) fn with<R>(&self, f: impl FnOnce(&ShardMap) -> R) -> R {
        self.cached(|arc| f(arc))
    }

    /// An owned handle to the current snapshot (stats, the public
    /// snapshot API, batch workers); same steady-state read path plus
    /// one reference-count increment.
    pub(crate) fn arc(&self) -> Arc<ShardMap> {
        self.cached(Arc::clone)
    }

    fn cached<R>(&self, f: impl FnOnce(&Arc<ShardMap>) -> R) -> R {
        // ORDERING: Acquire pairs with the Release bump in `update`: a
        // reader that sees the new epoch refreshes under the slot lock
        // and is guaranteed the fully-built map.
        let epoch = self.epoch.load(Ordering::Acquire);
        SNAPSHOTS.with(|tls| {
            let Ok(mut tls) = tls.try_borrow_mut() else {
                // Reentrant read on this thread: bypass the cache.
                return f(&self.refresh().1);
            };
            let idx = match tls.iter().position(|e| e.cell == self.id) {
                Some(i) => {
                    if tls[i].epoch != epoch {
                        let (epoch, map) = self.refresh();
                        tls[i].epoch = epoch;
                        tls[i].map = map;
                    }
                    i
                }
                None => {
                    if tls.len() == TLS_CAP {
                        tls.remove(0);
                    }
                    let (epoch, map) = self.refresh();
                    tls.push(TlsEntry { cell: self.id, epoch, map });
                    tls.len() - 1
                }
            };
            f(&tls[idx].map)
        })
    }

    /// The current publication epoch (how many routing-table updates
    /// have been published). Live-stats snapshots report it so an
    /// operator can tell "shard set changed" from "traffic changed".
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire) // ORDERING: pairs with `update`'s Release bump.
    }

    /// A consistent `(epoch, map)` pair from the slot. The epoch is
    /// only ever bumped while the slot lock is held, so reading both
    /// under the lock cannot observe a torn publication.
    fn refresh(&self) -> (u64, Arc<ShardMap>) {
        let slot = lock(&self.slot);
        // ORDERING: Acquire (see `cached`); the slot lock additionally
        // pins the (epoch, map) pair — bumps happen only under it.
        (self.epoch.load(Ordering::Acquire), Arc::clone(&slot))
    }

    /// Publish a new snapshot: copy-on-write the map (shards are
    /// `Arc`-shared, so this clones pointers, not models), apply `f`,
    /// swap the new map in, and bump the epoch — all under the slot
    /// lock, so concurrent publications serialize and a refreshing
    /// reader always fetches a fully-built map. Steady-state readers
    /// never block on this; they serve the previous snapshot until
    /// their next epoch check.
    pub(crate) fn update(&self, f: impl FnOnce(&mut ShardMap)) {
        let mut slot = lock(&self.slot);
        let mut next: ShardMap = (**slot).clone();
        f(&mut next);
        *slot = Arc::new(next);
        // ORDERING: Release publishes the swapped-in map to readers
        // whose Acquire epoch load (in `cached`) observes the bump.
        self.epoch.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(cell: &SnapshotCell) -> Vec<String> {
        let mut k: Vec<String> = cell.with(|m| m.keys().map(|k| k.to_string()).collect());
        k.sort();
        k
    }

    fn key(scope: &str) -> ShardKey {
        ShardKey { coll: mpcp_collectives::Collective::Bcast, scope: scope.into() }
    }

    #[test]
    fn publications_become_visible_to_cached_readers() {
        let cell = SnapshotCell::new();
        assert!(keys(&cell).is_empty());
        // Prime the thread-local cache, then publish behind its back.
        cell.update(|m| {
            m.insert(key("a/x"), Arc::new(crate::Shard::for_tests()));
        });
        assert_eq!(keys(&cell), vec!["MPI_Bcast@a/x"]);
        cell.update(|m| {
            m.insert(key("b/y"), Arc::new(crate::Shard::for_tests()));
        });
        assert_eq!(keys(&cell), vec!["MPI_Bcast@a/x", "MPI_Bcast@b/y"]);
    }

    #[test]
    fn arc_handles_are_immutable_snapshots() {
        let cell = SnapshotCell::new();
        cell.update(|m| {
            m.insert(key("a/x"), Arc::new(crate::Shard::for_tests()));
        });
        let snap = cell.arc();
        cell.update(|m| {
            m.insert(key("b/y"), Arc::new(crate::Shard::for_tests()));
        });
        // The old handle still sees exactly one shard; a fresh read
        // sees two.
        assert_eq!(snap.len(), 1);
        assert_eq!(cell.arc().len(), 2);
    }

    #[test]
    fn many_cells_share_one_thread_cache() {
        // More cells than TLS_CAP: eviction must not corrupt reads.
        let cells: Vec<SnapshotCell> = (0..TLS_CAP + 3).map(|_| SnapshotCell::new()).collect();
        for (i, c) in cells.iter().enumerate() {
            c.update(|m| {
                m.insert(key(&format!("m{i}/l")), Arc::new(crate::Shard::for_tests()));
            });
        }
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(keys(c), vec![format!("MPI_Bcast@m{i}/l")]);
        }
    }

    #[test]
    fn reentrant_reads_fall_back_to_the_slot() {
        let cell = SnapshotCell::new();
        cell.update(|m| {
            m.insert(key("a/x"), Arc::new(crate::Shard::for_tests()));
        });
        let n = cell.with(|outer| {
            // The thread-local table is borrowed here; an inner read
            // must still answer (from the slot) instead of panicking.
            let inner = cell.with(|m| m.len());
            outer.len() + inner
        });
        assert_eq!(n, 2);
    }
}
