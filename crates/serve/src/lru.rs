//! A bounded LRU map on a slab of doubly-linked entries.
//!
//! The serving layer keys prediction results by grid cell, so the cache
//! must be bounded (benchmark grids are finite but query streams are
//! not) and cheap under a mutex: `get` and `put` are one hash lookup
//! plus O(1) pointer splices, with no per-operation allocation once the
//! slab is warm. Entries link through slab indices rather than pointers
//! so the structure is plain safe Rust (this crate forbids `unsafe`)
//! and runs under Miri.

use std::collections::HashMap;
use std::hash::Hash;

/// Sentinel slab index: "no neighbour".
const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    val: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity map evicting the least-recently-used entry.
pub struct LruCache<K, V> {
    index: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    evictions: u64,
    inserts: u64,
}

impl<K: Clone + Eq + Hash, V: Clone> LruCache<K, V> {
    /// A cache holding at most `capacity` entries (floored at 1 — a
    /// zero-capacity cache would turn every `put` into a no-op and make
    /// hit/miss accounting lie).
    pub fn new(capacity: usize) -> LruCache<K, V> {
        let capacity = capacity.max(1);
        LruCache {
            index: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            evictions: 0,
            inserts: 0,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries evicted to make room since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// New entries inserted since construction (refreshes of an
    /// existing key do not count). With `evictions`, this gives cache
    /// churn: `inserts - evictions - len` entries would be negative
    /// only if accounting broke.
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Look up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let &i = self.index.get(key)?;
        self.move_to_front(i);
        Some(self.slab[i].val.clone())
    }

    /// Insert or refresh `key`, evicting the least-recently-used entry
    /// when at capacity.
    pub fn put(&mut self, key: K, val: V) {
        if let Some(&i) = self.index.get(&key) {
            self.slab[i].val = val;
            self.move_to_front(i);
            return;
        }
        if self.index.len() == self.capacity {
            self.evict_tail();
        }
        let entry = Entry { key: key.clone(), val, prev: NIL, next: self.head };
        let i = match self.free.pop() {
            Some(i) => {
                self.slab[i] = entry;
                i
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        };
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
        self.index.insert(key, i);
        self.inserts += 1;
    }

    /// Splice entry `i` out of the recency list and relink it at the
    /// front.
    fn move_to_front(&mut self, i: usize) {
        if self.head == i {
            return;
        }
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev != NIL {
            self.slab[prev].next = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        }
        if self.tail == i {
            self.tail = prev;
        }
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
    }

    fn evict_tail(&mut self) {
        let t = self.tail;
        if t == NIL {
            return;
        }
        let prev = self.slab[t].prev;
        if prev != NIL {
            self.slab[prev].next = NIL;
        } else {
            self.head = NIL;
        }
        self.tail = prev;
        self.index.remove(&self.slab[t].key);
        self.free.push(t);
        self.evictions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_returns_inserted_values() {
        let mut c = LruCache::new(4);
        assert!(c.is_empty());
        c.put("a", 1);
        c.put("b", 2);
        assert_eq!(c.get(&"a"), Some(1));
        assert_eq!(c.get(&"b"), Some(2));
        assert_eq!(c.get(&"c"), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn put_refreshes_existing_keys() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("a", 9);
        assert_eq!(c.get(&"a"), Some(9));
        assert_eq!(c.len(), 1);
        // A refresh is not a new insert.
        assert_eq!(c.inserts(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        assert_eq!(c.get(&"a"), Some(1)); // "a" is now MRU
        c.put("c", 3); // evicts "b"
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(1));
        assert_eq!(c.get(&"c"), Some(3));
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_one_holds_the_latest_entry() {
        let mut c = LruCache::new(1);
        c.put(1u64, "x");
        c.put(2u64, "y");
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&2), Some("y"));
        assert_eq!(c.capacity(), 1);
    }

    #[test]
    fn zero_capacity_is_floored_to_one() {
        let mut c = LruCache::new(0);
        c.put(7u32, 7u32);
        assert_eq!(c.get(&7), Some(7));
        assert_eq!(c.capacity(), 1);
    }

    #[test]
    fn slab_slots_are_reused_after_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        for i in 0..100 {
            c.put(i, i * 2);
        }
        // The slab never grows past capacity: evicted slots are recycled.
        assert!(c.slab.len() <= 3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.evictions(), 97);
        assert_eq!(c.inserts(), 100);
        for i in 97..100 {
            assert_eq!(c.get(&i), Some(i * 2));
        }
    }

    #[test]
    fn recency_order_survives_interleaved_gets_and_puts() {
        // Differential check against a naive Vec-based LRU model.
        let mut c: LruCache<u8, u32> = LruCache::new(4);
        let mut model: Vec<(u8, u32)> = Vec::new(); // front = MRU
        let ops: Vec<(bool, u8)> = (0u32..500)
            .map(|i| {
                let r = i.wrapping_mul(2654435761) >> 16;
                ((r & 1) == 0, (r % 11) as u8)
            })
            .collect();
        for (is_put, k) in ops {
            if is_put {
                let v = u32::from(k) + 100;
                c.put(k, v);
                model.retain(|(mk, _)| *mk != k);
                model.insert(0, (k, v));
                model.truncate(4);
            } else {
                let got = c.get(&k);
                let want = model.iter().position(|(mk, _)| *mk == k).map(|p| {
                    let e = model.remove(p);
                    model.insert(0, e);
                    model[0].1
                });
                assert_eq!(got, want, "lookup of {k} diverged from model");
            }
            assert_eq!(c.len(), model.len());
        }
    }
}
