//! # mpcp-serve — concurrent in-process serving of saved selectors
//!
//! PR 4 made selection fast per call; this crate makes trained
//! selectors *deployable*: load [`Selector`] artifacts saved by
//! `mpcp train --save-model` into a [`PredictionService`], shard them
//! by (collective, machine/library), and answer argmin queries from
//! many threads at once. Repeated queries for the same grid cell —
//! the common case when an MPI runtime asks about the same
//! `(F, m, n, N)` over and over — hit a bounded per-shard LRU cache
//! instead of re-evaluating every model.
//!
//! ```no_run
//! use mpcp_core::Instance;
//! use mpcp_collectives::Collective;
//! use mpcp_serve::PredictionService;
//!
//! let svc = PredictionService::new(4096);
//! let key = svc.load_artifact("models/bcast.mpcp".as_ref())?;
//! let inst = Instance::new(Collective::Bcast, 65536, 27, 16);
//! let sel = svc.select(&key, &inst)?;
//! println!("predicted best: {} (~{:?} us)", sel.uid, sel.predicted_us);
//! # Ok::<(), mpcp_serve::ServeError>(())
//! ```
//!
//! [`batch::BatchServer`] adds a request queue drained in batches by
//! worker threads through [`Selector::select_batch`], amortizing the
//! per-model dispatch cost across concurrent misses.
//!
//! Everything degrades into typed [`ServeError`]s — corrupt artifacts,
//! unknown shards, collective mismatches, models with no finite
//! prediction — and the whole crate is `#![forbid(unsafe_code)]`.
//!
//! [`Selector`]: mpcp_core::Selector
//! [`Selector::select_batch`]: mpcp_core::Selector::select_batch

#![forbid(unsafe_code)]

pub mod batch;
pub mod lru;

pub use batch::{BatchConfig, BatchServer, Ticket};
pub use lru::LruCache;

use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use mpcp_collectives::Collective;
use mpcp_core::{
    ArtifactError, ArtifactMeta, Instance, Selection, Selector, SelectorArtifact, TrainReport,
};

/// Lock a mutex, recovering the data on poisoning: a panicking writer
/// can at worst leave a *stale* cache entry or counter, never a torn
/// one, so continuing to serve beats propagating the panic.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Why a serve request failed. Every failure is typed; the service
/// never panics on bad inputs or bad artifacts.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// No artifact is loaded under this shard key.
    UnknownShard {
        /// The key the request named.
        key: ShardKey,
    },
    /// The instance's collective differs from the shard's.
    CollectiveMismatch {
        /// Collective the shard's selector was trained for.
        shard: Collective,
        /// Collective the query asked about.
        instance: Collective,
    },
    /// No trained model produced a finite prediction for the instance.
    NoFinitePrediction {
        /// The offending query.
        instance: Instance,
    },
    /// The artifact could not be read or decoded.
    Artifact(ArtifactError),
    /// The batch server shut down (or its worker died) before replying.
    Disconnected,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownShard { key } => {
                write!(f, "no model loaded for shard {key}")
            }
            ServeError::CollectiveMismatch { shard, instance } => write!(
                f,
                "shard serves {shard} but the query is for {instance}"
            ),
            ServeError::NoFinitePrediction { instance } => write!(
                f,
                "no trained model produced a finite prediction for {instance}"
            ),
            ServeError::Artifact(e) => write!(f, "{e}"),
            ServeError::Disconnected => {
                write!(f, "batch server disconnected before replying")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ArtifactError> for ServeError {
    fn from(e: ArtifactError) -> ServeError {
        ServeError::Artifact(e)
    }
}

/// Which selector a request is routed to: one trained artifact per
/// (collective, machine/library) pair.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShardKey {
    /// The collective operation the shard answers for.
    pub coll: Collective,
    /// Machine/library scope, e.g. `"Hydra/Open MPI 4.0.2"`.
    pub scope: String,
}

impl ShardKey {
    /// The routing key an artifact's manifest implies.
    pub fn of_meta(meta: &ArtifactMeta) -> ShardKey {
        ShardKey {
            coll: meta.collective,
            scope: format!("{}/{}", meta.machine, meta.library),
        }
    }
}

impl fmt::Display for ShardKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.coll, self.scope)
    }
}

/// Cache key: the query grid cell. The collective is fixed per shard,
/// so `(m, n, N)` identifies the instance within it.
type CacheKey = (u64, u32, u32);

/// One loaded artifact plus its private result cache and counters.
/// Crate-visible so the batch workers can share the cache and
/// counters with the scalar path.
pub(crate) struct Shard {
    pub(crate) selector: Selector,
    meta: ArtifactMeta,
    report: TrainReport,
    cache: Mutex<LruCache<CacheKey, Selection>>,
    pub(crate) hits: AtomicU64,
    pub(crate) misses: AtomicU64,
    /// Leaked per-shard histogram name (`serve.latency_ns.<coll>`);
    /// shards are few and live for the process, so the leak is bounded.
    pub(crate) latency_metric: &'static str,
}

impl Shard {
    fn new(artifact: SelectorArtifact, cache_capacity: usize) -> Shard {
        let name: &'static str = Box::leak(
            format!("serve.latency_ns.{}", artifact.meta.collective).into_boxed_str(),
        );
        Shard {
            selector: artifact.selector,
            meta: artifact.meta,
            report: artifact.report,
            cache: Mutex::new(LruCache::new(cache_capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            latency_metric: name,
        }
    }

    pub(crate) fn check_collective(&self, instance: &Instance) -> Result<(), ServeError> {
        if instance.coll != self.meta.collective {
            return Err(ServeError::CollectiveMismatch {
                shard: self.meta.collective,
                instance: instance.coll,
            });
        }
        Ok(())
    }

    /// Uncached argmin through the selector.
    fn compute(&self, instance: &Instance) -> Result<Selection, ServeError> {
        match self.selector.try_select(instance) {
            Some((uid, pred)) => {
                Ok(Selection { uid, predicted_us: Some(pred), degraded: false })
            }
            None => Err(ServeError::NoFinitePrediction { instance: *instance }),
        }
    }

    fn select(&self, instance: &Instance) -> Result<Selection, ServeError> {
        self.check_collective(instance)?;
        let t = mpcp_obs::maybe_now();
        let cell: CacheKey = (instance.msize, instance.nodes, instance.ppn);
        if let Some(sel) = lock(&self.cache).get(&cell) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            mpcp_obs::counter_add!("serve.cache_hits", 1);
            mpcp_obs::record_elapsed(self.latency_metric, t);
            return Ok(sel);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        mpcp_obs::counter_add!("serve.cache_misses", 1);
        // Computed outside the cache lock: two threads racing on the
        // same cold cell both evaluate the models (identical, pure
        // results), which is cheaper than serializing every miss.
        let sel = self.compute(instance)?;
        lock(&self.cache).put(cell, sel);
        mpcp_obs::record_elapsed(self.latency_metric, t);
        Ok(sel)
    }

    pub(crate) fn cache_insert(&self, instance: &Instance, sel: Selection) {
        lock(&self.cache).put((instance.msize, instance.nodes, instance.ppn), sel);
    }

    pub(crate) fn cache_lookup(&self, instance: &Instance) -> Option<Selection> {
        lock(&self.cache).get(&(instance.msize, instance.nodes, instance.ppn))
    }
}

/// Per-shard serving counters, as observed by [`PredictionService::stats`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardStats {
    /// The shard's routing key.
    pub key: ShardKey,
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that evaluated the models.
    pub misses: u64,
    /// Entries currently cached.
    pub cached_entries: usize,
    /// Entries evicted since load.
    pub evictions: u64,
    /// Trained models in the shard's selector.
    pub models: usize,
}

/// A snapshot of the whole service's counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// One entry per loaded shard, in shard-key order.
    pub shards: Vec<ShardStats>,
}

impl ServeStats {
    /// Total cache hits across shards.
    pub fn hits(&self) -> u64 {
        self.shards.iter().map(|s| s.hits).sum()
    }

    /// Total cache misses across shards.
    pub fn misses(&self) -> u64 {
        self.shards.iter().map(|s| s.misses).sum()
    }

    /// Hits over total queries, `0.0` before any traffic.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

/// An in-process prediction service over loaded selector artifacts.
///
/// Shards are immutable once loaded (models are pure functions), so
/// concurrent `select` calls share them behind an `RwLock` that is only
/// write-locked during artifact loading. All query-path mutation — the
/// LRU cache, hit/miss counters — is per-shard.
pub struct PredictionService {
    shards: RwLock<HashMap<ShardKey, Arc<Shard>>>,
    cache_capacity: usize,
}

impl PredictionService {
    /// A service whose per-shard result caches hold `cache_capacity`
    /// grid cells each.
    pub fn new(cache_capacity: usize) -> PredictionService {
        PredictionService { shards: RwLock::new(HashMap::new()), cache_capacity }
    }

    /// Load a saved artifact from disk and route its manifest's
    /// (collective, machine/library) to it. Replaces any shard already
    /// at that key (a model refresh), returning the routing key.
    pub fn load_artifact(&self, path: &Path) -> Result<ShardKey, ServeError> {
        let artifact = Selector::load(path)?;
        Ok(self.insert_artifact(artifact))
    }

    /// Register an already-decoded artifact (the file-free half of
    /// [`PredictionService::load_artifact`]).
    pub fn insert_artifact(&self, artifact: SelectorArtifact) -> ShardKey {
        let key = ShardKey::of_meta(&artifact.meta);
        let shard = Arc::new(Shard::new(artifact, self.cache_capacity));
        self.shards
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key.clone(), shard);
        mpcp_obs::counter_add!("serve.shards_loaded", 1);
        key
    }

    /// Keys of all loaded shards, sorted.
    pub fn shard_keys(&self) -> Vec<ShardKey> {
        let mut keys: Vec<ShardKey> = self
            .shards
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .keys()
            .cloned()
            .collect();
        keys.sort();
        keys
    }

    /// The manifest of the artifact behind `key`.
    pub fn meta(&self, key: &ShardKey) -> Result<ArtifactMeta, ServeError> {
        Ok(self.shard(key)?.meta.clone())
    }

    /// The training coverage of the artifact behind `key`.
    pub fn report(&self, key: &ShardKey) -> Result<TrainReport, ServeError> {
        Ok(self.shard(key)?.report.clone())
    }

    pub(crate) fn shard(&self, key: &ShardKey) -> Result<Arc<Shard>, ServeError> {
        self.shards
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(key)
            .cloned()
            .ok_or_else(|| ServeError::UnknownShard { key: key.clone() })
    }

    /// Answer an argmin query through the shard's LRU cache.
    ///
    /// Cache hits skip model evaluation entirely; misses run
    /// [`Selector::try_select`] and populate the cache. Identical to
    /// [`PredictionService::select_uncached`] result-wise — the cache
    /// stores exactly what the selector computed, keyed by grid cell.
    pub fn select(&self, key: &ShardKey, instance: &Instance) -> Result<Selection, ServeError> {
        self.shard(key)?.select(instance)
    }

    /// Answer an argmin query evaluating every model, bypassing (and
    /// not populating) the cache. The baseline for the cached path in
    /// `mpcp serve-bench`.
    pub fn select_uncached(
        &self,
        key: &ShardKey,
        instance: &Instance,
    ) -> Result<Selection, ServeError> {
        let shard = self.shard(key)?;
        shard.check_collective(instance)?;
        let t = mpcp_obs::maybe_now();
        let sel = shard.compute(instance)?;
        mpcp_obs::record_elapsed(shard.latency_metric, t);
        Ok(sel)
    }

    /// Snapshot all per-shard counters and publish the global hit
    /// ratio gauge.
    pub fn stats(&self) -> ServeStats {
        let mut shards: Vec<ShardStats> = {
            let map = self
                .shards
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            map.iter()
                .map(|(key, s)| {
                    let cache = lock(&s.cache);
                    ShardStats {
                        key: key.clone(),
                        hits: s.hits.load(Ordering::Relaxed),
                        misses: s.misses.load(Ordering::Relaxed),
                        cached_entries: cache.len(),
                        evictions: cache.evictions(),
                        models: s.selector.model_count(),
                    }
                })
                .collect()
        };
        shards.sort_by(|a, b| a.key.cmp(&b.key));
        let stats = ServeStats { shards };
        mpcp_obs::gauge_set!("serve.cache_hit_ratio", stats.hit_ratio());
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_shard_is_a_typed_error() {
        let svc = PredictionService::new(16);
        let key = ShardKey { coll: Collective::Bcast, scope: "nowhere/NoMPI".into() };
        let inst = Instance::new(Collective::Bcast, 64, 2, 2);
        let err = svc.select(&key, &inst).unwrap_err();
        assert_eq!(err, ServeError::UnknownShard { key: key.clone() });
        assert!(format!("{err}").contains("no model loaded"));
        assert!(svc.shard_keys().is_empty());
    }

    #[test]
    fn missing_artifact_file_is_an_io_error() {
        let svc = PredictionService::new(16);
        let err = svc
            .load_artifact(Path::new("/nonexistent/path/model.mpcp"))
            .unwrap_err();
        assert!(matches!(err, ServeError::Artifact(ArtifactError::Io { .. })));
    }

    #[test]
    fn stats_start_empty() {
        let svc = PredictionService::new(16);
        let stats = svc.stats();
        assert_eq!(stats.hits() + stats.misses(), 0);
        assert_eq!(stats.hit_ratio(), 0.0);
    }
}
