//! # mpcp-serve — concurrent in-process serving of saved selectors
//!
//! PR 4 made selection fast per call; this crate makes trained
//! selectors *deployable*: load [`Selector`] artifacts saved by
//! `mpcp train --save-model` into a [`PredictionService`], shard them
//! by (collective, machine/library), and answer argmin queries from
//! many threads at once. Repeated queries for the same grid cell —
//! the common case when an MPI runtime asks about the same
//! `(F, m, n, N)` over and over — hit a bounded per-shard LRU cache
//! instead of re-evaluating every model.
//!
//! ```no_run
//! use mpcp_core::Instance;
//! use mpcp_collectives::Collective;
//! use mpcp_serve::PredictionService;
//!
//! let svc = PredictionService::new(4096);
//! let key = svc.load_artifact("models/bcast.mpcp".as_ref())?;
//! let inst = Instance::new(Collective::Bcast, 65536, 27, 16);
//! let sel = svc.select(&key, &inst)?;
//! println!("predicted best: {} (~{:?} us)", sel.uid, sel.predicted_us);
//! # Ok::<(), mpcp_serve::ServeError>(())
//! ```
//!
//! [`batch::BatchServer`] adds a request queue drained in batches by
//! worker threads through [`Selector::select_batch`], amortizing the
//! per-model dispatch cost across concurrent misses.
//!
//! Everything degrades into typed [`ServeError`]s — corrupt artifacts,
//! unknown shards, collective mismatches, models with no finite
//! prediction — and the whole crate is `#![forbid(unsafe_code)]`.
//!
//! [`Selector`]: mpcp_core::Selector
//! [`Selector::select_batch`]: mpcp_core::Selector::select_batch

#![forbid(unsafe_code)]

pub mod batch;
pub mod lru;
pub mod net;
mod snapshot;
pub mod telemetry;

pub use batch::{BatchConfig, BatchServer, Ticket};
pub use lru::LruCache;
pub use net::{NetClient, NetConfig, NetError, NetServer, NetStatsSnapshot, Reply, ShedFn};
pub use telemetry::{LiveStats, ShardLiveStats, TelemetryConfig};

use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use mpcp_collectives::Collective;
use mpcp_core::{
    ArtifactError, ArtifactMeta, Instance, Selection, Selector, SelectorArtifact, TrainReport,
};
use mpcp_obs::metrics::HistSnapshot;

/// Lock a mutex, recovering the data on poisoning: a panicking writer
/// can at worst leave a *stale* cache entry or counter, never a torn
/// one, so continuing to serve beats propagating the panic.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Why a serve request failed. Every failure is typed; the service
/// never panics on bad inputs or bad artifacts.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// No artifact is loaded under this shard key.
    UnknownShard {
        /// The key the request named.
        key: ShardKey,
    },
    /// The instance's collective differs from the shard's.
    CollectiveMismatch {
        /// Collective the shard's selector was trained for.
        shard: Collective,
        /// Collective the query asked about.
        instance: Collective,
    },
    /// No trained model produced a finite prediction for the instance.
    NoFinitePrediction {
        /// The offending query.
        instance: Instance,
    },
    /// The artifact could not be read or decoded.
    Artifact(ArtifactError),
    /// The batch server shut down (or its worker died) before replying.
    Disconnected,
    /// The bounded admission queue is full and shedding capacity is
    /// saturated — the request was refused rather than queued.
    Overloaded,
    /// The reply did not arrive within the caller's deadline
    /// ([`Ticket::wait_timeout`]); the request may still complete.
    Timeout,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownShard { key } => {
                write!(f, "no model loaded for shard {key}")
            }
            ServeError::CollectiveMismatch { shard, instance } => write!(
                f,
                "shard serves {shard} but the query is for {instance}"
            ),
            ServeError::NoFinitePrediction { instance } => write!(
                f,
                "no trained model produced a finite prediction for {instance}"
            ),
            ServeError::Artifact(e) => write!(f, "{e}"),
            ServeError::Disconnected => {
                write!(f, "batch server disconnected before replying")
            }
            ServeError::Overloaded => {
                write!(f, "server overloaded: admission queue full")
            }
            ServeError::Timeout => {
                write!(f, "timed out waiting for a batch worker to reply")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ArtifactError> for ServeError {
    fn from(e: ArtifactError) -> ServeError {
        ServeError::Artifact(e)
    }
}

/// Which selector a request is routed to: one trained artifact per
/// (collective, machine/library) pair.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShardKey {
    /// The collective operation the shard answers for.
    pub coll: Collective,
    /// Machine/library scope, e.g. `"Hydra/Open MPI 4.0.2"`.
    pub scope: String,
}

impl ShardKey {
    /// The routing key an artifact's manifest implies.
    pub fn of_meta(meta: &ArtifactMeta) -> ShardKey {
        ShardKey {
            coll: meta.collective,
            scope: format!("{}/{}", meta.machine, meta.library),
        }
    }
}

impl fmt::Display for ShardKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.coll, self.scope)
    }
}

/// Cache key: the query grid cell. The collective is fixed per shard,
/// so `(m, n, N)` identifies the instance within it.
type CacheKey = (u64, u32, u32);

/// One loaded artifact plus its private result cache and counters.
/// Crate-visible so the batch workers can share the cache and
/// counters with the scalar path.
pub(crate) struct Shard {
    pub(crate) selector: Selector,
    meta: ArtifactMeta,
    report: TrainReport,
    cache: Mutex<LruCache<CacheKey, Selection>>,
    pub(crate) hits: AtomicU64,
    pub(crate) misses: AtomicU64,
    /// Interned per-shard histogram name (`serve.latency_ns.<coll>`):
    /// one allocation per *unique* name for the process lifetime, not
    /// one per shard reload (see `mpcp_obs::metrics::interned`).
    pub(crate) latency_metric: &'static str,
    /// Rolling-window recorders, attached once telemetry is enabled
    /// (empty until then: the hot path pays one `OnceLock` load).
    pub(crate) telemetry: OnceLock<telemetry::ShardTelemetry>,
}

impl Shard {
    fn new(artifact: SelectorArtifact, cache_capacity: usize) -> Shard {
        let name =
            mpcp_obs::metrics::interned(&format!("serve.latency_ns.{}", artifact.meta.collective));
        Shard {
            selector: artifact.selector,
            meta: artifact.meta,
            report: artifact.report,
            cache: Mutex::new(LruCache::new(cache_capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            latency_metric: name,
            telemetry: OnceLock::new(),
        }
    }

    pub(crate) fn attach_telemetry(&self, tel: &telemetry::ServiceTelemetry) {
        let _ = self.telemetry.set(tel.shard_telemetry());
    }

    pub(crate) fn check_collective(&self, instance: &Instance) -> Result<(), ServeError> {
        if instance.coll != self.meta.collective {
            return Err(ServeError::CollectiveMismatch {
                shard: self.meta.collective,
                instance: instance.coll,
            });
        }
        Ok(())
    }

    /// Uncached argmin through the selector. A selection with no
    /// finite prediction also emits a `serve.degraded.no_finite`
    /// instant event — one of the flight recorder's dump triggers.
    fn compute(&self, instance: &Instance) -> Result<Selection, ServeError> {
        match self.selector.try_select(instance) {
            Some((uid, pred)) => {
                Ok(Selection { uid, predicted_us: Some(pred), degraded: false })
            }
            None => {
                mpcp_obs::event("serve.degraded.no_finite")
                    .attr("msize", instance.msize)
                    .attr("nodes", instance.nodes)
                    .attr("ppn", instance.ppn)
                    .emit();
                Err(ServeError::NoFinitePrediction { instance: *instance })
            }
        }
    }

    fn select(&self, instance: &Instance) -> Result<Selection, ServeError> {
        self.check_collective(instance)?;
        let t = mpcp_obs::maybe_now();
        // Windowed recording is active only after `enable_telemetry`,
        // and the scalar path is *sampled*: most requests pay one
        // `OnceLock` load plus a thread-local tick, and only every
        // `scalar_sample`-th request reads the clock and records (with
        // matching weight, so windowed counts and rates stay unbiased).
        let tel = self
            .telemetry
            .get()
            .and_then(|tl| match tl.scalar_weight() {
                0 => None,
                w => Some((tl, w)),
            });
        let start_ns = tel.as_ref().map_or(0, |(tl, _)| tl.now_ns());
        let cell: CacheKey = (instance.msize, instance.nodes, instance.ppn);
        if let Some(sel) = lock(&self.cache).get(&cell) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            mpcp_obs::counter_add!("serve.cache_hits", 1);
            mpcp_obs::record_elapsed(self.latency_metric, t);
            if let Some((tl, w)) = tel {
                tl.record_hit(start_ns, w);
            }
            return Ok(sel);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        mpcp_obs::counter_add!("serve.cache_misses", 1);
        let probe_ns = tel.as_ref().map_or(0, |(tl, _)| tl.now_ns());
        // Computed outside the cache lock: two threads racing on the
        // same cold cell both evaluate the models (identical, pure
        // results), which is cheaper than serializing every miss.
        let sel = self.compute(instance)?;
        lock(&self.cache).put(cell, sel);
        mpcp_obs::record_elapsed(self.latency_metric, t);
        if let Some((tl, w)) = tel {
            tl.record_scalar_miss(start_ns, probe_ns, tl.now_ns(), w);
        }
        Ok(sel)
    }

    pub(crate) fn cache_insert(&self, instance: &Instance, sel: Selection) {
        lock(&self.cache).put((instance.msize, instance.nodes, instance.ppn), sel);
    }

    pub(crate) fn cache_lookup(&self, instance: &Instance) -> Option<Selection> {
        lock(&self.cache).get(&(instance.msize, instance.nodes, instance.ppn))
    }

    /// A minimal real shard (tiny KNN fixture, trained once per test
    /// binary) for routing-table tests.
    #[cfg(test)]
    pub(crate) fn for_tests() -> Shard {
        Shard::new(test_artifact(), 16)
    }
}

/// A tiny real selector artifact (KNN on the benchmark fixture grid),
/// trained once per test binary — shared by routing-table and batch
/// unit tests.
#[cfg(test)]
pub(crate) fn test_artifact() -> SelectorArtifact {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    let bytes = BYTES.get_or_init(|| {
        let spec = mpcp_benchmark::DatasetSpec::tiny_for_tests();
        let lib = spec.library(None);
        let data = spec.generate(&lib, &mpcp_benchmark::BenchConfig::quick());
        let (selector, report) = Selector::train_with_report(
            &mpcp_ml::Learner::knn(),
            &data.records,
            lib.configs(spec.coll),
            &mpcp_core::TrainOptions::default(),
        )
        .expect("tiny fixture trains");
        let meta = ArtifactMeta::capture(
            spec.coll,
            &format!("{} {}", lib.name, lib.version),
            &spec.machine.name,
            Some(spec.seed),
            &mpcp_core::TrainOptions::default(),
        );
        selector.to_artifact_bytes(&report, &meta)
    });
    SelectorArtifact::from_bytes(bytes).expect("fixture artifact decodes")
}

/// Per-shard serving counters, as observed by [`PredictionService::stats`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardStats {
    /// The shard's routing key.
    pub key: ShardKey,
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that evaluated the models.
    pub misses: u64,
    /// Entries currently cached.
    pub cached_entries: usize,
    /// Entries evicted since load.
    pub evictions: u64,
    /// New cache entries inserted since load (refreshes excluded).
    pub inserts: u64,
    /// Trained models in the shard's selector.
    pub models: usize,
}

/// A snapshot of the whole service's counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// One entry per loaded shard, in shard-key order.
    pub shards: Vec<ShardStats>,
}

impl ServeStats {
    /// Total cache hits across shards.
    pub fn hits(&self) -> u64 {
        self.shards.iter().map(|s| s.hits).sum()
    }

    /// Total cache misses across shards.
    pub fn misses(&self) -> u64 {
        self.shards.iter().map(|s| s.misses).sum()
    }

    /// Hits over total queries, `0.0` before any traffic.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

/// An in-process prediction service over loaded selector artifacts.
///
/// Shards are immutable once loaded (models are pure functions) and
/// routed through an epoch-swapped snapshot table: every publication
/// installs a fresh immutable map, and query threads revalidate a
/// thread-local handle with one atomic load per call — readers never
/// block, not even during artifact loading (the `snapshot` module
/// documents the protocol). All query-path mutation — the LRU cache,
/// hit/miss counters — is per-shard.
pub struct PredictionService {
    shards: snapshot::SnapshotCell,
    cache_capacity: usize,
    telemetry: OnceLock<telemetry::ServiceTelemetry>,
}

impl PredictionService {
    /// A service whose per-shard result caches hold `cache_capacity`
    /// grid cells each.
    pub fn new(cache_capacity: usize) -> PredictionService {
        PredictionService {
            shards: snapshot::SnapshotCell::new(),
            cache_capacity,
            telemetry: OnceLock::new(),
        }
    }

    /// Turn on rolling-window telemetry: every loaded shard (and every
    /// shard loaded later) gets its own windowed latency, queue-wait,
    /// cache-probe, and compute recorders, readable without pausing
    /// traffic via [`PredictionService::live_stats`]. Idempotent —
    /// returns `false` (and changes nothing) if telemetry was already
    /// enabled; the first configuration wins.
    pub fn enable_telemetry(&self, cfg: TelemetryConfig) -> bool {
        if self.telemetry.set(telemetry::ServiceTelemetry::new(cfg)).is_err() {
            return false;
        }
        if let Some(tel) = self.telemetry.get() {
            self.shards.with(|map| {
                for shard in map.values() {
                    shard.attach_telemetry(tel);
                }
            });
        }
        true
    }

    /// Whether [`PredictionService::enable_telemetry`] has run.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.get().is_some()
    }

    pub(crate) fn telemetry(&self) -> Option<&telemetry::ServiceTelemetry> {
        self.telemetry.get()
    }

    /// Rolling-window stats for every shard — p50/p95/p99 over the
    /// retained windows, request rate, windowed hit ratio, SLO
    /// burn-rate, and the queue-wait/cache-probe/compute split — read
    /// without stopping the world: query threads keep recording while
    /// the snapshot is taken. `None` until telemetry is enabled.
    ///
    /// Also publishes the merged windowed summary as gauges
    /// (`serve.window.p50_ns`, `serve.window.p99_ns`,
    /// `serve.window.rate_per_sec`, `serve.window.burn_rate`) so
    /// metric dumps and `mpcp report --require-metric` see them.
    pub fn live_stats(&self) -> Option<LiveStats> {
        let tel = self.telemetry.get()?;
        let now = tel.now_ns();
        let map = self.shards.arc();
        let mut shards: Vec<ShardLiveStats> = Vec::with_capacity(map.len());
        let mut merged = HistSnapshot::default();
        for (key, shard) in map.iter() {
            if let Some(st) = shard.telemetry.get() {
                let (stats, total) = st.live(key, now);
                merged.merge(&total);
                shards.push(stats);
            }
        }
        shards.sort_by(|a, b| a.key.cmp(&b.key));
        let stats = LiveStats {
            now_ns: now,
            slot_ns: tel.cfg.window.slot_ns,
            slots: tel.cfg.window.slots,
            epoch: self.shards.epoch(),
            shards,
            p50_ns: 0,
            p95_ns: 0,
            p99_ns: 0,
        }
        .finish(&merged);
        mpcp_obs::gauge_set!("serve.window.p50_ns", stats.p50_ns as f64);
        mpcp_obs::gauge_set!("serve.window.p99_ns", stats.p99_ns as f64);
        mpcp_obs::gauge_set!("serve.window.rate_per_sec", stats.rate_per_sec());
        mpcp_obs::gauge_set!("serve.window.burn_rate", stats.worst_burn_rate());
        Some(stats)
    }

    /// Load a saved artifact from disk and route its manifest's
    /// (collective, machine/library) to it. Replaces any shard already
    /// at that key (a model refresh), returning the routing key.
    pub fn load_artifact(&self, path: &Path) -> Result<ShardKey, ServeError> {
        let artifact = Selector::load(path)?;
        Ok(self.insert_artifact(artifact))
    }

    /// Register an already-decoded artifact (the file-free half of
    /// [`PredictionService::load_artifact`]).
    pub fn insert_artifact(&self, artifact: SelectorArtifact) -> ShardKey {
        let key = ShardKey::of_meta(&artifact.meta);
        let shard = Arc::new(Shard::new(artifact, self.cache_capacity));
        if let Some(tel) = self.telemetry.get() {
            shard.attach_telemetry(tel);
        }
        self.shards.update(|map| {
            map.insert(key.clone(), shard);
        });
        mpcp_obs::counter_add!("serve.shards_loaded", 1);
        key
    }

    /// Register several artifacts in **one** publication: a reader (or
    /// a [`PredictionService::snapshot`]) observes either none or all
    /// of them, never a partially-updated routing table. This is what
    /// coordinated multi-shard refreshes need — e.g. swapping the
    /// selectors for every collective of a machine at once.
    pub fn insert_artifacts(&self, artifacts: Vec<SelectorArtifact>) -> Vec<ShardKey> {
        let shards: Vec<(ShardKey, Arc<Shard>)> = artifacts
            .into_iter()
            .map(|a| {
                let key = ShardKey::of_meta(&a.meta);
                let shard = Arc::new(Shard::new(a, self.cache_capacity));
                if let Some(tel) = self.telemetry.get() {
                    shard.attach_telemetry(tel);
                }
                (key, shard)
            })
            .collect();
        let keys: Vec<ShardKey> = shards.iter().map(|(k, _)| k.clone()).collect();
        let loaded = shards.len() as u64;
        self.shards.update(|map| {
            for (key, shard) in shards {
                map.insert(key, shard);
            }
        });
        mpcp_obs::counter_add!("serve.shards_loaded", loaded);
        keys
    }

    /// Keys of all loaded shards, sorted.
    pub fn shard_keys(&self) -> Vec<ShardKey> {
        let mut keys: Vec<ShardKey> = self.shards.with(|map| map.keys().cloned().collect());
        keys.sort();
        keys
    }

    /// The manifest of the artifact behind `key`.
    pub fn meta(&self, key: &ShardKey) -> Result<ArtifactMeta, ServeError> {
        Ok(self.shard(key)?.meta.clone())
    }

    /// The training coverage of the artifact behind `key`.
    pub fn report(&self, key: &ShardKey) -> Result<TrainReport, ServeError> {
        Ok(self.shard(key)?.report.clone())
    }

    pub(crate) fn shard(&self, key: &ShardKey) -> Result<Arc<Shard>, ServeError> {
        self.shards
            .with(|map| map.get(key).cloned())
            .ok_or_else(|| ServeError::UnknownShard { key: key.clone() })
    }

    /// An immutable snapshot of the current routing table. Every read
    /// through one snapshot sees the same set of shards; a
    /// multi-artifact [`PredictionService::insert_artifacts`] is either
    /// fully visible in it or not at all.
    pub fn snapshot(&self) -> ServiceSnapshot {
        ServiceSnapshot { map: self.shards.arc() }
    }

    /// Answer an argmin query through the shard's LRU cache.
    ///
    /// Cache hits skip model evaluation entirely; misses run
    /// [`Selector::try_select`] and populate the cache. Identical to
    /// [`PredictionService::select_uncached`] result-wise — the cache
    /// stores exactly what the selector computed, keyed by grid cell.
    /// Shard routing is lock-free (no reader ever blocks on a writer);
    /// the whole query runs against one consistent snapshot.
    pub fn select(&self, key: &ShardKey, instance: &Instance) -> Result<Selection, ServeError> {
        self.shards.with(|map| match map.get(key) {
            Some(shard) => shard.select(instance),
            None => Err(ServeError::UnknownShard { key: key.clone() }),
        })
    }

    /// Answer an argmin query evaluating every model, bypassing (and
    /// not populating) the cache. The baseline for the cached path in
    /// `mpcp serve-bench`.
    pub fn select_uncached(
        &self,
        key: &ShardKey,
        instance: &Instance,
    ) -> Result<Selection, ServeError> {
        self.shards.with(|map| {
            let shard = map
                .get(key)
                .ok_or_else(|| ServeError::UnknownShard { key: key.clone() })?;
            shard.check_collective(instance)?;
            let t = mpcp_obs::maybe_now();
            let sel = shard.compute(instance)?;
            mpcp_obs::record_elapsed(shard.latency_metric, t);
            Ok(sel)
        })
    }

    /// Snapshot all per-shard counters and publish the global hit
    /// ratio gauge.
    pub fn stats(&self) -> ServeStats {
        let map = self.shards.arc();
        let mut shards: Vec<ShardStats> = map
            .iter()
            .map(|(key, s)| {
                let cache = lock(&s.cache);
                ShardStats {
                    key: key.clone(),
                    hits: s.hits.load(Ordering::Relaxed),
                    misses: s.misses.load(Ordering::Relaxed),
                    cached_entries: cache.len(),
                    evictions: cache.evictions(),
                    inserts: cache.inserts(),
                    models: s.selector.model_count(),
                }
            })
            .collect();
        shards.sort_by(|a, b| a.key.cmp(&b.key));
        let stats = ServeStats { shards };
        mpcp_obs::gauge_set!("serve.cache_hit_ratio", stats.hit_ratio());
        stats
    }
}

/// An immutable view of a [`PredictionService`]'s routing table at one
/// publication epoch (see [`PredictionService::snapshot`]).
///
/// Queries through a snapshot share the per-shard LRU caches and
/// hit/miss counters with the live service — only the *routing* is
/// frozen.
pub struct ServiceSnapshot {
    map: Arc<snapshot::ShardMap>,
}

impl ServiceSnapshot {
    /// Keys of the shards in this snapshot, sorted.
    pub fn shard_keys(&self) -> Vec<ShardKey> {
        let mut keys: Vec<ShardKey> = self.map.keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Shards in this snapshot.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the snapshot holds no shards.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The manifest of the artifact behind `key`, if present.
    pub fn meta(&self, key: &ShardKey) -> Option<ArtifactMeta> {
        self.map.get(key).map(|s| s.meta.clone())
    }

    /// [`PredictionService::select`] against this snapshot's routing.
    pub fn select(&self, key: &ShardKey, instance: &Instance) -> Result<Selection, ServeError> {
        match self.map.get(key) {
            Some(shard) => shard.select(instance),
            None => Err(ServeError::UnknownShard { key: key.clone() }),
        }
    }

    pub(crate) fn shard(&self, key: &ShardKey) -> Option<&Arc<Shard>> {
        self.map.get(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_shard_is_a_typed_error() {
        let svc = PredictionService::new(16);
        let key = ShardKey { coll: Collective::Bcast, scope: "nowhere/NoMPI".into() };
        let inst = Instance::new(Collective::Bcast, 64, 2, 2);
        let err = svc.select(&key, &inst).unwrap_err();
        assert_eq!(err, ServeError::UnknownShard { key: key.clone() });
        assert!(format!("{err}").contains("no model loaded"));
        assert!(svc.shard_keys().is_empty());
    }

    #[test]
    fn missing_artifact_file_is_an_io_error() {
        let svc = PredictionService::new(16);
        let err = svc
            .load_artifact(Path::new("/nonexistent/path/model.mpcp"))
            .unwrap_err();
        assert!(matches!(err, ServeError::Artifact(ArtifactError::Io { .. })));
    }

    #[test]
    fn stats_start_empty() {
        let svc = PredictionService::new(16);
        let stats = svc.stats();
        assert_eq!(stats.hits() + stats.misses(), 0);
        assert_eq!(stats.hit_ratio(), 0.0);
    }
}
