//! Live serving telemetry: per-shard rolling-window recorders and the
//! [`LiveStats`] view behind `PredictionService::live_stats()`.
//!
//! The cumulative counters in [`crate::PredictionService::stats`]
//! answer "what happened since load"; an operator watching a server
//! needs "what is p99 *right now*". Each shard carries (once
//! [`crate::PredictionService::enable_telemetry`] runs) a
//! [`ShardTelemetry`]: rolling-window histograms over an injectable
//! [`Clock`] for request latency and the batch-path attribution split
//! (queue-wait vs cache-probe vs compute), plus windowed hit/miss
//! counters. Recording is lock-free (per-thread rings in
//! [`mpcp_obs::window`]) and happens *outside* the shard's cache
//! mutex, so telemetry never extends the critical section the cached
//! hot path serializes on.
//!
//! Reading is non-quiescent by construction: [`LiveStats`] merges the
//! in-range windows while writers keep recording — no lock is taken
//! that a query thread could block on.

use std::fmt::Write as _;

use mpcp_obs::clock::Clock;
use mpcp_obs::export::json_string;
use mpcp_obs::metrics::HistSnapshot;
use mpcp_obs::window::{WindowConfig, WindowedCounter, WindowedHistogram};

use crate::ShardKey;

/// Knobs for [`crate::PredictionService::enable_telemetry`].
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Rolling-window geometry (default: 1s windows, 60 retained).
    pub window: WindowConfig,
    /// Latency objective for the burn-rate: the fraction of windows
    /// whose p99 exceeds this is reported per shard.
    pub slo_ns: u64,
    /// Time source. [`Clock::wall`] in production; [`Clock::manual`]
    /// makes window rolls deterministic in tests.
    pub clock: Clock,
    /// Scalar-path sampling period: record every Nth scalar request
    /// (with weight N, so windowed counts and rates stay unbiased).
    /// The scalar cache hit is a few hundred nanoseconds of work; two
    /// clock reads plus two ring records per hit would cost a double-
    /// digit share of it, so the fast path pays one thread-local tick
    /// per request instead and only the sampled ones pay full price.
    /// The batch path always records exactly (its per-job cost is
    /// amortized by queueing). `1` records everything — what the
    /// deterministic tests use; values are floored at 1.
    pub scalar_sample: u32,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            window: WindowConfig::default(),
            slo_ns: 10_000_000, // 10ms: generous for an in-process argmin
            clock: Clock::wall(),
            scalar_sample: 64,
        }
    }
}

thread_local! {
    /// Per-thread scalar-path sampling tick, shared across shards: one
    /// `Cell` bump per request instead of a contended shared counter.
    /// Which shard a sampled event lands on is proportional to that
    /// shard's share of the thread's traffic, so per-shard windowed
    /// counts stay unbiased in expectation.
    static SCALAR_TICK: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Service-wide telemetry state: the shared config every shard's
/// recorders are built from.
pub(crate) struct ServiceTelemetry {
    pub(crate) cfg: TelemetryConfig,
}

impl ServiceTelemetry {
    pub(crate) fn new(cfg: TelemetryConfig) -> ServiceTelemetry {
        ServiceTelemetry { cfg }
    }

    pub(crate) fn now_ns(&self) -> u64 {
        self.cfg.clock.now_ns()
    }

    pub(crate) fn shard_telemetry(&self) -> ShardTelemetry {
        ShardTelemetry {
            clock: self.cfg.clock.clone(),
            slo_ns: self.cfg.slo_ns,
            scalar_sample: self.cfg.scalar_sample.max(1),
            latency: WindowedHistogram::new(self.cfg.window),
            queue_wait: WindowedHistogram::new(self.cfg.window),
            cache_probe: WindowedHistogram::new(self.cfg.window),
            compute: WindowedHistogram::new(self.cfg.window),
            hits: WindowedCounter::new(self.cfg.window),
            misses: WindowedCounter::new(self.cfg.window),
        }
    }
}

/// One shard's rolling-window recorders. All record methods are called
/// from query threads outside any shard lock.
pub(crate) struct ShardTelemetry {
    clock: Clock,
    slo_ns: u64,
    /// Scalar-path sampling period (>= 1; see [`TelemetryConfig`]).
    scalar_sample: u32,
    /// End-to-end request latency (cache hits and misses; batch-path
    /// requests include their queue wait).
    latency: WindowedHistogram,
    /// Batch path: submit → dequeue.
    queue_wait: WindowedHistogram,
    /// Cache-probe portion (scalar misses; per-group on the batch path).
    cache_probe: WindowedHistogram,
    /// Model-evaluation portion (scalar misses; per-group batch calls).
    compute: WindowedHistogram,
    hits: WindowedCounter,
    misses: WindowedCounter,
}

impl ShardTelemetry {
    #[inline]
    pub(crate) fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Scalar-path sampling decision, made *before* any clock read:
    /// the weight this request's telemetry should carry, or 0 to skip
    /// recording entirely (the common case — one thread-local tick).
    #[inline]
    pub(crate) fn scalar_weight(&self) -> u64 {
        if self.scalar_sample <= 1 {
            return 1;
        }
        let due = SCALAR_TICK.with(|t| {
            let n = t.get().wrapping_add(1);
            t.set(if n >= self.scalar_sample { 0 } else { n });
            n >= self.scalar_sample
        });
        if due {
            u64::from(self.scalar_sample)
        } else {
            0
        }
    }

    /// A sampled cache hit that started at `start_ns` and finished
    /// now, standing for `weight` hits.
    #[inline]
    pub(crate) fn record_hit(&self, start_ns: u64, weight: u64) {
        let now = self.clock.now_ns();
        self.latency.record_n(now, now.saturating_sub(start_ns), weight);
        self.hits.add(now, weight);
    }

    /// A sampled scalar-path miss standing for `weight` misses: probe
    /// ended at `probe_ns`, compute at `end_ns`.
    pub(crate) fn record_scalar_miss(&self, start_ns: u64, probe_ns: u64, end_ns: u64, weight: u64) {
        self.cache_probe.record_n(probe_ns, probe_ns.saturating_sub(start_ns), weight);
        self.compute.record_n(end_ns, end_ns.saturating_sub(probe_ns), weight);
        self.latency.record_n(end_ns, end_ns.saturating_sub(start_ns), weight);
        self.misses.add(end_ns, weight);
    }

    /// Batch path: one job waited `wait_ns` in the queue.
    #[inline]
    pub(crate) fn record_queue_wait(&self, now_ns: u64, wait_ns: u64) {
        self.queue_wait.record(now_ns, wait_ns);
    }

    /// Batch path: one group's cache-probe pass took `dur_ns`.
    pub(crate) fn record_batch_probe(&self, now_ns: u64, dur_ns: u64) {
        self.cache_probe.record(now_ns, dur_ns);
    }

    /// Batch path: one group's `select_batch` call took `dur_ns`.
    pub(crate) fn record_batch_compute(&self, now_ns: u64, dur_ns: u64) {
        self.compute.record(now_ns, dur_ns);
    }

    /// Batch path: a request resolved (hit or miss) with end-to-end
    /// latency `latency_ns` (submit → reply).
    pub(crate) fn record_batch_done(&self, now_ns: u64, latency_ns: u64, hit: bool) {
        self.latency.record(now_ns, latency_ns);
        if hit {
            self.hits.add(now_ns, 1);
        } else {
            self.misses.add(now_ns, 1);
        }
    }

    /// Windowed stats as of `now_ns`. Also returns the merged latency
    /// histogram so callers can aggregate across shards exactly.
    pub(crate) fn live(&self, key: &ShardKey, now_ns: u64) -> (ShardLiveStats, HistSnapshot) {
        let latency = self.latency.snapshot(now_ns);
        let total = latency.total();
        let hits = self.hits.snapshot(now_ns).total();
        let misses = self.misses.snapshot(now_ns).total();
        let requests = hits + misses;
        let queue = self.queue_wait.snapshot(now_ns).total();
        let probe = self.cache_probe.snapshot(now_ns).total();
        let compute = self.compute.snapshot(now_ns).total();
        let stats = ShardLiveStats {
            key: key.clone(),
            requests,
            rate_per_sec: latency.rate_per_sec(),
            hits,
            misses,
            hit_ratio: if requests == 0 { 0.0 } else { hits as f64 / requests as f64 },
            p50_ns: total.quantile(0.50).unwrap_or(0),
            p95_ns: total.quantile(0.95).unwrap_or(0),
            p99_ns: total.quantile(0.99).unwrap_or(0),
            max_ns: if total.count() > 0 { total.max } else { 0 },
            mean_ns: total.mean(),
            burn_rate: latency.burn_rate(0.99, self.slo_ns),
            slo_ns: self.slo_ns,
            queue_wait_p50_ns: queue.quantile(0.50).unwrap_or(0),
            queue_wait_p99_ns: queue.quantile(0.99).unwrap_or(0),
            cache_probe_p99_ns: probe.quantile(0.99).unwrap_or(0),
            compute_p50_ns: compute.quantile(0.50).unwrap_or(0),
            compute_p99_ns: compute.quantile(0.99).unwrap_or(0),
        };
        (stats, total)
    }
}

/// One shard's rolling-window view (see [`LiveStats`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ShardLiveStats {
    /// The shard's routing key.
    pub key: ShardKey,
    /// Requests in the retained windows (hits + misses).
    pub requests: u64,
    /// Request rate over the retained span.
    pub rate_per_sec: f64,
    /// Windowed cache hits.
    pub hits: u64,
    /// Windowed cache misses.
    pub misses: u64,
    /// Windowed hit ratio (0 before any traffic).
    pub hit_ratio: f64,
    /// Rolling latency quantiles (interpolated, clamped to observed
    /// min/max — see `HistSnapshot::quantile`).
    pub p50_ns: u64,
    /// Rolling p95.
    pub p95_ns: u64,
    /// Rolling p99.
    pub p99_ns: u64,
    /// Exact slowest request in the retained windows.
    pub max_ns: u64,
    /// Rolling mean latency.
    pub mean_ns: f64,
    /// Fraction of retained windows whose p99 breached [`Self::slo_ns`].
    pub burn_rate: f64,
    /// The latency objective the burn rate is measured against.
    pub slo_ns: u64,
    /// Batch-path queue wait, p50.
    pub queue_wait_p50_ns: u64,
    /// Batch-path queue wait, p99.
    pub queue_wait_p99_ns: u64,
    /// Cache-probe portion, p99.
    pub cache_probe_p99_ns: u64,
    /// Compute (model evaluation) portion, p50.
    pub compute_p50_ns: u64,
    /// Compute portion, p99.
    pub compute_p99_ns: u64,
}

impl ShardLiveStats {
    fn to_json(&self) -> String {
        format!(
            "{{\"key\":{},\"requests\":{},\"rate_per_sec\":{:.1},\"hits\":{},\"misses\":{},\
             \"hit_ratio\":{:.4},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{},\
             \"mean_ns\":{:.1},\"burn_rate\":{:.4},\"slo_ns\":{},\"queue_wait_p50_ns\":{},\
             \"queue_wait_p99_ns\":{},\"cache_probe_p99_ns\":{},\"compute_p50_ns\":{},\
             \"compute_p99_ns\":{}}}",
            json_string(&self.key.to_string()),
            self.requests,
            self.rate_per_sec,
            self.hits,
            self.misses,
            self.hit_ratio,
            self.p50_ns,
            self.p95_ns,
            self.p99_ns,
            self.max_ns,
            self.mean_ns,
            self.burn_rate,
            self.slo_ns,
            self.queue_wait_p50_ns,
            self.queue_wait_p99_ns,
            self.cache_probe_p99_ns,
            self.compute_p50_ns,
            self.compute_p99_ns,
        )
    }
}

/// A non-quiescent, point-in-time view of every shard's rolling
/// windows, from `PredictionService::live_stats()`. Writers keep
/// recording while this is taken.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LiveStats {
    /// Clock reading the snapshot was taken at.
    pub now_ns: u64,
    /// Window width of the underlying recorders.
    pub slot_ns: u64,
    /// Windows retained.
    pub slots: usize,
    /// Routing-table publication epoch at snapshot time.
    pub epoch: u64,
    /// Per-shard windowed stats, in shard-key order.
    pub shards: Vec<ShardLiveStats>,
    /// All shards' rolling p50 (merged exactly across shards).
    pub p50_ns: u64,
    /// Merged rolling p95.
    pub p95_ns: u64,
    /// Merged rolling p99.
    pub p99_ns: u64,
}

impl LiveStats {
    pub(crate) fn finish(mut self, merged: &HistSnapshot) -> LiveStats {
        self.p50_ns = merged.quantile(0.50).unwrap_or(0);
        self.p95_ns = merged.quantile(0.95).unwrap_or(0);
        self.p99_ns = merged.quantile(0.99).unwrap_or(0);
        self
    }

    /// Total windowed requests across shards.
    pub fn requests(&self) -> u64 {
        self.shards.iter().map(|s| s.requests).sum()
    }

    /// Summed request rate across shards.
    pub fn rate_per_sec(&self) -> f64 {
        self.shards.iter().map(|s| s.rate_per_sec).sum()
    }

    /// Worst per-shard burn rate (0 when no shard has traffic).
    pub fn worst_burn_rate(&self) -> f64 {
        self.shards.iter().map(|s| s.burn_rate).fold(0.0, f64::max)
    }

    /// Overall windowed hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        let hits: u64 = self.shards.iter().map(|s| s.hits).sum();
        let total = self.requests();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Machine-readable form (parsed back by `mpcp top` with
    /// `mpcp_obs::json`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.shards.len() * 256);
        let _ = write!(
            out,
            "{{\"now_ns\":{},\"slot_ns\":{},\"slots\":{},\"epoch\":{},\"requests\":{},\
             \"rate_per_sec\":{:.1},\"hit_ratio\":{:.4},\"p50_ns\":{},\"p95_ns\":{},\
             \"p99_ns\":{},\"worst_burn_rate\":{:.4},\"shards\":[",
            self.now_ns,
            self.slot_ns,
            self.slots,
            self.epoch,
            self.requests(),
            self.rate_per_sec(),
            self.hit_ratio(),
            self.p50_ns,
            self.p95_ns,
            self.p99_ns,
            self.worst_burn_rate(),
        );
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_json());
        }
        out.push_str("]}");
        out
    }
}
