//! `mpcp served`: a zero-dependency TCP daemon over [`PredictionService`].
//!
//! The wire protocol reuses the artifact codec's framing
//! ([`mpcp_ml::persist`]): every message is a `MAGIC`/version/kind/
//! length/FNV-checksum frame whose payload is a [`Persist`]-encoded
//! request or response. Requests carry a client-chosen `req_id` echoed
//! in the reply, and a connection may pipeline any number of requests;
//! replies come back in request order.
//!
//! Overload never queues without bound and never drops a connection:
//! admission is the *bounded* [`BatchServer`] queue, and a request the
//! queue refuses is **shed** — answered synchronously from the injected
//! fallback ([`ShedFn`], the library-default decision logic) with the
//! reply marked `degraded`. Only when even shedding is saturated
//! (`max_shed_inflight` concurrent fallback computations) does the
//! daemon return a typed `overloaded` error, still a well-formed reply
//! on the wire.
//!
//! Each connection gets a reader thread (decodes frames, admits or
//! sheds) and a writer thread (resolves batch tickets with a deadline,
//! encodes replies); an idle connection is closed after
//! `idle_timeout`. Shutdown — the wire `shutdown` op or
//! [`NetServer::stop`] — stops accepting, half-closes every
//! connection's read side, drains every accepted request to a written
//! reply, and joins all threads.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mpcp_collectives::Collective;
use mpcp_core::{Instance, Selection};
use mpcp_ml::persist::{
    check_frame_payload, encode_framed, read_frame_header, ByteReader, ByteWriter, CodecError,
    Persist, FRAME_HEADER_LEN, KIND_NET_REQUEST, KIND_NET_RESPONSE,
};

use crate::batch::{BatchConfig, BatchServer, Ticket};
use crate::{lock, PredictionService, ServeError, ShardKey};

/// Hard cap on a single message payload. Requests and responses are a
/// few dozen bytes plus a scope string; anything near this limit is a
/// corrupt or hostile frame and closes the connection.
pub const MAX_PAYLOAD: usize = 64 * 1024;

/// Request op byte: select a collective algorithm.
pub const OP_SELECT: u8 = 1;
/// Request op byte: drain and stop the daemon.
pub const OP_SHUTDOWN: u8 = 2;

/// Response status byte: computed selection.
pub const STATUS_OK: u8 = 0;
/// Response status byte: shed — degraded fallback selection.
pub const STATUS_SHED: u8 = 1;
/// Response status byte: typed error (code + message).
pub const STATUS_ERR: u8 = 2;
/// Response status byte: shutdown acknowledged.
pub const STATUS_SHUTDOWN_ACK: u8 = 3;

/// Wire error code for [`ServeError::UnknownShard`].
pub const ERR_UNKNOWN_SHARD: u8 = 1;
/// Wire error code for [`ServeError::CollectiveMismatch`].
pub const ERR_COLLECTIVE_MISMATCH: u8 = 2;
/// Wire error code for [`ServeError::NoFinitePrediction`].
pub const ERR_NO_FINITE_PREDICTION: u8 = 3;
/// Wire error code for [`ServeError::Artifact`].
pub const ERR_ARTIFACT: u8 = 4;
/// Wire error code for [`ServeError::Disconnected`].
pub const ERR_DISCONNECTED: u8 = 5;
/// Wire error code for [`ServeError::Overloaded`].
pub const ERR_OVERLOADED: u8 = 6;
/// Wire error code for [`ServeError::Timeout`].
pub const ERR_TIMEOUT: u8 = 7;

fn error_code(e: &ServeError) -> u8 {
    match e {
        ServeError::UnknownShard { .. } => ERR_UNKNOWN_SHARD,
        ServeError::CollectiveMismatch { .. } => ERR_COLLECTIVE_MISMATCH,
        ServeError::NoFinitePrediction { .. } => ERR_NO_FINITE_PREDICTION,
        ServeError::Artifact(_) => ERR_ARTIFACT,
        ServeError::Disconnected => ERR_DISCONNECTED,
        ServeError::Overloaded => ERR_OVERLOADED,
        ServeError::Timeout => ERR_TIMEOUT,
    }
}

/// One request frame payload.
#[derive(Clone, Debug, PartialEq)]
pub enum NetRequest {
    /// Route `instance` to the shard under `key` and select.
    Select {
        /// Client-chosen correlation id, echoed in the reply.
        req_id: u64,
        /// Shard the request is routed to.
        key: ShardKey,
        /// The query.
        instance: Instance,
    },
    /// Drain and stop the daemon (acknowledged before the drain).
    Shutdown {
        /// Client-chosen correlation id, echoed in the ack.
        req_id: u64,
    },
}

fn put_collective(w: &mut ByteWriter, c: Collective) {
    // Same representation as `ArtifactMeta`: the index in the stable,
    // registry-ordered `Collective::ALL`.
    let idx = Collective::ALL.iter().position(|x| *x == c).unwrap_or(usize::MAX);
    w.put_len(idx);
}

fn get_collective(r: &mut ByteReader<'_>) -> Result<Collective, CodecError> {
    let idx = r.get_len(0)?;
    Collective::ALL
        .get(idx)
        .copied()
        .ok_or_else(|| CodecError::invalid(format!("collective index {idx}")))
}

impl Persist for NetRequest {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            NetRequest::Select { req_id, key, instance } => {
                w.put_u64(*req_id);
                w.put_u8(OP_SELECT);
                put_collective(w, key.coll);
                w.put_str(&key.scope);
                put_collective(w, instance.coll);
                w.put_u64(instance.msize);
                w.put_u32(instance.nodes);
                w.put_u32(instance.ppn);
            }
            NetRequest::Shutdown { req_id } => {
                w.put_u64(*req_id);
                w.put_u8(OP_SHUTDOWN);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<NetRequest, CodecError> {
        let req_id = r.get_u64()?;
        match r.get_u8()? {
            OP_SELECT => {
                let key_coll = get_collective(r)?;
                let scope = r.get_string()?;
                let coll = get_collective(r)?;
                let msize = r.get_u64()?;
                let nodes = r.get_u32()?;
                let ppn = r.get_u32()?;
                Ok(NetRequest::Select {
                    req_id,
                    key: ShardKey { coll: key_coll, scope },
                    instance: Instance::new(coll, msize, nodes, ppn),
                })
            }
            OP_SHUTDOWN => Ok(NetRequest::Shutdown { req_id }),
            op => Err(CodecError::invalid(format!("request op {op}"))),
        }
    }
}

/// One response frame payload.
#[derive(Clone, Debug, PartialEq)]
pub enum NetResponse {
    /// Computed selection for the echoed request.
    Ok {
        /// The request's correlation id.
        req_id: u64,
        /// The selection (never degraded on this status).
        selection: Selection,
    },
    /// The request was shed: a degraded fallback selection.
    Shed {
        /// The request's correlation id.
        req_id: u64,
        /// The fallback selection (`degraded` is always true).
        selection: Selection,
    },
    /// The request failed with a typed error.
    Err {
        /// The request's correlation id.
        req_id: u64,
        /// Stable wire error code (`ERR_*`).
        code: u8,
        /// Human-readable rendering of the server-side error.
        message: String,
    },
    /// Shutdown acknowledged; the daemon is draining.
    ShutdownAck {
        /// The request's correlation id.
        req_id: u64,
    },
}

impl NetResponse {
    /// The echoed correlation id.
    pub fn req_id(&self) -> u64 {
        match self {
            NetResponse::Ok { req_id, .. }
            | NetResponse::Shed { req_id, .. }
            | NetResponse::Err { req_id, .. }
            | NetResponse::ShutdownAck { req_id } => *req_id,
        }
    }
}

fn put_selection(w: &mut ByteWriter, s: &Selection) {
    w.put_u32(s.uid);
    match s.predicted_us {
        None => w.put_u8(0),
        Some(p) => {
            w.put_u8(1);
            w.put_f64(p);
        }
    }
    w.put_bool(s.degraded);
}

fn get_selection(r: &mut ByteReader<'_>) -> Result<Selection, CodecError> {
    let uid = r.get_u32()?;
    let predicted_us = match r.get_u8()? {
        0 => None,
        1 => Some(r.get_f64()?),
        b => return Err(CodecError::invalid(format!("prediction tag {b}"))),
    };
    let degraded = r.get_bool()?;
    Ok(Selection { uid, predicted_us, degraded })
}

impl Persist for NetResponse {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            NetResponse::Ok { req_id, selection } => {
                w.put_u64(*req_id);
                w.put_u8(STATUS_OK);
                put_selection(w, selection);
            }
            NetResponse::Shed { req_id, selection } => {
                w.put_u64(*req_id);
                w.put_u8(STATUS_SHED);
                put_selection(w, selection);
            }
            NetResponse::Err { req_id, code, message } => {
                w.put_u64(*req_id);
                w.put_u8(STATUS_ERR);
                w.put_u8(*code);
                w.put_str(message);
            }
            NetResponse::ShutdownAck { req_id } => {
                w.put_u64(*req_id);
                w.put_u8(STATUS_SHUTDOWN_ACK);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<NetResponse, CodecError> {
        let req_id = r.get_u64()?;
        match r.get_u8()? {
            STATUS_OK => Ok(NetResponse::Ok { req_id, selection: get_selection(r)? }),
            STATUS_SHED => Ok(NetResponse::Shed { req_id, selection: get_selection(r)? }),
            STATUS_ERR => {
                let code = r.get_u8()?;
                let message = r.get_string()?;
                Ok(NetResponse::Err { req_id, code, message })
            }
            STATUS_SHUTDOWN_ACK => Ok(NetResponse::ShutdownAck { req_id }),
            s => Err(CodecError::invalid(format!("response status {s}"))),
        }
    }
}

/// Why a client call failed.
#[derive(Clone, Debug, PartialEq)]
pub enum NetError {
    /// A socket operation failed (connect, read, write, or EOF).
    Io(String),
    /// The peer sent bytes this build cannot decode.
    Codec(CodecError),
    /// The server answered with a typed error (`ERR_*` code).
    Remote {
        /// Stable wire error code.
        code: u8,
        /// Server-side error message.
        message: String,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(m) => write!(f, "socket error: {m}"),
            NetError::Codec(e) => write!(f, "wire decode error: {e}"),
            NetError::Remote { code, message } => {
                write!(f, "server error (code {code}): {message}")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> NetError {
        NetError::Codec(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> NetError {
        NetError::Io(e.to_string())
    }
}

// ---------------------------------------------------------------------
// Framed stream I/O (shared by client and server)
// ---------------------------------------------------------------------

/// How a blocking frame read ended.
enum ReadFrame<T> {
    /// A whole frame arrived and decoded.
    Msg(T),
    /// The peer closed (EOF at a frame boundary).
    Eof,
    /// The read timed out with the connection idle or mid-frame.
    Idle,
    /// The stream is unusable (io error or undecodable bytes).
    Broken,
}

/// Read one framed message of `kind` from `stream`. Any outcome other
/// than `Msg` means the caller should close the connection.
fn read_frame<T: Persist>(stream: &mut TcpStream, kind: u8) -> ReadFrame<T> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    match stream.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) => {
            return match e.kind() {
                std::io::ErrorKind::UnexpectedEof => ReadFrame::Eof,
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ReadFrame::Idle,
                _ => ReadFrame::Broken,
            };
        }
    }
    let h = match read_frame_header(&header, kind) {
        Ok(h) => h,
        Err(_) => return ReadFrame::Broken,
    };
    if h.payload_len > MAX_PAYLOAD {
        return ReadFrame::Broken;
    }
    let mut payload = vec![0u8; h.payload_len];
    match stream.read_exact(&mut payload) {
        Ok(()) => {}
        Err(e) => {
            return match e.kind() {
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ReadFrame::Idle,
                _ => ReadFrame::Broken,
            };
        }
    }
    if check_frame_payload(&h, &payload).is_err() {
        return ReadFrame::Broken;
    }
    let mut r = ByteReader::new(&payload);
    match T::decode(&mut r) {
        Ok(msg) if r.remaining() == 0 => ReadFrame::Msg(msg),
        _ => ReadFrame::Broken,
    }
}

/// Client-side frame read mapping every failure to a typed error.
fn read_frame_client<T: Persist>(stream: &mut TcpStream, kind: u8) -> Result<T, NetError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    stream.read_exact(&mut header)?;
    let h = read_frame_header(&header, kind)?;
    if h.payload_len > MAX_PAYLOAD {
        return Err(NetError::Codec(CodecError::invalid(format!(
            "payload length {} exceeds the {MAX_PAYLOAD}-byte cap",
            h.payload_len
        ))));
    }
    let mut payload = vec![0u8; h.payload_len];
    stream.read_exact(&mut payload)?;
    check_frame_payload(&h, &payload)?;
    let mut r = ByteReader::new(&payload);
    let msg = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(NetError::Codec(CodecError::invalid(format!(
            "{} undecoded byte(s) at end of message",
            r.remaining()
        ))));
    }
    Ok(msg)
}

fn write_frame<T: Persist>(stream: &mut TcpStream, kind: u8, msg: &T) -> std::io::Result<()> {
    stream.write_all(&encode_framed(kind, msg))
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

/// Fallback used when the admission queue refuses a request: compute a
/// cheap library-default selection for the instance (`None` when the
/// shard key is unknown). The daemon marks the reply `degraded`.
pub type ShedFn = Arc<dyn Fn(&ShardKey, &Instance) -> Option<Selection> + Send + Sync>;

/// Daemon knobs.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Bind address (`127.0.0.1:0` picks a free port; see
    /// [`NetServer::local_addr`]).
    pub addr: String,
    /// Batch-server pool feeding [`PredictionService`]; its `max_queue`
    /// is the admission bound that triggers shedding.
    pub batch: BatchConfig,
    /// Close a connection that sends nothing for this long.
    pub idle_timeout: Duration,
    /// Deadline for a batch worker to answer an admitted request;
    /// beyond it the client gets a typed `timeout` error.
    pub reply_timeout: Duration,
    /// Concurrent shed (fallback) computations beyond which the daemon
    /// answers `overloaded` instead of shedding.
    pub max_shed_inflight: usize,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            batch: BatchConfig::default(),
            idle_timeout: Duration::from_secs(300),
            reply_timeout: Duration::from_secs(30),
            max_shed_inflight: 64,
        }
    }
}

/// Point-in-time daemon counters ([`NetServer::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// Select requests decoded off the wire.
    pub requests: u64,
    /// Requests admitted to the batch queue.
    pub accepted: u64,
    /// Requests answered by the degraded fallback.
    pub shed: u64,
    /// Requests refused with a typed `overloaded` error.
    pub overloaded: u64,
    /// Error replies written (includes `overloaded` and timeouts).
    pub errors: u64,
    /// Connections currently open.
    pub connections_open: u64,
    /// Connections accepted since start.
    pub connections_total: u64,
    /// Connections closed by the idle timeout.
    pub idle_closed: u64,
    /// Requests received but not yet answered.
    pub inflight: u64,
}

struct NetShared {
    batch: BatchServer,
    shed: ShedFn,
    idle_timeout: Duration,
    reply_timeout: Duration,
    max_shed_inflight: usize,
    local_addr: SocketAddr,
    stop: AtomicBool,
    conns: Mutex<HashMap<u64, TcpStream>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    next_conn: AtomicU64,
    requests: AtomicU64,
    accepted: AtomicU64,
    shed_n: AtomicU64,
    overloaded: AtomicU64,
    errors: AtomicU64,
    connections_open: AtomicU64,
    connections_total: AtomicU64,
    idle_closed: AtomicU64,
    inflight: AtomicU64,
    shed_inflight: AtomicU64,
}

impl NetShared {
    fn stats(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            // ORDERING: Relaxed throughout — a point-in-time counter
            // snapshot; the fields need no mutual consistency and no
            // data is published under any of them.
            requests: self.requests.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            shed: self.shed_n.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            connections_open: self.connections_open.load(Ordering::Relaxed),
            connections_total: self.connections_total.load(Ordering::Relaxed),
            idle_closed: self.idle_closed.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed),
        }
    }

    /// Initiate shutdown: flip the flag and poke the accept loop with a
    /// throwaway connection so it observes the flag.
    fn begin_stop(&self) {
        // ORDERING: AcqRel — the swap both publishes "stopping" to the
        // accept loop's Acquire loads and makes the first caller's
        // pre-stop writes visible to whoever observes the flag; the
        // swap also elects exactly one thread to poke the listener.
        if !self.stop.swap(true, Ordering::AcqRel) {
            let _ = TcpStream::connect(self.local_addr);
        }
    }
}

/// What the connection writer sends next, in request order.
enum WriterItem {
    /// An admitted request: resolve the ticket under the reply deadline.
    Pending { req_id: u64, ticket: Ticket, t0: Instant },
    /// An already-resolved reply (shed, error, or shutdown ack).
    Ready { resp: NetResponse, t0: Instant },
}

/// The serving daemon. Start with [`NetServer::start`]; stop with the
/// wire `shutdown` op or [`NetServer::stop`], then [`NetServer::join`].
pub struct NetServer {
    shared: Arc<NetShared>,
    accept: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl NetServer {
    /// Bind `cfg.addr` and start serving `service`, shedding refused
    /// requests through `shed`.
    pub fn start(
        service: Arc<PredictionService>,
        shed: ShedFn,
        cfg: NetConfig,
    ) -> std::io::Result<NetServer> {
        NetServer::start_inner(service, shed, cfg, None)
    }

    /// [`NetServer::start`] with a test-only batch-worker gate (see
    /// `BatchServer::start_with_gate`) so overload tests can wedge the
    /// workers deterministically.
    #[doc(hidden)]
    pub fn start_with_gate(
        service: Arc<PredictionService>,
        shed: ShedFn,
        cfg: NetConfig,
        gate: Arc<dyn Fn() + Send + Sync>,
    ) -> std::io::Result<NetServer> {
        NetServer::start_inner(service, shed, cfg, Some(gate))
    }

    fn start_inner(
        service: Arc<PredictionService>,
        shed: ShedFn,
        cfg: NetConfig,
        gate: Option<Arc<dyn Fn() + Send + Sync>>,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let batch = match gate {
            None => BatchServer::start(service, cfg.batch),
            Some(g) => BatchServer::start_with_gate(service, cfg.batch, g),
        };
        let shared = Arc::new(NetShared {
            batch,
            shed,
            idle_timeout: cfg.idle_timeout,
            reply_timeout: cfg.reply_timeout,
            max_shed_inflight: cfg.max_shed_inflight,
            local_addr,
            stop: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            handles: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            shed_n: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            connections_open: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            idle_closed: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            shed_inflight: AtomicU64::new(0),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mpcp-net-accept".to_string())
                .spawn(move || accept_loop(&shared, &listener))?
        };
        Ok(NetServer { shared, accept: Some(accept), local_addr })
    }

    /// The bound address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// False once shutdown has been initiated (wire op or [`stop`]).
    ///
    /// [`stop`]: NetServer::stop
    pub fn running(&self) -> bool {
        // ORDERING: Acquire pairs with `begin_stop`'s AcqRel swap.
        !self.shared.stop.load(Ordering::Acquire)
    }

    /// Current counters.
    pub fn stats(&self) -> NetStatsSnapshot {
        self.shared.stats()
    }

    /// Initiate shutdown without blocking (idempotent).
    pub fn stop(&self) {
        self.shared.begin_stop();
    }

    /// Stop accepting, drain every accepted request to a written reply,
    /// join all threads, and return the final counters.
    pub fn join(mut self) -> NetStatsSnapshot {
        self.stop_and_join_threads();
        self.shared.stats()
        // Dropping `self` here releases the last `Arc<NetShared>` (all
        // connection threads are joined), which drops the inner
        // `BatchServer` — draining its queue and joining its workers.
    }

    fn stop_and_join_threads(&mut self) {
        self.shared.begin_stop();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Half-close the read side of every live connection: readers
        // see EOF and exit; writers first drain the replies already
        // admitted (the clean part of the drain), then close.
        for (_, s) in lock(&self.shared.conns).drain() {
            let _ = s.shutdown(Shutdown::Read);
        }
        let handles: Vec<JoinHandle<()>> = lock(&self.shared.handles).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_and_join_threads();
    }
}

fn accept_loop(shared: &Arc<NetShared>, listener: &TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _peer)) => s,
            Err(_) => {
                // ORDERING: Acquire pairs with `begin_stop`'s swap, so
                // a stopping server's pre-stop writes are visible here.
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        // ORDERING: Acquire — same pairing as above.
        if shared.stop.load(Ordering::Acquire) {
            // The throwaway wake-up connection (or a late client).
            return;
        }
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(shared.idle_timeout));
        // ORDERING: Relaxed — an id ticket; uniqueness comes from the
        // RMW itself, nothing is published under it.
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        // Track a clone so shutdown can half-close the read side even
        // while the reader is blocked in `read_exact`.
        if let Ok(tracked) = stream.try_clone() {
            lock(&shared.conns).insert(conn_id, tracked);
        }
        // ORDERING: Relaxed — monotonic stat counters and a gauge
        // refresh; readers only ever sum/display them.
        shared.connections_total.fetch_add(1, Ordering::Relaxed);
        shared.connections_open.fetch_add(1, Ordering::Relaxed);
        mpcp_obs::gauge_set!(
            "serve.net.connections",
            shared.connections_open.load(Ordering::Relaxed) as f64
        );
        let spawned = {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("mpcp-net-conn-{conn_id}"))
                .spawn(move || conn_reader(&shared, stream, conn_id))
        };
        let mut handles = lock(&shared.handles);
        match spawned {
            Ok(h) => handles.push(h),
            Err(_) => {
                // Could not spawn a reader: refuse the connection.
                drop(handles);
                close_conn(shared, conn_id);
                continue;
            }
        }
        // Reap finished connections so a long-lived daemon does not
        // accumulate JoinHandles.
        let mut live = Vec::with_capacity(handles.len());
        for h in handles.drain(..) {
            if h.is_finished() {
                let _ = h.join();
            } else {
                live.push(h);
            }
        }
        *handles = live;
    }
}

fn close_conn(shared: &Arc<NetShared>, conn_id: u64) {
    if lock(&shared.conns).remove(&conn_id).is_some() {
        // ORDERING: Relaxed — stat counter + gauge refresh, as in
        // `accept_loop`; the conns lock already serializes the remove.
        shared.connections_open.fetch_sub(1, Ordering::Relaxed);
        mpcp_obs::gauge_set!(
            "serve.net.connections",
            shared.connections_open.load(Ordering::Relaxed) as f64
        );
    }
}

fn conn_reader(shared: &Arc<NetShared>, mut stream: TcpStream, conn_id: u64) {
    let (tx, rx) = mpsc::channel::<WriterItem>();
    let writer = {
        let shared = Arc::clone(shared);
        let ws = stream.try_clone();
        match ws {
            Ok(ws) => std::thread::Builder::new()
                .name(format!("mpcp-net-write-{conn_id}"))
                .spawn(move || conn_writer(&shared, ws, &rx))
                .ok(),
            Err(_) => None,
        }
    };
    let Some(writer) = writer else {
        close_conn(shared, conn_id);
        return;
    };
    loop {
        match read_frame::<NetRequest>(&mut stream, KIND_NET_REQUEST) {
            ReadFrame::Msg(NetRequest::Select { req_id, key, instance }) => {
                let t0 = Instant::now();
                // ORDERING: Relaxed — stat counters; the matching
                // inflight decrement rides the writer channel, which
                // is itself the synchronization edge.
                shared.requests.fetch_add(1, Ordering::Relaxed);
                shared.inflight.fetch_add(1, Ordering::Relaxed);
                mpcp_obs::counter_add!("serve.net.requests", 1);
                let item = match shared.batch.submit(key.clone(), instance) {
                    Ok(ticket) => {
                        // ORDERING: Relaxed — stat counter.
                        shared.accepted.fetch_add(1, Ordering::Relaxed);
                        mpcp_obs::counter_add!("serve.net.accepted", 1);
                        WriterItem::Pending { req_id, ticket, t0 }
                    }
                    Err(ServeError::Overloaded) => {
                        WriterItem::Ready { resp: shed_reply(shared, req_id, &key, &instance), t0 }
                    }
                    Err(e) => WriterItem::Ready { resp: error_reply(shared, req_id, &e), t0 },
                };
                if tx.send(item).is_err() {
                    break; // writer died; nothing can be answered
                }
            }
            ReadFrame::Msg(NetRequest::Shutdown { req_id }) => {
                // Flip the stop flag before the ack can be written: a
                // client that has received the ack must observe
                // `running() == false`, in that order.
                shared.begin_stop();
                let _ = tx.send(WriterItem::Ready {
                    resp: NetResponse::ShutdownAck { req_id },
                    t0: Instant::now(),
                });
                break;
            }
            ReadFrame::Idle => {
                // ORDERING: Relaxed — stat counter.
                shared.idle_closed.fetch_add(1, Ordering::Relaxed);
                mpcp_obs::counter_add!("serve.net.idle_closed", 1);
                break;
            }
            ReadFrame::Eof | ReadFrame::Broken => break,
        }
    }
    // Dropping the sender lets the writer drain what was admitted and
    // exit; every accepted request still gets its reply written.
    drop(tx);
    let _ = writer.join();
    close_conn(shared, conn_id);
}

/// Build the reply for a request the bounded queue refused: shed to the
/// fallback if shed capacity allows, else a typed `overloaded` error.
fn shed_reply(
    shared: &Arc<NetShared>,
    req_id: u64,
    key: &ShardKey,
    instance: &Instance,
) -> NetResponse {
    // ORDERING: AcqRel on the shed-admission ticket: the increment
    // must be globally ordered against concurrent increments (it is an
    // admission decision, not a statistic) and the decrement must not
    // sink below the fallback call it releases capacity for.
    if shared.shed_inflight.fetch_add(1, Ordering::AcqRel) >= shared.max_shed_inflight as u64 {
        shared.shed_inflight.fetch_sub(1, Ordering::AcqRel);
        return error_reply(shared, req_id, &ServeError::Overloaded);
    }
    let fallback = (shared.shed)(key, instance);
    // ORDERING: AcqRel — releases the shed slot taken above.
    shared.shed_inflight.fetch_sub(1, Ordering::AcqRel);
    match fallback {
        Some(sel) => {
            // ORDERING: Relaxed — stat counter.
            shared.shed_n.fetch_add(1, Ordering::Relaxed);
            mpcp_obs::counter_add!("serve.shed", 1);
            NetResponse::Shed { req_id, selection: Selection { degraded: true, ..sel } }
        }
        None => error_reply(shared, req_id, &ServeError::UnknownShard { key: key.clone() }),
    }
}

fn error_reply(shared: &Arc<NetShared>, req_id: u64, e: &ServeError) -> NetResponse {
    if matches!(e, ServeError::Overloaded) {
        // ORDERING: Relaxed — stat counters, here and below.
        shared.overloaded.fetch_add(1, Ordering::Relaxed);
        mpcp_obs::counter_add!("serve.net.overloaded", 1);
    }
    // ORDERING: Relaxed — stat counter.
    shared.errors.fetch_add(1, Ordering::Relaxed);
    NetResponse::Err { req_id, code: error_code(e), message: e.to_string() }
}

fn conn_writer(shared: &Arc<NetShared>, mut stream: TcpStream, rx: &mpsc::Receiver<WriterItem>) {
    // After a write failure the peer is gone: keep draining items (so
    // tickets resolve and the inflight gauge stays balanced) without
    // touching the socket.
    let mut sink_only = false;
    for item in rx.iter() {
        let (resp, t0, counted) = match item {
            WriterItem::Pending { req_id, ticket, t0 } => {
                let resp = match ticket.wait_timeout(shared.reply_timeout) {
                    Ok(sel) => NetResponse::Ok { req_id, selection: sel },
                    Err(e) => error_reply(shared, req_id, &e),
                };
                (resp, t0, true)
            }
            WriterItem::Ready { resp, t0 } => {
                let counted = !matches!(resp, NetResponse::ShutdownAck { .. });
                (resp, t0, counted)
            }
        };
        if !sink_only && write_frame(&mut stream, KIND_NET_RESPONSE, &resp).is_err() {
            sink_only = true;
        }
        if counted {
            // ORDERING: Relaxed — balances the reader's Relaxed
            // increment; the channel hand-off orders the two.
            shared.inflight.fetch_sub(1, Ordering::Relaxed);
            let us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
            mpcp_obs::hist_record!("serve.net.req_us", us);
        }
    }
    let _ = stream.shutdown(Shutdown::Write);
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// A decoded reply to one select request.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// A selection; `shed` is true when it came from the degraded
    /// fallback path.
    Selection {
        /// The selection.
        selection: Selection,
        /// True when the server shed the request.
        shed: bool,
    },
    /// A typed server error.
    Error {
        /// Stable wire error code (`ERR_*`).
        code: u8,
        /// Server-side error message.
        message: String,
    },
    /// The server acknowledged a shutdown request.
    ShutdownAck,
}

/// Blocking client for one daemon connection. Supports pipelining:
/// queue sends with [`NetClient::send_select`], then collect replies in
/// request order with [`NetClient::recv`].
pub struct NetClient {
    stream: TcpStream,
    next_id: u64,
}

impl NetClient {
    /// Connect to a daemon.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<NetClient, NetError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(NetClient { stream, next_id: 1 })
    }

    /// Cap how long [`NetClient::recv`] blocks (None restores blocking).
    pub fn set_read_timeout(&self, t: Option<Duration>) -> Result<(), NetError> {
        self.stream.set_read_timeout(t)?;
        Ok(())
    }

    /// Send one select request without waiting; returns its `req_id`.
    pub fn send_select(&mut self, key: &ShardKey, instance: &Instance) -> Result<u64, NetError> {
        let req_id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        let req =
            NetRequest::Select { req_id, key: key.clone(), instance: *instance };
        write_frame(&mut self.stream, KIND_NET_REQUEST, &req)?;
        Ok(req_id)
    }

    /// Read the next reply (replies arrive in request order).
    pub fn recv(&mut self) -> Result<(u64, Reply), NetError> {
        let resp: NetResponse = read_frame_client(&mut self.stream, KIND_NET_RESPONSE)?;
        let id = resp.req_id();
        let reply = match resp {
            NetResponse::Ok { selection, .. } => Reply::Selection { selection, shed: false },
            NetResponse::Shed { selection, .. } => Reply::Selection { selection, shed: true },
            NetResponse::Err { code, message, .. } => Reply::Error { code, message },
            NetResponse::ShutdownAck { .. } => Reply::ShutdownAck,
        };
        Ok((id, reply))
    }

    /// One synchronous round-trip; the bool is true when the reply was
    /// shed (degraded fallback).
    pub fn select(
        &mut self,
        key: &ShardKey,
        instance: &Instance,
    ) -> Result<(Selection, bool), NetError> {
        let want = self.send_select(key, instance)?;
        loop {
            let (id, reply) = self.recv()?;
            if id != want {
                continue; // a stale reply from an abandoned earlier call
            }
            return match reply {
                Reply::Selection { selection, shed } => Ok((selection, shed)),
                Reply::Error { code, message } => Err(NetError::Remote { code, message }),
                Reply::ShutdownAck => Err(NetError::Codec(CodecError::invalid(
                    "shutdown ack in reply to a select",
                ))),
            };
        }
    }

    /// Ask the daemon to drain and stop; resolves once acknowledged.
    pub fn shutdown_server(&mut self) -> Result<(), NetError> {
        let req_id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        write_frame(&mut self.stream, KIND_NET_REQUEST, &NetRequest::Shutdown { req_id })?;
        loop {
            let (id, reply) = self.recv()?;
            if id == req_id && matches!(reply, Reply::ShutdownAck) {
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> NetRequest {
        NetRequest::Select {
            req_id: 42,
            key: ShardKey { coll: Collective::Allreduce, scope: "hydra/OpenMPI 4.0.2".into() },
            instance: Instance::new(Collective::Allreduce, 4096, 8, 4),
        }
    }

    #[test]
    fn request_frames_round_trip() {
        for req in [sample_request(), NetRequest::Shutdown { req_id: 7 }] {
            let bytes = encode_framed(KIND_NET_REQUEST, &req);
            let back: NetRequest =
                mpcp_ml::persist::decode_framed(KIND_NET_REQUEST, &bytes).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn response_frames_round_trip_bit_exactly() {
        let sels = [
            Selection { uid: 3, predicted_us: Some(12.75), degraded: false },
            Selection { uid: 0, predicted_us: None, degraded: true },
            Selection { uid: u32::MAX - 1, predicted_us: Some(-0.0), degraded: false },
        ];
        let mut msgs = vec![
            NetResponse::Err { req_id: 9, code: ERR_OVERLOADED, message: "busy".into() },
            NetResponse::ShutdownAck { req_id: 1 },
        ];
        for (i, s) in sels.iter().enumerate() {
            msgs.push(NetResponse::Ok { req_id: i as u64, selection: *s });
            msgs.push(NetResponse::Shed { req_id: i as u64, selection: *s });
        }
        for msg in msgs {
            let bytes = encode_framed(KIND_NET_RESPONSE, &msg);
            let back: NetResponse =
                mpcp_ml::persist::decode_framed(KIND_NET_RESPONSE, &bytes).unwrap();
            match (&back, &msg) {
                (
                    NetResponse::Ok { selection: a, .. } | NetResponse::Shed { selection: a, .. },
                    NetResponse::Ok { selection: b, .. } | NetResponse::Shed { selection: b, .. },
                ) => {
                    assert_eq!(a.uid, b.uid);
                    assert_eq!(
                        a.predicted_us.map(f64::to_bits),
                        b.predicted_us.map(f64::to_bits)
                    );
                    assert_eq!(a.degraded, b.degraded);
                }
                _ => assert_eq!(back, msg),
            }
        }
    }

    #[test]
    fn request_and_response_kinds_do_not_cross() {
        let bytes = encode_framed(KIND_NET_REQUEST, &sample_request());
        let err =
            mpcp_ml::persist::decode_framed::<NetResponse>(KIND_NET_RESPONSE, &bytes).unwrap_err();
        assert_eq!(
            err,
            CodecError::WrongKind { expected: KIND_NET_RESPONSE, found: KIND_NET_REQUEST }
        );
    }

    #[test]
    fn corrupt_wire_payloads_are_typed_never_panics() {
        let bytes = encode_framed(KIND_NET_REQUEST, &sample_request());
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x5A;
            assert!(
                mpcp_ml::persist::decode_framed::<NetRequest>(KIND_NET_REQUEST, &corrupt).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn error_codes_are_stable_and_distinct() {
        let key = ShardKey { coll: Collective::Bcast, scope: "m/l".into() };
        let inst = Instance::new(Collective::Bcast, 1, 1, 1);
        let errs = [
            ServeError::UnknownShard { key },
            ServeError::CollectiveMismatch {
                shard: Collective::Bcast,
                instance: Collective::Barrier,
            },
            ServeError::NoFinitePrediction { instance: inst },
            ServeError::Disconnected,
            ServeError::Overloaded,
            ServeError::Timeout,
        ];
        let codes: Vec<u8> = errs.iter().map(error_code).collect();
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len(), "codes must be distinct");
        assert_eq!(error_code(&ServeError::Overloaded), ERR_OVERLOADED);
        assert_eq!(error_code(&ServeError::Timeout), ERR_TIMEOUT);
    }
}
