//! Dataset records and a small CSV (de)serializer for caching generated
//! datasets on disk.

use std::io::{BufRead, BufReader, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

/// One measured cell of a dataset: the tuple the paper's regression
/// models train on, plus ground truth for evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Number of compute nodes `n`.
    pub nodes: u32,
    /// Processes per node `N`.
    pub ppn: u32,
    /// Message size in bytes `m`.
    pub msize: u64,
    /// Algorithm-configuration index `u_{j,l}` into the library's list.
    pub uid: u32,
    /// Library-visible algorithm id `j`.
    pub alg_id: u32,
    /// Benchmark-only configuration (never selectable).
    pub excluded: bool,
    /// Measured (noisy median) running time, seconds.
    pub runtime: f64,
    /// Noise-free simulated running time, seconds (ground truth used by
    /// the evaluation, never shown to the learners).
    pub base: f64,
    /// Repetitions the benchmark loop executed.
    pub reps: u32,
}

impl Record {
    /// CSV header matching [`Record::to_csv`].
    pub const CSV_HEADER: &'static str =
        "nodes,ppn,msize,uid,alg_id,excluded,runtime,base,reps";

    /// Serialize as one CSV line.
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{},{},{:.17e},{:.17e},{}",
            self.nodes,
            self.ppn,
            self.msize,
            self.uid,
            self.alg_id,
            u8::from(self.excluded),
            self.runtime,
            self.base,
            self.reps
        )
    }

    /// Parse one CSV line.
    pub fn from_csv(line: &str) -> Result<Record, String> {
        let f: Vec<&str> = line.trim().split(',').collect();
        if f.len() != 9 {
            return Err(format!("expected 9 fields, got {}: {line}", f.len()));
        }
        let err = |e: &str| format!("bad field ({e}): {line}");
        Ok(Record {
            nodes: f[0].parse().map_err(|_| err("nodes"))?,
            ppn: f[1].parse().map_err(|_| err("ppn"))?,
            msize: f[2].parse().map_err(|_| err("msize"))?,
            uid: f[3].parse().map_err(|_| err("uid"))?,
            alg_id: f[4].parse().map_err(|_| err("alg_id"))?,
            excluded: f[5] == "1",
            runtime: f[6].parse().map_err(|_| err("runtime"))?,
            base: f[7].parse().map_err(|_| err("base"))?,
            reps: f[8].parse().map_err(|_| err("reps"))?,
        })
    }
}

/// Write records to a CSV file (with header).
pub fn write_csv(path: &Path, records: &[Record]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(out, "{}", Record::CSV_HEADER)?;
    for r in records {
        writeln!(out, "{}", r.to_csv())?;
    }
    Ok(())
}

/// Read records from a CSV file written by [`write_csv`].
pub fn read_csv(path: &Path) -> std::io::Result<Vec<Record>> {
    let file = BufReader::new(std::fs::File::open(path)?);
    let mut records = Vec::new();
    for (i, line) in file.lines().enumerate() {
        let line = line?;
        if i == 0 {
            if line.trim() != Record::CSV_HEADER {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unexpected CSV header: {line}"),
                ));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        records.push(
            Record::from_csv(&line)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?,
        );
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Record {
        Record {
            nodes: 16,
            ppn: 32,
            msize: 4 << 20,
            uid: 7,
            alg_id: 2,
            excluded: false,
            runtime: 8.4e-5,
            base: 8.21e-5,
            reps: 500,
        }
    }

    #[test]
    fn csv_roundtrip() {
        let r = sample();
        let parsed = Record::from_csv(&r.to_csv()).unwrap();
        assert_eq!(parsed.nodes, r.nodes);
        assert_eq!(parsed.msize, r.msize);
        assert!((parsed.runtime - r.runtime).abs() < 1e-18);
        assert_eq!(parsed.excluded, r.excluded);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("mpcp_record_test");
        let path = dir.join("x.csv");
        let records = vec![sample(), Record { uid: 8, excluded: true, ..sample() }];
        write_csv(&path, &records).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert!(back[1].excluded);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_lines_error() {
        assert!(Record::from_csv("1,2,3").is_err());
        assert!(Record::from_csv("a,b,c,d,e,f,g,h,i").is_err());
    }
}
