//! Checkpointed columnar on-disk store for campaign results.
//!
//! A store file is a concatenation of `persist` codec frames (`MPCP`
//! magic + version + kind + FNV-1a checksum): one
//! [`KIND_CAMPAIGN_HEADER`] frame pinning the campaign's identity (grid,
//! seed, bench/fault/retry configuration), followed by one
//! [`KIND_CAMPAIGN_CHUNK`] frame per committed chunk of cells, in cell-id
//! order. Each chunk holds **column blocks** — per-cell fate bytes and
//! coordinate columns (`m`/`n`/`N`/`uid`), plus measurement columns
//! (`runtime`/`base`/`reps`/`alg_id`/`excluded`) for the cells that
//! produced a record — so downstream consumers can scan a single column
//! without decoding rows.
//!
//! Because every frame is checksummed and self-delimiting, crash
//! recovery is a pure scan: [`CampaignStore::open_or_create`] walks the
//! frames, keeps every chunk that validates, and truncates a torn tail
//! (the unique signature of a crash mid-append) back to the last valid
//! frame boundary. Any *other* corruption — flipped bits, a foreign
//! file, a future format version — is a typed error, never a panic and
//! never a silent heal: a store that lies about its history must not be
//! resumed into.
//!
//! Determinism contract: the bytes of a store are a pure function of
//! `(header, committed results)`. No wall-clock time, thread count, or
//! host identity is ever written, which is what makes the campaign
//! runner's N-thread ≡ 1-thread byte-identity gate possible.

use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

use mpcp_ml::persist::{
    append_framed, decode_payload, ByteReader, ByteWriter, CodecError, FrameScanner, Persist,
    KIND_CAMPAIGN_CHUNK, KIND_CAMPAIGN_HEADER,
};
use mpcp_simnet::SimTime;

use crate::fault::{FaultPlan, FaultSummary, RetryPolicy};
use crate::record::Record;
use crate::repro::BenchConfig;

/// Version of the campaign-store layout (inside the codec's own
/// format version).
pub const STORE_VERSION: u32 = 1;

/// Per-cell fate byte stored in a chunk's fate column.
pub mod fate {
    /// Cell measured successfully (has measurement columns).
    pub const OK: u8 = 0;
    /// Cell lost to (retry-exhausted) failure.
    pub const FAILED: u8 = 1;
    /// Cell lost to a timeout.
    pub const TIMED_OUT: u8 = 2;
    /// Cell lost to a simulation error.
    pub const SIM_ERROR: u8 = 3;
}

/// Identity of one campaign: everything that determines its results.
///
/// Two stores may only be resumed into one another when their headers
/// are equal; a mismatch is [`StoreError::HeaderMismatch`].
#[derive(Clone, Debug, PartialEq)]
pub struct StoreHeader {
    /// Campaign id (dataset id or CLI-assigned name).
    pub id: String,
    /// Collective name (e.g. `MPI_Allreduce`).
    pub collective: String,
    /// Library name.
    pub library: String,
    /// Library version string.
    pub lib_version: String,
    /// Machine profile name.
    pub machine: String,
    /// Noise seed of the campaign.
    pub seed: u64,
    /// Node counts of the grid, in canonical order.
    pub nodes: Vec<u32>,
    /// Processes-per-node values, in canonical order.
    pub ppn: Vec<u32>,
    /// Message sizes in bytes, in canonical order.
    pub msizes: Vec<u64>,
    /// Algorithm-configuration count of the library.
    pub config_count: u64,
    /// Cells per chunk (the checkpoint granularity).
    pub chunk_size: u64,
    /// Benchmark loop: maximum repetitions per cell.
    pub max_reps: u32,
    /// Benchmark loop: per-cell budget, picoseconds.
    pub budget_picos: u64,
    /// Benchmark loop: per-repetition sync overhead, picoseconds.
    pub sync_picos: u64,
    /// Retry policy: extra attempts after the first failure.
    pub max_retries: u32,
    /// Retry policy: base backoff, picoseconds.
    pub backoff_picos: u64,
    /// Fault plan, if the campaign injects faults.
    pub fault: Option<FaultPlanRepr>,
}

/// Serializable mirror of [`FaultPlan`] (probabilities via bit-exact
/// `f64` round trips).
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlanRepr {
    /// Per-attempt failure probability.
    pub fail_prob: f64,
    /// Per-attempt timeout probability.
    pub timeout_prob: f64,
    /// Outlier probability.
    pub outlier_prob: f64,
    /// Outlier inflation factor.
    pub outlier_scale: f64,
    /// Blacked-out node counts.
    pub blackout_nodes: Vec<u32>,
    /// Fault-stream seed.
    pub seed: u64,
}

impl FaultPlanRepr {
    /// Capture a plan for the header.
    pub fn from_plan(p: &FaultPlan) -> FaultPlanRepr {
        FaultPlanRepr {
            fail_prob: p.fail_prob,
            timeout_prob: p.timeout_prob,
            outlier_prob: p.outlier_prob,
            outlier_scale: p.outlier_scale,
            blackout_nodes: p.blackout_nodes.clone(),
            seed: p.seed,
        }
    }

    /// Rebuild the plan a stored campaign ran under.
    pub fn to_plan(&self) -> FaultPlan {
        FaultPlan {
            fail_prob: self.fail_prob,
            timeout_prob: self.timeout_prob,
            outlier_prob: self.outlier_prob,
            outlier_scale: self.outlier_scale,
            blackout_nodes: self.blackout_nodes.clone(),
            seed: self.seed,
        }
    }
}

impl Persist for FaultPlanRepr {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(self.fail_prob);
        w.put_f64(self.timeout_prob);
        w.put_f64(self.outlier_prob);
        w.put_f64(self.outlier_scale);
        w.put_u32s(&self.blackout_nodes);
        w.put_u64(self.seed);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<FaultPlanRepr, CodecError> {
        Ok(FaultPlanRepr {
            fail_prob: r.get_f64()?,
            timeout_prob: r.get_f64()?,
            outlier_prob: r.get_f64()?,
            outlier_scale: r.get_f64()?,
            blackout_nodes: r.get_u32s()?,
            seed: r.get_u64()?,
        })
    }
}

impl StoreHeader {
    /// Assemble a header from the campaign's run parameters.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: &str,
        collective: &str,
        library: &str,
        lib_version: &str,
        machine: &str,
        seed: u64,
        nodes: Vec<u32>,
        ppn: Vec<u32>,
        msizes: Vec<u64>,
        config_count: usize,
        chunk_size: u64,
        bench: &BenchConfig,
        retry: &RetryPolicy,
        plan: Option<&FaultPlan>,
    ) -> StoreHeader {
        StoreHeader {
            id: id.to_string(),
            collective: collective.to_string(),
            library: library.to_string(),
            lib_version: lib_version.to_string(),
            machine: machine.to_string(),
            seed,
            nodes,
            ppn,
            msizes,
            config_count: config_count as u64,
            chunk_size,
            max_reps: bench.max_reps,
            budget_picos: bench.budget.picos(),
            sync_picos: bench.sync_per_rep.picos(),
            max_retries: retry.max_retries,
            backoff_picos: retry.backoff.picos(),
            fault: plan.map(FaultPlanRepr::from_plan),
        }
    }

    /// Total cells in this campaign's grid.
    pub fn total_cells(&self) -> u64 {
        self.nodes.len() as u64
            * self.ppn.len() as u64
            * self.msizes.len() as u64
            * self.config_count
    }

    /// Total chunks the campaign will commit (last one may be short).
    pub fn total_chunks(&self) -> u64 {
        if self.chunk_size == 0 {
            return 0;
        }
        self.total_cells().div_ceil(self.chunk_size)
    }

    /// Rebuild the bench configuration this store was measured under.
    pub fn bench(&self) -> BenchConfig {
        BenchConfig {
            max_reps: self.max_reps,
            budget: SimTime(self.budget_picos),
            sync_per_rep: SimTime(self.sync_picos),
        }
    }

    /// Rebuild the retry policy this store was measured under.
    pub fn retry(&self) -> RetryPolicy {
        RetryPolicy { max_retries: self.max_retries, backoff: SimTime(self.backoff_picos) }
    }
}

impl Persist for StoreHeader {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(STORE_VERSION);
        w.put_str(&self.id);
        w.put_str(&self.collective);
        w.put_str(&self.library);
        w.put_str(&self.lib_version);
        w.put_str(&self.machine);
        w.put_u64(self.seed);
        w.put_u32s(&self.nodes);
        w.put_u32s(&self.ppn);
        w.put_u64s(&self.msizes);
        w.put_u64(self.config_count);
        w.put_u64(self.chunk_size);
        w.put_u32(self.max_reps);
        w.put_u64(self.budget_picos);
        w.put_u64(self.sync_picos);
        w.put_u32(self.max_retries);
        w.put_u64(self.backoff_picos);
        match &self.fault {
            None => w.put_u8(0),
            Some(f) => {
                w.put_u8(1);
                f.encode(w);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<StoreHeader, CodecError> {
        let v = r.get_u32()?;
        if v != STORE_VERSION {
            return Err(CodecError::invalid(format!(
                "campaign store version {v} (this build supports {STORE_VERSION})"
            )));
        }
        let header = StoreHeader {
            id: r.get_string()?,
            collective: r.get_string()?,
            library: r.get_string()?,
            lib_version: r.get_string()?,
            machine: r.get_string()?,
            seed: r.get_u64()?,
            nodes: r.get_u32s()?,
            ppn: r.get_u32s()?,
            msizes: r.get_u64s()?,
            config_count: r.get_u64()?,
            chunk_size: r.get_u64()?,
            max_reps: r.get_u32()?,
            budget_picos: r.get_u64()?,
            sync_picos: r.get_u64()?,
            max_retries: r.get_u32()?,
            backoff_picos: r.get_u64()?,
            fault: match r.get_u8()? {
                0 => None,
                1 => Some(FaultPlanRepr::decode(r)?),
                b => return Err(CodecError::invalid(format!("fault-plan tag {b}"))),
            },
        };
        if header.chunk_size == 0 && header.total_cells() != 0 {
            return Err(CodecError::invalid("chunk_size 0 on a non-empty grid"));
        }
        Ok(header)
    }
}

/// One committed chunk: column blocks for a contiguous cell-id range.
///
/// The coordinate columns (`nodes`/`ppn`/`msizes`/`uids`) and the fate
/// column cover **every** cell of the range; the measurement columns
/// (`alg_ids`/`excluded`/`runtimes`/`bases`/`reps`) cover only the cells
/// whose fate is [`fate::OK`], in the same order.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ChunkData {
    /// Chunk ordinal (0-based, contiguous).
    pub index: u64,
    /// First cell id of the chunk.
    pub start: u64,
    /// Per-cell fate bytes (`fate::*`).
    pub fates: Vec<u8>,
    /// Per-cell node counts.
    pub nodes: Vec<u32>,
    /// Per-cell processes-per-node.
    pub ppn: Vec<u32>,
    /// Per-cell message sizes.
    pub msizes: Vec<u64>,
    /// Per-cell configuration uids.
    pub uids: Vec<u32>,
    /// Library algorithm ids (OK cells only).
    pub alg_ids: Vec<u32>,
    /// Excluded-configuration flags (OK cells only, 0/1).
    pub excluded: Vec<u8>,
    /// Measured median runtimes, seconds (OK cells only).
    pub runtimes: Vec<f64>,
    /// Noise-free base runtimes, seconds (OK cells only).
    pub bases: Vec<f64>,
    /// Repetition counts (OK cells only).
    pub reps: Vec<u32>,
    /// Retry attempts across the chunk.
    pub retries: u64,
    /// Simulated time charged to retry backoff, picoseconds.
    pub retry_picos: u64,
    /// Total simulated benchmark time consumed, picoseconds.
    pub consumed_picos: u64,
}

impl ChunkData {
    /// Cells covered by this chunk.
    pub fn cells(&self) -> u64 {
        self.fates.len() as u64
    }

    /// Cells that produced a record.
    pub fn ok_cells(&self) -> usize {
        self.fates.iter().filter(|&&f| f == fate::OK).count()
    }

    /// Rebuild this chunk's fault accounting.
    pub fn summary(&self) -> FaultSummary {
        let mut s = FaultSummary {
            retries: self.retries,
            retry_time: SimTime(self.retry_picos),
            ..FaultSummary::default()
        };
        for &f in &self.fates {
            match f {
                fate::OK => s.cells_ok += 1,
                fate::FAILED => s.cells_failed += 1,
                fate::TIMED_OUT => s.cells_timed_out += 1,
                _ => s.sim_errors += 1,
            }
        }
        s
    }

    /// Reconstitute the dataset records of this chunk's OK cells, in
    /// cell-id order.
    pub fn to_records(&self) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.runtimes.len());
        let mut ok = 0usize;
        for (i, &f) in self.fates.iter().enumerate() {
            if f != fate::OK {
                continue;
            }
            out.push(Record {
                nodes: self.nodes[i],
                ppn: self.ppn[i],
                msize: self.msizes[i],
                uid: self.uids[i],
                alg_id: self.alg_ids[ok],
                excluded: self.excluded[ok] != 0,
                runtime: self.runtimes[ok],
                base: self.bases[ok],
                reps: self.reps[ok],
            });
            ok += 1;
        }
        out
    }

    fn validate(&self) -> Result<(), CodecError> {
        let n = self.fates.len();
        for (name, len) in [
            ("nodes", self.nodes.len()),
            ("ppn", self.ppn.len()),
            ("msizes", self.msizes.len()),
            ("uids", self.uids.len()),
        ] {
            if len != n {
                return Err(CodecError::invalid(format!(
                    "chunk {}: {name} column has {len} entries for {n} cells",
                    self.index
                )));
            }
        }
        if let Some(&bad) = self.fates.iter().find(|&&f| f > fate::SIM_ERROR) {
            return Err(CodecError::invalid(format!("chunk {}: fate byte {bad}", self.index)));
        }
        let ok = self.ok_cells();
        for (name, len) in [
            ("alg_ids", self.alg_ids.len()),
            ("excluded", self.excluded.len()),
            ("runtimes", self.runtimes.len()),
            ("bases", self.bases.len()),
            ("reps", self.reps.len()),
        ] {
            if len != ok {
                return Err(CodecError::invalid(format!(
                    "chunk {}: {name} column has {len} entries for {ok} OK cells",
                    self.index
                )));
            }
        }
        if let Some(&bad) = self.excluded.iter().find(|&&b| b > 1) {
            return Err(CodecError::invalid(format!("chunk {}: excluded byte {bad}", self.index)));
        }
        Ok(())
    }
}

impl Persist for ChunkData {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.index);
        w.put_u64(self.start);
        w.put_u8s(&self.fates);
        w.put_u32s(&self.nodes);
        w.put_u32s(&self.ppn);
        w.put_u64s(&self.msizes);
        w.put_u32s(&self.uids);
        w.put_u32s(&self.alg_ids);
        w.put_u8s(&self.excluded);
        w.put_f64s(&self.runtimes);
        w.put_f64s(&self.bases);
        w.put_u32s(&self.reps);
        w.put_u64(self.retries);
        w.put_u64(self.retry_picos);
        w.put_u64(self.consumed_picos);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<ChunkData, CodecError> {
        let chunk = ChunkData {
            index: r.get_u64()?,
            start: r.get_u64()?,
            fates: r.get_u8s()?,
            nodes: r.get_u32s()?,
            ppn: r.get_u32s()?,
            msizes: r.get_u64s()?,
            uids: r.get_u32s()?,
            alg_ids: r.get_u32s()?,
            excluded: r.get_u8s()?,
            runtimes: r.get_f64s()?,
            bases: r.get_f64s()?,
            reps: r.get_u32s()?,
            retries: r.get_u64()?,
            retry_picos: r.get_u64()?,
            consumed_picos: r.get_u64()?,
        };
        chunk.validate()?;
        Ok(chunk)
    }
}

/// Why a store file could not be created, read, or appended to.
#[derive(Debug)]
pub enum StoreError {
    /// A frame or payload failed to decode (typed codec error).
    Codec(CodecError),
    /// The filesystem said no.
    Io {
        /// The store path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file holds a valid store for a *different* campaign.
    HeaderMismatch {
        /// Human-readable description of the differing field(s).
        what: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Codec(e) => write!(f, "campaign store: {e}"),
            StoreError::Io { path, source } => {
                write!(f, "campaign store {}: {source}", path.display())
            }
            StoreError::HeaderMismatch { what } => {
                write!(f, "campaign store belongs to a different campaign: {what}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Codec(e) => Some(e),
            StoreError::Io { source, .. } => Some(source),
            StoreError::HeaderMismatch { .. } => None,
        }
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> StoreError {
        StoreError::Codec(e)
    }
}

fn io_err(path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Io { path: path.to_path_buf(), source }
}

/// Which fields of two headers differ (for [`StoreError::HeaderMismatch`]).
fn header_diff(found: &StoreHeader, expected: &StoreHeader) -> String {
    let mut diffs = Vec::new();
    if found.id != expected.id {
        diffs.push(format!("id '{}' vs '{}'", found.id, expected.id));
    }
    if found.seed != expected.seed {
        diffs.push(format!("seed {} vs {}", found.seed, expected.seed));
    }
    if found.collective != expected.collective || found.library != expected.library {
        diffs.push(format!(
            "{} on {} vs {} on {}",
            found.collective, found.library, expected.collective, expected.library
        ));
    }
    if diffs.is_empty() {
        diffs.push("grid or configuration differs".to_string());
    }
    diffs.join("; ")
}

/// An append handle over a campaign store file.
///
/// Created by [`CampaignStore::create`] (fresh file) or
/// [`CampaignStore::open_or_create`] (resume). Each [`CampaignStore::append`]
/// writes one complete chunk frame and flushes it — the frame boundary
/// *is* the checkpoint.
#[derive(Debug)]
pub struct CampaignStore {
    path: PathBuf,
    header: StoreHeader,
    chunks_done: u64,
    cells_done: u64,
}

impl CampaignStore {
    /// Create (or truncate) `path` and write the header frame.
    pub fn create(path: &Path, header: StoreHeader) -> Result<CampaignStore, StoreError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(|e| io_err(path, e))?;
            }
        }
        let mut bytes = Vec::new();
        append_framed(&mut bytes, KIND_CAMPAIGN_HEADER, &header);
        std::fs::write(path, &bytes).map_err(|e| io_err(path, e))?;
        Ok(CampaignStore { path: path.to_path_buf(), header, chunks_done: 0, cells_done: 0 })
    }

    /// Open `path` for resuming, recovering from a torn tail; create a
    /// fresh store when the file is absent (or died before its header
    /// was durable).
    ///
    /// Returns the handle plus every chunk already committed, in order.
    /// A torn trailing frame — the signature of a crash mid-append — is
    /// truncated away (those cells were never committed, and the
    /// deterministic runner will reproduce them bit-identically). Any
    /// other corruption, and a header that decodes but describes a
    /// different campaign, is a typed error.
    pub fn open_or_create(
        path: &Path,
        header: StoreHeader,
    ) -> Result<(CampaignStore, Vec<ChunkData>), StoreError> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok((CampaignStore::create(path, header)?, Vec::new()));
            }
            Err(e) => return Err(io_err(path, e)),
        };
        let mut scan = FrameScanner::new(&bytes);
        let found = match scan.next_frame(KIND_CAMPAIGN_HEADER) {
            Ok(Some(payload)) => decode_payload::<StoreHeader>(payload)?,
            // Empty file, or a crash before the header frame was fully
            // on disk: nothing was committed, start fresh.
            Ok(None) | Err(CodecError::Truncated { .. }) => {
                return Ok((CampaignStore::create(path, header)?, Vec::new()));
            }
            Err(e) => return Err(StoreError::Codec(e)),
        };
        if found != header {
            return Err(StoreError::HeaderMismatch { what: header_diff(&found, &header) });
        }
        let mut chunks: Vec<ChunkData> = Vec::new();
        let mut cells_done = 0u64;
        let valid_end = loop {
            match scan.next_frame(KIND_CAMPAIGN_CHUNK) {
                Ok(Some(payload)) => {
                    let chunk = decode_payload::<ChunkData>(payload)?;
                    if chunk.index != chunks.len() as u64 || chunk.start != cells_done {
                        return Err(StoreError::Codec(CodecError::invalid(format!(
                            "chunk {} starting at cell {} found where chunk {} at cell {} belongs",
                            chunk.index,
                            chunk.start,
                            chunks.len(),
                            cells_done
                        ))));
                    }
                    cells_done += chunk.cells();
                    chunks.push(chunk);
                }
                Ok(None) => break scan.offset(),
                // A torn tail: drop the partial frame, keep everything
                // before it.
                Err(CodecError::Truncated { .. }) => break scan.offset(),
                Err(e) => return Err(StoreError::Codec(e)),
            }
        };
        if valid_end < bytes.len() {
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| io_err(path, e))?;
            f.set_len(valid_end as u64).map_err(|e| io_err(path, e))?;
            f.sync_all().map_err(|e| io_err(path, e))?;
        }
        let store = CampaignStore {
            path: path.to_path_buf(),
            header,
            chunks_done: chunks.len() as u64,
            cells_done,
        };
        Ok((store, chunks))
    }

    /// The header this store was opened with.
    pub fn header(&self) -> &StoreHeader {
        &self.header
    }

    /// Chunks committed so far.
    pub fn chunks_done(&self) -> u64 {
        self.chunks_done
    }

    /// Cells committed so far.
    pub fn cells_done(&self) -> u64 {
        self.cells_done
    }

    /// Append one chunk frame and flush it (the checkpoint boundary).
    ///
    /// Chunks must arrive in order: `chunk.index` must be the next
    /// ordinal and `chunk.start` the next uncommitted cell id.
    pub fn append(&mut self, chunk: &ChunkData) -> Result<(), StoreError> {
        if chunk.index != self.chunks_done || chunk.start != self.cells_done {
            return Err(StoreError::Codec(CodecError::invalid(format!(
                "append out of order: chunk {} at cell {} offered, chunk {} at cell {} expected",
                chunk.index, chunk.start, self.chunks_done, self.cells_done
            ))));
        }
        chunk.validate()?;
        let mut bytes = Vec::new();
        append_framed(&mut bytes, KIND_CAMPAIGN_CHUNK, chunk);
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| io_err(&self.path, e))?;
        f.write_all(&bytes).map_err(|e| io_err(&self.path, e))?;
        f.flush().map_err(|e| io_err(&self.path, e))?;
        self.chunks_done += 1;
        self.cells_done += chunk.cells();
        Ok(())
    }

    /// Strictly load a complete store: header plus every chunk. Unlike
    /// [`CampaignStore::open_or_create`] this heals nothing — any torn
    /// or corrupt byte is a typed error.
    pub fn load(path: &Path) -> Result<(StoreHeader, Vec<ChunkData>), StoreError> {
        let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
        let mut scan = FrameScanner::new(&bytes);
        let header = match scan.next_frame(KIND_CAMPAIGN_HEADER)? {
            Some(payload) => decode_payload::<StoreHeader>(payload)?,
            None => {
                return Err(StoreError::Codec(CodecError::Truncated {
                    offset: 0,
                    needed: mpcp_ml::persist::FRAME_HEADER_LEN,
                }))
            }
        };
        let mut chunks: Vec<ChunkData> = Vec::new();
        let mut cells_done = 0u64;
        while let Some(payload) = scan.next_frame(KIND_CAMPAIGN_CHUNK)? {
            let chunk = decode_payload::<ChunkData>(payload)?;
            if chunk.index != chunks.len() as u64 || chunk.start != cells_done {
                return Err(StoreError::Codec(CodecError::invalid(format!(
                    "chunk {} starting at cell {} found where chunk {} at cell {} belongs",
                    chunk.index,
                    chunk.start,
                    chunks.len(),
                    cells_done
                ))));
            }
            cells_done += chunk.cells();
            chunks.push(chunk);
        }
        Ok((header, chunks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_header(chunk_size: u64) -> StoreHeader {
        StoreHeader::new(
            "t1",
            "MPI_Allreduce",
            "Open MPI",
            "4.0.2",
            "Hydra",
            0x7E57,
            vec![2, 3],
            vec![1, 2],
            vec![16, 256],
            3,
            chunk_size,
            &BenchConfig::quick(),
            &RetryPolicy::default(),
            Some(&FaultPlan::uniform(0.25, 9)),
        )
    }

    fn test_chunk(index: u64, start: u64, cells: u64) -> ChunkData {
        let mut c = ChunkData { index, start, ..ChunkData::default() };
        for i in 0..cells {
            let id = start + i;
            // Every 4th cell fails, every 7th is a sim error.
            let f = if id % 7 == 3 {
                fate::SIM_ERROR
            } else if id % 4 == 1 {
                fate::FAILED
            } else {
                fate::OK
            };
            c.fates.push(f);
            c.nodes.push(2 + (id % 2) as u32);
            c.ppn.push(1 + (id % 2) as u32);
            c.msizes.push(16 << (id % 3));
            c.uids.push((id % 3) as u32);
            if f == fate::OK {
                c.alg_ids.push((id % 5) as u32);
                c.excluded.push(u8::from(id % 6 == 0));
                c.runtimes.push(1e-5 * (id + 1) as f64);
                c.bases.push(0.9e-5 * (id + 1) as f64);
                c.reps.push(10 + (id % 3) as u32);
            }
        }
        c.retries = cells / 3;
        c.retry_picos = 1000 * cells;
        c.consumed_picos = 50_000 * cells;
        c
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mpcp_store_{name}_{}", std::process::id()))
    }

    #[test]
    fn header_and_chunks_round_trip() {
        let path = tmp("roundtrip");
        let header = test_header(4);
        let mut store = CampaignStore::create(&path, header.clone()).unwrap();
        let chunks = vec![test_chunk(0, 0, 4), test_chunk(1, 4, 4), test_chunk(2, 8, 2)];
        for c in &chunks {
            store.append(c).unwrap();
        }
        let (h, back) = CampaignStore::load(&path).unwrap();
        assert_eq!(h, header);
        assert_eq!(back, chunks);
        assert_eq!(store.cells_done(), 10);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunk_summary_and_records_agree_with_fates() {
        let c = test_chunk(0, 0, 16);
        let s = c.summary();
        assert_eq!(s.total(), 16);
        assert_eq!(s.cells_ok, c.ok_cells());
        assert_eq!(s.retries, c.retries);
        assert_eq!(s.retry_time, SimTime(c.retry_picos));
        let records = c.to_records();
        assert_eq!(records.len(), c.ok_cells());
        assert_eq!(records[0].nodes, c.nodes[0]);
    }

    #[test]
    fn out_of_order_append_is_rejected() {
        let path = tmp("order");
        let mut store = CampaignStore::create(&path, test_header(4)).unwrap();
        store.append(&test_chunk(0, 0, 4)).unwrap();
        // Wrong index.
        assert!(matches!(store.append(&test_chunk(0, 0, 4)), Err(StoreError::Codec(_))));
        // Right index, wrong start.
        assert!(matches!(store.append(&test_chunk(1, 9, 4)), Err(StoreError::Codec(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_chunk_columns_are_rejected() {
        let mut c = test_chunk(0, 0, 4);
        c.runtimes.pop();
        assert!(c.validate().is_err());
        let mut c = test_chunk(0, 0, 4);
        c.fates[0] = 9;
        assert!(c.validate().is_err());
        let mut c = test_chunk(0, 0, 4);
        c.nodes.pop();
        assert!(c.validate().is_err());
    }

    #[test]
    fn resume_recovers_from_a_torn_tail() {
        let path = tmp("torn");
        let header = test_header(4);
        let mut store = CampaignStore::create(&path, header.clone()).unwrap();
        store.append(&test_chunk(0, 0, 4)).unwrap();
        let committed = std::fs::read(&path).unwrap();
        store.append(&test_chunk(1, 4, 4)).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Tear the second chunk at an arbitrary mid-frame byte.
        std::fs::write(&path, &full[..committed.len() + 11]).unwrap();
        let (resumed, chunks) = CampaignStore::open_or_create(&path, header).unwrap();
        assert_eq!(chunks.len(), 1);
        assert_eq!(resumed.cells_done(), 4);
        // The torn tail was truncated back to the last valid frame.
        assert_eq!(std::fs::read(&path).unwrap(), committed);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_mismatch_is_typed() {
        let path = tmp("mismatch");
        let mut store = CampaignStore::create(&path, test_header(4)).unwrap();
        store.append(&test_chunk(0, 0, 4)).unwrap();
        let mut other = test_header(4);
        other.seed ^= 1;
        let err = CampaignStore::open_or_create(&path, other).unwrap_err();
        assert!(matches!(err, StoreError::HeaderMismatch { .. }), "{err}");
        assert!(format!("{err}").contains("different campaign"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_bytes_are_typed_errors() {
        let path = tmp("flip");
        let header = test_header(4);
        let mut store = CampaignStore::create(&path, header.clone()).unwrap();
        store.append(&test_chunk(0, 0, 4)).unwrap();
        let clean = std::fs::read(&path).unwrap();
        // Flipping any byte of the committed prefix must never panic:
        // it either surfaces as a typed error or (when the flip mimics
        // a torn tail) heals by truncation.
        for i in 0..clean.len() {
            let mut dirty = clean.clone();
            dirty[i] ^= 0x5A;
            std::fs::write(&path, &dirty).unwrap();
            match CampaignStore::open_or_create(&path, header.clone()) {
                Ok((s, chunks)) => assert!(chunks.len() <= 1 && s.cells_done() <= 4),
                Err(StoreError::Codec(_) | StoreError::HeaderMismatch { .. }) => {}
                Err(e) => panic!("flip at {i}: unexpected {e}"),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_math() {
        let h = test_header(4);
        assert_eq!(h.total_cells(), 2 * 2 * 2 * 3);
        assert_eq!(h.total_chunks(), 6);
        assert_eq!(test_header(5).total_chunks(), 5);
        assert_eq!(h.bench().max_reps, BenchConfig::quick().max_reps);
        assert_eq!(h.retry(), RetryPolicy::default());
        let plan = h.fault.as_ref().unwrap().to_plan();
        assert_eq!(plan, FaultPlan::uniform(0.25, 9));
    }
}
