//! Seeded measurement-noise model.
//!
//! MPI time measurements are right-skewed: most repetitions sit near the
//! minimum, with occasional heavy outliers (OS noise, congestion bursts).
//! We model an observation as `base · exp(σ·Z)` with `Z ~ N(0,1)`, times
//! an outlier factor with small probability — a standard model for
//! benchmark timing noise. All randomness derives from SplitMix64
//! streams, so every grid cell's observations are a pure function of the
//! dataset seed and the cell coordinates.

use serde::{Deserialize, Serialize};

/// Multiplicative log-normal noise with outliers.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Log-normal sigma (≈ relative standard deviation for small values).
    pub sigma: f64,
    /// Probability of an outlier repetition.
    pub outlier_prob: f64,
    /// Multiplier applied to outlier repetitions.
    pub outlier_scale: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel { sigma: 0.03, outlier_prob: 0.01, outlier_scale: 4.0 }
    }
}

impl NoiseModel {
    /// A noise-free model (for calibration tests).
    pub fn none() -> NoiseModel {
        NoiseModel { sigma: 0.0, outlier_prob: 0.0, outlier_scale: 1.0 }
    }

    /// Draw one observation around `base_secs` from the stream.
    pub fn observe(&self, base_secs: f64, stream: &mut SplitMix64) -> f64 {
        let z = stream.next_gaussian();
        let mut v = base_secs * (self.sigma * z).exp();
        if self.outlier_prob > 0.0 && stream.next_f64() < self.outlier_prob {
            v *= self.outlier_scale;
        }
        v
    }
}

/// SplitMix64: tiny, fast, seedable; passes BigCrush for this use.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
    /// Cached second Box–Muller variate.
    spare: Option<f64>,
}

impl SplitMix64 {
    /// Create from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed, spare: None }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Standard normal via Box–Muller (pairs cached).
    pub fn next_gaussian(&mut self) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        // Avoid ln(0).
        let u1 = (1.0 - self.next_f64()).max(1e-300);
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let (s, c) = (2.0 * std::f64::consts::PI * u2).sin_cos();
        self.spare = Some(r * s);
        r * c
    }
}

/// Derive a stream for a grid cell from its coordinates (order-free
/// reproducibility).
pub fn cell_stream(seed: u64, uid: u32, nodes: u32, ppn: u32, msize: u64) -> SplitMix64 {
    let mut h = seed ^ 0xA076_1D64_78BD_642F;
    for v in [uid as u64, nodes as u64, ppn as u64, msize] {
        h ^= v.wrapping_mul(0xE703_7ED1_A0B4_28DB);
        h = h.rotate_left(23).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    SplitMix64::new(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_moments() {
        let mut s = SplitMix64::new(42);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let z = s.next_gaussian();
            sum += z;
            sum2 += z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn uniform_range() {
        let mut s = SplitMix64::new(7);
        for _ in 0..10_000 {
            let u = s.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn observations_center_on_base() {
        let nm = NoiseModel { sigma: 0.05, outlier_prob: 0.0, outlier_scale: 1.0 };
        let mut s = SplitMix64::new(3);
        let n = 20_000;
        let base = 1e-4;
        let mean: f64 = (0..n).map(|_| nm.observe(base, &mut s)).sum::<f64>() / n as f64;
        // E[exp(σZ)] = exp(σ²/2) ≈ 1.00125 — within a relative 1%.
        assert!((mean / base - 1.0).abs() < 0.01, "ratio {}", mean / base);
    }

    #[test]
    fn noise_free_model_is_exact() {
        let nm = NoiseModel::none();
        let mut s = SplitMix64::new(9);
        assert_eq!(nm.observe(0.5, &mut s), 0.5);
    }

    #[test]
    fn cell_streams_are_reproducible_and_distinct() {
        let a1 = cell_stream(1, 2, 3, 4, 5).next_u64();
        let a2 = cell_stream(1, 2, 3, 4, 5).next_u64();
        assert_eq!(a1, a2);
        let b = cell_stream(1, 2, 3, 4, 6).next_u64();
        assert_ne!(a1, b);
        let c = cell_stream(2, 2, 3, 4, 5).next_u64();
        assert_ne!(a1, c);
    }

    #[test]
    fn outliers_occur_at_configured_rate() {
        let nm = NoiseModel { sigma: 0.0, outlier_prob: 0.1, outlier_scale: 10.0 };
        let mut s = SplitMix64::new(11);
        let n = 50_000;
        let outliers = (0..n).filter(|_| nm.observe(1.0, &mut s) > 5.0).count();
        let rate = outliers as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }
}
