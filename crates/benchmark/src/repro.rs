//! The ReproMPI-style measurement loop: bounded repetitions under a hard
//! time budget, with summary statistics and consumed-time accounting.

use mpcp_simnet::{NetworkModel, Program, SimError, SimTime, Simulator, Topology};
use serde::{Deserialize, Serialize};

use crate::noise::{NoiseModel, SplitMix64};

/// Benchmark-loop configuration (the paper: ≤ 500 reps or ≤ 0.5 s /
/// 1 s per cell, whichever first).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BenchConfig {
    /// Maximum repetitions per cell.
    pub max_reps: u32,
    /// Hard per-cell time budget.
    pub budget: SimTime,
    /// Fixed per-repetition overhead (window-based process
    /// synchronization between repetitions).
    pub sync_per_rep: SimTime,
}

impl BenchConfig {
    /// The paper's setting for a machine: 0.5 s on SuperMUC-NG, 1 s on
    /// the TU Wien clusters, 500 reps max.
    pub fn paper_default(machine_name: &str) -> BenchConfig {
        let budget = if machine_name.eq_ignore_ascii_case("SuperMUC-NG") {
            SimTime::from_secs_f64(0.5)
        } else {
            SimTime::from_secs_f64(1.0)
        };
        BenchConfig { max_reps: 500, budget, sync_per_rep: SimTime::from_micros_f64(5.0) }
    }

    /// A cheap configuration for tests.
    pub fn quick() -> BenchConfig {
        BenchConfig {
            max_reps: 20,
            budget: SimTime::from_secs_f64(0.05),
            sync_per_rep: SimTime::from_micros_f64(5.0),
        }
    }
}

/// Summary of one measured cell.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Measurement {
    /// Noise-free simulated running time (ground truth).
    pub base: SimTime,
    /// Median of the noisy repetitions (what the paper's datasets hold).
    pub median_secs: f64,
    /// Mean of the repetitions.
    pub mean_secs: f64,
    /// Fastest repetition.
    pub min_secs: f64,
    /// Repetitions actually executed.
    pub reps: u32,
    /// Total simulated wall time spent benchmarking this cell
    /// (observations + synchronization overhead).
    pub consumed: SimTime,
}

/// Simulate one collective execution and wrap it in the ReproMPI loop.
///
/// The deterministic simulation runs once; the repetition loop draws
/// noisy observations around it, stopping at `max_reps` or when the time
/// budget is exhausted — mirroring how ReproMPI bounds benchmarking time
/// without re-running the (deterministic) collective.
pub fn measure(
    model: &NetworkModel,
    topo: &Topology,
    programs: &[Program],
    config: &BenchConfig,
    noise: &NoiseModel,
    stream: &mut SplitMix64,
) -> Result<Measurement, SimError> {
    let base = Simulator::new(model, topo).run(programs)?.makespan();
    Ok(summarize(base, config, noise, stream))
}

/// Median of an already-sorted, non-empty slice: middle element for odd
/// counts, arithmetic mean of the two middle elements for even counts.
fn median_of_sorted(sorted: &[f64]) -> f64 {
    debug_assert!(!sorted.is_empty(), "median of zero observations");
    if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        0.5 * (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2])
    }
}

/// The repetition loop around a known base time (exposed separately so
/// dataset generation can reuse one simulation per cell).
///
/// # Invariant: at least one observation
///
/// The loop **always records at least one observation**, even for
/// degenerate configurations — `max_reps == 0` is clamped to 1, and a
/// budget smaller than a single repetition (`budget < sync_per_rep`, or
/// even `budget == 0`) still admits the first observation because the
/// budget check only applies from the second repetition on. Every
/// [`Measurement`] therefore has `reps >= 1` and finite summary
/// statistics; `consumed` may exceed `budget` only by that single
/// guaranteed observation.
pub fn summarize(
    base: SimTime,
    config: &BenchConfig,
    noise: &NoiseModel,
    stream: &mut SplitMix64,
) -> Measurement {
    let mut obs: Vec<f64> = Vec::new();
    let mut consumed = SimTime::ZERO;
    let base_secs = base.as_secs_f64();
    while (obs.len() as u32) < config.max_reps.max(1) {
        let o = noise.observe(base_secs, stream);
        let cost = SimTime::from_secs_f64(o) + config.sync_per_rep;
        if !obs.is_empty() && consumed + cost > config.budget {
            break; // budget exhausted; keep at least one observation
        }
        consumed += cost;
        obs.push(o);
    }
    let mut sorted = obs.clone();
    // total_cmp: a NaN observation (impossible noise, corrupt input)
    // must order deterministically instead of panicking mid-benchmark.
    sorted.sort_by(f64::total_cmp);
    let median = median_of_sorted(&sorted);
    mpcp_obs::counter_add!("bench.cells", 1);
    mpcp_obs::counter_add!("bench.reps", obs.len() as u64);
    mpcp_obs::counter_add!("bench.consumed_ns", consumed.picos() / 1000);
    mpcp_obs::hist_record!("bench.cell.reps", obs.len() as u64);
    Measurement {
        base,
        median_secs: median,
        mean_secs: obs.iter().sum::<f64>() / obs.len() as f64,
        min_secs: sorted[0],
        reps: obs.len() as u32,
        consumed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcp_simnet::{Instr, Machine};

    #[test]
    fn small_cells_hit_max_reps() {
        // A 10 us operation measured with a 1 s budget: 500 reps fit.
        let config = BenchConfig::paper_default("Hydra");
        let mut stream = SplitMix64::new(1);
        let m = summarize(
            SimTime::from_micros_f64(10.0),
            &config,
            &NoiseModel::default(),
            &mut stream,
        );
        assert_eq!(m.reps, 500);
        assert!(m.consumed < config.budget);
    }

    #[test]
    fn large_cells_hit_the_budget() {
        // A 10 ms operation: 1 s budget allows ~100 reps, not 500.
        let config = BenchConfig::paper_default("Hydra");
        let mut stream = SplitMix64::new(2);
        let m = summarize(
            SimTime::from_secs_f64(0.01),
            &config,
            &NoiseModel::default(),
            &mut stream,
        );
        assert!(m.reps < 500, "reps {}", m.reps);
        assert!(m.reps > 50);
        assert!(m.consumed <= config.budget);
    }

    #[test]
    fn enormous_cells_still_get_one_rep() {
        let config = BenchConfig::paper_default("SuperMUC-NG");
        let mut stream = SplitMix64::new(3);
        let m = summarize(SimTime::from_secs_f64(30.0), &config, &NoiseModel::default(), &mut stream);
        assert_eq!(m.reps, 1);
    }

    #[test]
    fn median_tracks_base_under_noise() {
        let config = BenchConfig::paper_default("Hydra");
        let mut stream = SplitMix64::new(4);
        let base = SimTime::from_micros_f64(100.0);
        let m = summarize(base, &config, &NoiseModel::default(), &mut stream);
        let rel = (m.median_secs - base.as_secs_f64()).abs() / base.as_secs_f64();
        assert!(rel < 0.02, "median off by {rel}");
        assert!(m.min_secs <= m.median_secs);
        assert!(m.median_secs <= m.mean_secs * 1.5);
    }

    #[test]
    fn measure_end_to_end() {
        let machine = Machine::hydra();
        let topo = Topology::new(2, 1);
        let programs = vec![
            Program::from_instrs(vec![Instr::send(1, 1024, 0)]),
            Program::from_instrs(vec![Instr::recv(0, 1024, 0)]),
        ];
        let mut stream = SplitMix64::new(5);
        let m = measure(
            &machine.model,
            &topo,
            &programs,
            &BenchConfig::quick(),
            &NoiseModel::default(),
            &mut stream,
        )
        .unwrap();
        assert!(m.base.as_secs_f64() > 0.0);
        assert!(m.reps >= 1);
    }

    #[test]
    fn zero_max_reps_still_yields_one_observation() {
        // Degenerate config guard: max_reps == 0 is clamped to 1.
        let config = BenchConfig { max_reps: 0, ..BenchConfig::quick() };
        let mut stream = SplitMix64::new(6);
        let m = summarize(SimTime::from_micros_f64(10.0), &config, &NoiseModel::default(), &mut stream);
        assert_eq!(m.reps, 1);
        assert!(m.median_secs.is_finite() && m.median_secs > 0.0);
    }

    #[test]
    fn budget_below_sync_overhead_still_yields_one_observation() {
        // budget < sync_per_rep: the first observation is always taken;
        // consumed may exceed the budget by exactly that one rep.
        let config = BenchConfig {
            max_reps: 500,
            budget: SimTime(1), // 1 ps
            sync_per_rep: SimTime::from_micros_f64(5.0),
        };
        let mut stream = SplitMix64::new(7);
        let m = summarize(SimTime::from_micros_f64(10.0), &config, &NoiseModel::default(), &mut stream);
        assert_eq!(m.reps, 1);
        assert!(m.consumed > config.budget);
        assert!(m.median_secs.is_finite());

        let zero = BenchConfig { budget: SimTime::ZERO, ..config };
        let mut stream = SplitMix64::new(8);
        let m = summarize(SimTime::from_micros_f64(10.0), &zero, &NoiseModel::default(), &mut stream);
        assert_eq!(m.reps, 1);
    }

    #[test]
    fn median_handles_even_and_odd_counts() {
        // Odd: middle element. Even: mean of the two middle elements.
        assert_eq!(median_of_sorted(&[1.0, 2.0, 5.0]), 2.0);
        assert_eq!(median_of_sorted(&[1.0, 2.0, 4.0, 10.0]), 3.0);
        assert_eq!(median_of_sorted(&[7.0]), 7.0);
        assert_eq!(median_of_sorted(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn even_rep_medians_match_by_construction() {
        // An even-rep run's median must equal the mean of the two middle
        // sorted observations (regression check on the median math).
        let config = BenchConfig { max_reps: 4, ..BenchConfig::quick() };
        let noise = NoiseModel::default();
        let base = SimTime::from_micros_f64(10.0);
        let mut s1 = SplitMix64::new(12);
        let m = summarize(base, &config, &noise, &mut s1);
        assert_eq!(m.reps, 4);
        let mut s2 = SplitMix64::new(12);
        let mut obs: Vec<f64> = (0..4).map(|_| noise.observe(base.as_secs_f64(), &mut s2)).collect();
        obs.sort_by(f64::total_cmp);
        assert_eq!(m.median_secs, 0.5 * (obs[1] + obs[2]));
    }

    #[test]
    fn supermuc_budget_is_half_a_second() {
        assert_eq!(BenchConfig::paper_default("SuperMUC-NG").budget, SimTime::from_secs_f64(0.5));
        assert_eq!(BenchConfig::paper_default("Hydra").budget, SimTime::from_secs_f64(1.0));
    }
}
