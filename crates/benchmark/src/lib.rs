//! # mpcp-benchmark — time-budgeted MPI benchmarking on the simulator
//!
//! Reproduces the measurement methodology of the paper's benchmark step,
//! which uses the ReproMPI suite: every `(algorithm-configuration,
//! message size, nodes, ppn)` cell is measured for **at most 500
//! repetitions or a fixed time budget** (0.5 s on SuperMUC-NG, 1 s on
//! Hydra/Jupiter), whichever is hit first — the paper's "predictable
//! training time" requirement. Total consumed benchmark time is
//! accounted, so the paper's 3-hour-bound / 56-minutes-actual check on
//! SuperMUC-NG can be reproduced.
//!
//! The discrete-event simulator is deterministic, so run-to-run variance
//! is injected here: a seeded multiplicative log-normal noise model with
//! occasional outliers (network jitter, OS interference), applied around
//! the simulated base time. Each grid cell derives its own RNG stream
//! from a content hash, making datasets reproducible regardless of
//! generation order or parallelism.
//!
//! [`datasets`] defines the paper's eight datasets (Table II) with the
//! train/test node splits of Table III.
//!
//! [`fault`] adds deterministic fault injection: a seeded [`FaultPlan`]
//! makes cells fail, time out, or black out whole node counts, with
//! bounded budget-charged retries — producing the partial grids the
//! selection layer must degrade gracefully on.

#![forbid(unsafe_code)]

pub mod campaign;
pub mod cells;
pub mod datasets;
pub mod fault;
pub mod noise;
pub mod record;
pub mod repro;
pub mod store;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport};
pub use cells::{Cell, CellGrid, CellMeasurement};
pub use datasets::{DatasetResult, DatasetSpec, LibKind};
pub use fault::{CellFate, CellOutcome, CellResult, FaultPlan, FaultSummary, RetryPolicy};
pub use noise::NoiseModel;
pub use record::Record;
pub use repro::{BenchConfig, Measurement};
pub use store::{CampaignStore, ChunkData, StoreError, StoreHeader};
