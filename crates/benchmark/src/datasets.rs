//! The paper's eight datasets (Table II) and their generation.
//!
//! Each dataset fixes a collective, an MPI library, and a machine, and
//! sweeps `#nodes × #ppn × #msizes × #algorithm-configurations`. Node
//! lists are the union of the Table III training and test node counts
//! (the paper's Table II lists 11 node counts for Hydra while its
//! Table III training set adds node count 20 — we follow Table III; see
//! DESIGN.md "Known deviations").

use std::path::Path;

use rayon::prelude::*;

use mpcp_collectives::{Collective, MpiLibrary};
use mpcp_collectives::decision::TuningGrid;
use mpcp_simnet::{Machine, SimTime, Simulator, Topology};

use crate::cells::{measure_grid_cell, CellGrid, CellMeasurement};
use crate::fault::{FaultPlan, FaultSummary, RetryPolicy};
use crate::noise::NoiseModel;
use crate::record::{read_csv, write_csv, Record};
use crate::repro::BenchConfig;

/// Which simulated MPI library a dataset uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LibKind {
    /// Open MPI 4.0.2 with the fixed decision rules.
    OpenMpi,
    /// Intel MPI 2019 with the machine-tuned decision table.
    IntelMpi,
}

impl LibKind {
    /// Library name as printed in Table II.
    pub fn name(&self) -> &'static str {
        match self {
            LibKind::OpenMpi => "Open MPI",
            LibKind::IntelMpi => "Intel MPI",
        }
    }

    /// Library version as printed in Table II.
    pub fn version(&self) -> &'static str {
        match self {
            LibKind::OpenMpi => "4.0.2",
            LibKind::IntelMpi => "2019",
        }
    }
}

/// A dataset definition (one row of Table II).
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Dataset id, `d1`..`d8`.
    pub id: &'static str,
    /// The collective benchmarked.
    pub coll: Collective,
    /// Library under test.
    pub lib: LibKind,
    /// Machine profile.
    pub machine: Machine,
    /// All node counts (training ∪ test, Table III).
    pub nodes: Vec<u32>,
    /// Processes-per-node values.
    pub ppn: Vec<u32>,
    /// Message sizes in bytes.
    pub msizes: Vec<u64>,
    /// Noise seed.
    pub seed: u64,
}

/// The paper's fixed-size-collective message grid.
pub fn paper_msizes() -> Vec<u64> {
    vec![1, 16, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 512 << 10, 1 << 20, 4 << 20]
}

/// The 8-point message grid used by d6 and d8 (Fig. 8's axis ends at
/// 512 KiB).
pub fn short_msizes() -> Vec<u64> {
    vec![1, 16, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 512 << 10]
}

fn hydra_nodes() -> Vec<u32> {
    vec![4, 7, 8, 13, 16, 19, 20, 24, 27, 32, 35, 36]
}

fn hydra_ppn() -> Vec<u32> {
    vec![1, 4, 8, 10, 16, 17, 20, 24, 28, 32]
}

fn jupiter_nodes() -> Vec<u32> {
    vec![4, 7, 8, 13, 16, 19, 20, 24, 27, 32]
}

fn jupiter_ppn() -> Vec<u32> {
    vec![1, 2, 4, 8, 10, 12, 16]
}

fn supermuc_nodes() -> Vec<u32> {
    vec![20, 27, 32, 35, 48]
}

fn supermuc_ppn() -> Vec<u32> {
    vec![1, 8, 16, 24, 48]
}

impl DatasetSpec {
    /// d1: `MPI_Bcast`, Open MPI, Hydra.
    pub fn d1() -> DatasetSpec {
        DatasetSpec {
            id: "d1",
            coll: Collective::Bcast,
            lib: LibKind::OpenMpi,
            machine: Machine::hydra(),
            nodes: hydra_nodes(),
            ppn: hydra_ppn(),
            msizes: paper_msizes(),
            seed: 0xD1,
        }
    }

    /// d2: `MPI_Allreduce`, Open MPI, Hydra.
    pub fn d2() -> DatasetSpec {
        DatasetSpec {
            id: "d2",
            coll: Collective::Allreduce,
            lib: LibKind::OpenMpi,
            machine: Machine::hydra(),
            nodes: hydra_nodes(),
            ppn: hydra_ppn(),
            msizes: paper_msizes(),
            seed: 0xD2,
        }
    }

    /// d3: `MPI_Bcast`, Open MPI, Jupiter.
    pub fn d3() -> DatasetSpec {
        DatasetSpec {
            id: "d3",
            coll: Collective::Bcast,
            lib: LibKind::OpenMpi,
            machine: Machine::jupiter(),
            nodes: jupiter_nodes(),
            ppn: jupiter_ppn(),
            msizes: paper_msizes(),
            seed: 0xD3,
        }
    }

    /// d4: `MPI_Allreduce`, Open MPI, Jupiter.
    pub fn d4() -> DatasetSpec {
        DatasetSpec {
            id: "d4",
            coll: Collective::Allreduce,
            lib: LibKind::OpenMpi,
            machine: Machine::jupiter(),
            nodes: jupiter_nodes(),
            ppn: jupiter_ppn(),
            msizes: paper_msizes(),
            seed: 0xD4,
        }
    }

    /// d5: `MPI_Allreduce`, Intel MPI, Hydra.
    pub fn d5() -> DatasetSpec {
        DatasetSpec {
            id: "d5",
            coll: Collective::Allreduce,
            lib: LibKind::IntelMpi,
            machine: Machine::hydra(),
            nodes: hydra_nodes(),
            ppn: hydra_ppn(),
            msizes: paper_msizes(),
            seed: 0xD5,
        }
    }

    /// d6: `MPI_Alltoall`, Intel MPI, Hydra.
    pub fn d6() -> DatasetSpec {
        DatasetSpec {
            id: "d6",
            coll: Collective::Alltoall,
            lib: LibKind::IntelMpi,
            machine: Machine::hydra(),
            nodes: hydra_nodes(),
            ppn: hydra_ppn(),
            msizes: short_msizes(),
            seed: 0xD6,
        }
    }

    /// d7: `MPI_Bcast`, Intel MPI, Hydra.
    pub fn d7() -> DatasetSpec {
        DatasetSpec {
            id: "d7",
            coll: Collective::Bcast,
            lib: LibKind::IntelMpi,
            machine: Machine::hydra(),
            nodes: hydra_nodes(),
            ppn: hydra_ppn(),
            msizes: paper_msizes(),
            seed: 0xD7,
        }
    }

    /// d8: `MPI_Bcast`, Open MPI, SuperMUC-NG.
    pub fn d8() -> DatasetSpec {
        DatasetSpec {
            id: "d8",
            coll: Collective::Bcast,
            lib: LibKind::OpenMpi,
            machine: Machine::supermuc_ng(),
            nodes: supermuc_nodes(),
            ppn: supermuc_ppn(),
            msizes: short_msizes(),
            seed: 0xD8,
        }
    }

    /// All eight datasets in Table II order.
    pub fn all() -> Vec<DatasetSpec> {
        vec![
            Self::d1(),
            Self::d2(),
            Self::d3(),
            Self::d4(),
            Self::d5(),
            Self::d6(),
            Self::d7(),
            Self::d8(),
        ]
    }

    /// Look up by id (`"d1"`..`"d8"`).
    pub fn by_id(id: &str) -> Option<DatasetSpec> {
        Self::all().into_iter().find(|d| d.id == id)
    }

    /// A miniature dataset for tests: tiny grid, Open MPI allreduce.
    pub fn tiny_for_tests() -> DatasetSpec {
        DatasetSpec {
            id: "tiny",
            coll: Collective::Allreduce,
            lib: LibKind::OpenMpi,
            machine: Machine::hydra(),
            nodes: vec![2, 3, 4],
            ppn: vec![1, 2],
            msizes: vec![16, 4 << 10, 256 << 10],
            seed: 0x7E57,
        }
    }

    /// Build the library this dataset benchmarks (Intel MPI runs its
    /// tuning sweep here; pass `None` to use the vendor-default grid).
    pub fn library(&self, intel_grid: Option<TuningGrid>) -> MpiLibrary {
        match self.lib {
            LibKind::OpenMpi => MpiLibrary::open_mpi_4_0_2(),
            LibKind::IntelMpi => {
                let grid = intel_grid.unwrap_or_else(|| {
                    TuningGrid::vendor_default(self.machine.max_nodes, self.machine.max_ppn)
                });
                MpiLibrary::intel_mpi_2019_for(&self.machine, grid, &[self.coll])
            }
        }
    }

    /// Number of grid cells (`#configs × #nodes × #ppn × #msizes`) —
    /// Table II's `#samples`.
    pub fn sample_count(&self, library: &MpiLibrary) -> usize {
        library.configs(self.coll).len() * self.nodes.len() * self.ppn.len() * self.msizes.len()
    }

    /// The canonical cell-id mapping for this dataset's grid (shared by
    /// [`DatasetSpec::generate_with_faults`] and the campaign runner).
    pub fn cell_grid(&self, library: &MpiLibrary) -> CellGrid {
        CellGrid::new(
            self.nodes.clone(),
            self.ppn.clone(),
            self.msizes.clone(),
            library.configs(self.coll).len(),
        )
    }

    /// Benchmark the full grid.
    ///
    /// Every cell simulates the collective once (deterministic) and runs
    /// the ReproMPI repetition loop around it with cell-seeded noise.
    pub fn generate(&self, library: &MpiLibrary, bench: &BenchConfig) -> DatasetResult {
        self.generate_with_faults(library, bench, None, &RetryPolicy::default())
    }

    /// Benchmark the grid under a fault plan: cells may fail, time out,
    /// or be blacked out, and failed attempts are retried per `retry`.
    ///
    /// Passing `None` (or a no-op plan) produces records **bit-identical**
    /// to [`DatasetSpec::generate`] — fault fates draw from a stream
    /// independent of the measurement noise. Cells lost to faults are
    /// simply absent from `records`; the accounting lives in
    /// [`DatasetResult::faults`]. Simulation errors are likewise counted
    /// per cell instead of aborting the whole grid.
    pub fn generate_with_faults(
        &self,
        library: &MpiLibrary,
        bench: &BenchConfig,
        plan: Option<&FaultPlan>,
        retry: &RetryPolicy,
    ) -> DatasetResult {
        let noise = NoiseModel::default();
        let configs = library.configs(self.coll);
        let mut grid_span = mpcp_obs::span("bench.grid")
            .attr("dataset", self.id)
            .attr("configs", configs.len());
        let wall = mpcp_obs::maybe_now();
        // The canonical cell enumeration shared with the campaign runner:
        // parallelize over (nodes, ppn) topology groups, each worker
        // walking its group's contiguous cell-id range in order.
        let grid = self.cell_grid(library);
        let groups: Vec<usize> = (0..grid.topo_groups()).collect();
        let cells: Vec<(Vec<Record>, SimTime, FaultSummary)> = groups
            .par_iter()
            .map(|&g| {
                let (n, ppn) = grid.group(g);
                let _cell_span = mpcp_obs::span("measure")
                    .attr("nodes", n)
                    .attr("ppn", ppn)
                    .attr("cells", configs.len() * self.msizes.len());
                let topo = Topology::new(n, ppn);
                let sim = Simulator::new(&self.machine.model, &topo);
                let mut records = Vec::with_capacity(configs.len() * self.msizes.len());
                let mut consumed = SimTime::ZERO;
                let mut faults = FaultSummary::default();
                for cell in grid.group_cells(g) {
                    let cfg = &configs[cell.uid as usize];
                    match measure_grid_cell(
                        &sim, &topo, cfg, cell, self.seed, bench, &noise, plan, retry,
                    ) {
                        CellMeasurement::Measured { record, result } => {
                            faults.absorb(&result);
                            consumed += result.consumed;
                            records.push(record);
                        }
                        CellMeasurement::Lost(result) => {
                            faults.absorb(&result);
                            consumed += result.consumed;
                        }
                        CellMeasurement::SimError(e) => {
                            // A broken cell must not abort the grid:
                            // count it and move on.
                            eprintln!(
                                "warning: {} {} n={n} ppn={ppn} m={}: {e}",
                                self.id,
                                cfg.label(),
                                cell.msize
                            );
                            faults.sim_errors += 1;
                        }
                    }
                }
                (records, consumed, faults)
            })
            .collect();
        let mut records = Vec::new();
        let mut total_bench = SimTime::ZERO;
        let mut faults = FaultSummary::default();
        for (r, c, f) in cells {
            records.extend(r);
            total_bench += c;
            faults.merge(&f);
        }
        mpcp_obs::counter_add!("bench.cells_failed", faults.cells_failed as u64);
        grid_span.set_attr("records", records.len());
        grid_span.set_attr("cells_failed", faults.cells_failed);
        grid_span.set_attr("cells_timed_out", faults.cells_timed_out);
        grid_span.set_attr("sim_bench_secs", total_bench.as_secs_f64());
        if let Some(t0) = wall {
            let secs = t0.elapsed().as_secs_f64();
            if secs > 0.0 {
                // Grid throughput: measured cells per wall-clock second.
                mpcp_obs::gauge_set!("bench.cells_per_sec", records.len() as f64 / secs);
            }
        }
        DatasetResult { id: self.id, records, total_bench, faults }
    }

    /// Generate, caching the records as CSV under `cache_dir` (the
    /// library and its decision logic are rebuilt deterministically and
    /// are not cached).
    pub fn generate_cached(
        &self,
        library: &MpiLibrary,
        bench: &BenchConfig,
        cache_dir: &Path,
    ) -> DatasetResult {
        let path = cache_dir.join(format!("{}.csv", self.id));
        if let Ok(records) = read_csv(&path) {
            if records.len() == self.sample_count(library) {
                let faults = FaultSummary { cells_ok: records.len(), ..FaultSummary::default() };
                return DatasetResult { id: self.id, records, total_bench: SimTime::ZERO, faults };
            }
        }
        let result = self.generate(library, bench);
        if let Err(e) = write_csv(&path, &result.records) {
            eprintln!("warning: could not cache {}: {e}", path.display());
        }
        result
    }
}

/// A generated dataset.
#[derive(Clone, Debug)]
pub struct DatasetResult {
    /// Dataset id.
    pub id: &'static str,
    /// All measured cells (cells lost to faults are absent).
    pub records: Vec<Record>,
    /// Total simulated benchmarking time across the grid (zero when
    /// loaded from cache).
    pub total_bench: SimTime,
    /// Fault accounting for the campaign (all-ok without a fault plan).
    pub faults: FaultSummary,
}

impl DatasetResult {
    /// Upper bound on benchmarking time: `#cells × budget` (the paper's
    /// "3 hours" bound for SuperMUC-NG).
    pub fn budget_bound(&self, bench: &BenchConfig) -> SimTime {
        SimTime(self.records.len() as u64 * bench.budget.picos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_dataset_shapes() {
        let all = DatasetSpec::all();
        assert_eq!(all.len(), 8);
        let d1 = &all[0];
        assert_eq!(d1.nodes.len(), 12); // Table III union (see DESIGN.md)
        assert_eq!(d1.ppn.len(), 10);
        assert_eq!(d1.msizes.len(), 10);
        let d3 = DatasetSpec::by_id("d3").unwrap();
        assert_eq!(d3.nodes.len(), 10);
        assert_eq!(d3.ppn.len(), 7);
        let d8 = DatasetSpec::by_id("d8").unwrap();
        assert_eq!(d8.nodes.len(), 5);
        assert_eq!(d8.ppn.len(), 5);
        assert_eq!(d8.msizes.len(), 8);
    }

    #[test]
    fn ppn_respects_machine_limits() {
        for spec in DatasetSpec::all() {
            for &ppn in &spec.ppn {
                assert!(ppn <= spec.machine.max_ppn, "{}: ppn {ppn}", spec.id);
            }
            for &n in &spec.nodes {
                assert!(n <= spec.machine.max_nodes, "{}: nodes {n}", spec.id);
            }
        }
    }

    #[test]
    fn tiny_dataset_generates() {
        let spec = DatasetSpec::tiny_for_tests();
        let lib = spec.library(None);
        let result = spec.generate(&lib, &BenchConfig::quick());
        assert_eq!(result.records.len(), spec.sample_count(&lib));
        for r in &result.records {
            assert!(r.runtime > 0.0, "cell {r:?}");
            assert!(r.base > 0.0);
            assert!(r.reps >= 1);
            // Noise is mild: median within 50% of truth.
            assert!((r.runtime - r.base).abs() / r.base < 0.5);
        }
        assert!(result.total_bench.as_secs_f64() > 0.0);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::tiny_for_tests();
        let lib = spec.library(None);
        let a = spec.generate(&lib, &BenchConfig::quick());
        let b = spec.generate(&lib, &BenchConfig::quick());
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn cache_roundtrip() {
        let spec = DatasetSpec::tiny_for_tests();
        let lib = spec.library(None);
        let dir = std::env::temp_dir().join("mpcp_ds_cache_test");
        std::fs::remove_dir_all(&dir).ok();
        let a = spec.generate_cached(&lib, &BenchConfig::quick(), &dir);
        let b = spec.generate_cached(&lib, &BenchConfig::quick(), &dir);
        assert_eq!(a.records, b.records);
        assert_eq!(b.total_bench, SimTime::ZERO); // loaded from cache
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn noop_fault_plan_is_bit_identical() {
        let spec = DatasetSpec::tiny_for_tests();
        let lib = spec.library(None);
        let clean = spec.generate(&lib, &BenchConfig::quick());
        let plan = FaultPlan::none();
        let faulty = spec.generate_with_faults(
            &lib,
            &BenchConfig::quick(),
            Some(&plan),
            &RetryPolicy::default(),
        );
        assert_eq!(clean.records, faulty.records);
        assert_eq!(faulty.faults.cells_failed, 0);
        assert_eq!(faulty.faults.cells_ok, faulty.records.len());
    }

    #[test]
    fn fault_plan_yields_a_partial_grid() {
        let spec = DatasetSpec::tiny_for_tests();
        let lib = spec.library(None);
        let plan = FaultPlan::uniform(0.3, 42);
        let r = spec.generate_with_faults(
            &lib,
            &BenchConfig::quick(),
            Some(&plan),
            &crate::fault::RetryPolicy::no_retries(),
        );
        let total = spec.sample_count(&lib);
        assert_eq!(r.faults.total(), total);
        assert_eq!(r.records.len(), r.faults.cells_ok);
        assert!(r.records.len() < total, "some cells must fail at 30%");
        assert!(r.records.len() > total / 3, "most cells must survive");
        // Deterministic: same plan, same partial grid.
        let again = spec.generate_with_faults(
            &lib,
            &BenchConfig::quick(),
            Some(&plan),
            &crate::fault::RetryPolicy::no_retries(),
        );
        assert_eq!(r.records, again.records);
        assert_eq!(r.faults, again.faults);
    }

    #[test]
    fn retries_recover_cells_lost_to_transient_failures() {
        let spec = DatasetSpec::tiny_for_tests();
        let lib = spec.library(None);
        let plan = FaultPlan::uniform(0.3, 42);
        let bare = spec.generate_with_faults(
            &lib,
            &BenchConfig::quick(),
            Some(&plan),
            &crate::fault::RetryPolicy::no_retries(),
        );
        let retried = spec.generate_with_faults(
            &lib,
            &BenchConfig::quick(),
            Some(&plan),
            &RetryPolicy::default(),
        );
        assert!(
            retried.records.len() > bare.records.len(),
            "retries must recover transient failures ({} vs {})",
            retried.records.len(),
            bare.records.len()
        );
        assert!(retried.faults.retries > 0);
    }

    #[test]
    fn blackout_removes_a_whole_node_count() {
        let spec = DatasetSpec::tiny_for_tests();
        let lib = spec.library(None);
        let plan = FaultPlan { blackout_nodes: vec![3], ..FaultPlan::none() };
        let r = spec.generate_with_faults(
            &lib,
            &BenchConfig::quick(),
            Some(&plan),
            &RetryPolicy::default(),
        );
        assert!(r.records.iter().all(|rec| rec.nodes != 3));
        assert!(r.records.iter().any(|rec| rec.nodes == 2));
        let per_node = spec.sample_count(&lib) / spec.nodes.len();
        assert_eq!(r.faults.cells_failed, per_node);
    }

    #[test]
    fn budget_bound_covers_consumed() {
        let spec = DatasetSpec::tiny_for_tests();
        let lib = spec.library(None);
        let bench = BenchConfig::quick();
        let result = spec.generate(&lib, &bench);
        assert!(result.total_bench <= result.budget_bound(&bench));
    }
}
