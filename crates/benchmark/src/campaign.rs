//! Work-stealing parallel campaign runner over the fault-aware
//! measurement path.
//!
//! A campaign is a dataset grid measured chunk by chunk into a
//! checkpointed [`crate::store::CampaignStore`]. The runner owns its
//! threads (`std::thread::scope`, no pool dependency) and steals work at
//! **chunk** granularity:
//!
//! * The canonical cell order ([`crate::cells::CellGrid`]) is cut into
//!   fixed-size chunks of `checkpoint_every` cells. Chunk indices are
//!   dealt round-robin onto per-worker deques.
//! * A worker pops its own deque from the front; when empty, it steals
//!   from the *back* of the most-loaded victim (classic Chase–Lev
//!   shape, here with plain mutexed deques — contention is one lock op
//!   per chunk, and a chunk is thousands of simulator runs).
//! * Finished chunks are sent to the committer, which buffers
//!   out-of-order arrivals and appends to the store strictly in chunk
//!   order. Each append is flushed — the frame boundary is the
//!   checkpoint a crash resumes from.
//!
//! # Why N threads ≡ 1 thread, byte for byte
//!
//! Scheduling decides only *who* measures a chunk and *when* — never
//! what the chunk contains. Every cell's noise and fault streams are
//! derived from `(campaign seed, cell coordinates)` alone
//! ([`crate::noise::cell_stream`], [`crate::fault::fault_stream`] — the
//! PR 3 salting pattern, extended here to the whole campaign), each
//! chunk is a pure function of its cell-id range, and the committer
//! serializes chunks in index order. The store bytes are therefore a
//! pure function of `(header, grid)`, which the differential
//! determinism suite (`tests/campaign_determinism.rs`) pins at 1/2/4/8
//! threads. Nothing wall-clock-derived is ever written (enforced
//! statically by the `no-wallclock-in-deterministic` lint rule).

use std::collections::{BTreeMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};

use mpcp_collectives::{AlgorithmConfig, MpiLibrary};
use mpcp_simnet::{Machine, SimTime, Simulator, Topology};

use crate::cells::{measure_grid_cell, CellGrid, CellMeasurement};
use crate::datasets::DatasetSpec;
use crate::fault::{FaultPlan, FaultSummary, RetryPolicy};
use crate::noise::NoiseModel;
use crate::record::Record;
use crate::repro::BenchConfig;
use crate::store::{fate, CampaignStore, ChunkData, StoreError, StoreHeader};

/// Default checkpoint granularity: cells per committed chunk.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 256;

/// How a campaign run is executed (what it *measures* lives in the
/// dataset spec and the store header, never here — these knobs must not
/// influence result bytes except through the chunk size).
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Worker threads (clamped to >= 1). Does not affect result bytes.
    pub threads: usize,
    /// Cells per chunk / checkpoint (clamped to >= 1). Part of the
    /// store header: two stores are only byte-comparable at equal
    /// chunk size.
    pub checkpoint_every: u64,
    /// Resume from an existing store file instead of starting fresh.
    pub resume: bool,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig { threads: 1, checkpoint_every: DEFAULT_CHECKPOINT_EVERY, resume: false }
    }
}

/// What a campaign run did.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// All measured records, in canonical cell order (resumed chunks
    /// included).
    pub records: Vec<Record>,
    /// Merged fault accounting across the whole store.
    pub faults: FaultSummary,
    /// Total simulated benchmark time across the whole store.
    pub total_bench: SimTime,
    /// Cells in the campaign grid.
    pub cells_total: u64,
    /// Cells recovered from the store instead of re-measured.
    pub cells_resumed: u64,
    /// Chunks in the campaign grid.
    pub chunks_total: u64,
    /// Chunks recovered from the store.
    pub chunks_resumed: u64,
    /// Chunks stolen off another worker's deque this run.
    pub steals: u64,
}

/// Per-worker chunk deques plus the steal counter.
struct StealQueues {
    queues: Vec<Mutex<VecDeque<u64>>>,
    steals: AtomicU64,
}

impl StealQueues {
    /// Deal the chunk range round-robin onto `workers` deques, so every
    /// worker starts with a spread of the remaining work.
    fn deal(first_chunk: u64, total_chunks: u64, workers: usize) -> StealQueues {
        let mut queues: Vec<VecDeque<u64>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, chunk) in (first_chunk..total_chunks).enumerate() {
            queues[i % workers].push_back(chunk);
        }
        StealQueues {
            queues: queues.into_iter().map(Mutex::new).collect(),
            steals: AtomicU64::new(0),
        }
    }

    /// Next chunk for worker `w`: own deque front first, then steal
    /// from the back of the most-loaded victim.
    fn next(&self, w: usize) -> Option<u64> {
        let own = self
            .queues[w]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front();
        if own.is_some() {
            return own;
        }
        loop {
            // Pick the victim with the most remaining chunks.
            let mut victim = None;
            let mut most = 0usize;
            for (v, q) in self.queues.iter().enumerate() {
                if v == w {
                    continue;
                }
                let len = q.lock().unwrap_or_else(|e| e.into_inner()).len();
                if len > most {
                    most = len;
                    victim = Some(v);
                }
            }
            let v = victim?;
            // The victim may have drained between the scan and the
            // steal; rescan rather than give up.
            let stolen = self.queues[v]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_back();
            if stolen.is_some() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                mpcp_obs::counter_add!("campaign.steals", 1);
                return stolen;
            }
        }
    }
}

/// Measure one chunk: the contiguous cell-id range
/// `[index·chunk_size, min((index+1)·chunk_size, |grid|))`, walked in
/// canonical order. Pure function of `(grid, seed, configs, machine,
/// bench, plan, retry, index)` — the determinism anchor.
#[allow(clippy::too_many_arguments)]
fn measure_chunk(
    grid: &CellGrid,
    configs: &[AlgorithmConfig],
    machine: &Machine,
    seed: u64,
    bench: &BenchConfig,
    noise: &NoiseModel,
    plan: Option<&FaultPlan>,
    retry: &RetryPolicy,
    index: u64,
    chunk_size: u64,
) -> ChunkData {
    let start = index * chunk_size;
    let end = (start + chunk_size).min(grid.len());
    let mut chunk = ChunkData { index, start, ..ChunkData::default() };
    let mut span = mpcp_obs::span("campaign.chunk").attr("index", index);
    let mut id = start;
    while id < end {
        // One simulator per (nodes, ppn) run — cells are topo-major, so
        // equal-topology cells are contiguous within the chunk.
        let head = grid.cell(id);
        let topo = Topology::new(head.nodes, head.ppn);
        let sim = Simulator::new(&machine.model, &topo);
        while id < end {
            let cell = grid.cell(id);
            if cell.nodes != head.nodes || cell.ppn != head.ppn {
                break;
            }
            let cfg = &configs[cell.uid as usize];
            chunk.nodes.push(cell.nodes);
            chunk.ppn.push(cell.ppn);
            chunk.msizes.push(cell.msize);
            chunk.uids.push(cell.uid);
            match measure_grid_cell(&sim, &topo, cfg, cell, seed, bench, noise, plan, retry) {
                CellMeasurement::Measured { record, result } => {
                    chunk.fates.push(fate::OK);
                    chunk.alg_ids.push(record.alg_id);
                    chunk.excluded.push(u8::from(record.excluded));
                    chunk.runtimes.push(record.runtime);
                    chunk.bases.push(record.base);
                    chunk.reps.push(record.reps);
                    chunk.retries += u64::from(result.attempts - 1);
                    chunk.retry_picos += result.retry_overhead.picos();
                    chunk.consumed_picos += result.consumed.picos();
                }
                CellMeasurement::Lost(result) => {
                    chunk.fates.push(match result.outcome {
                        crate::fault::CellOutcome::TimedOut => fate::TIMED_OUT,
                        _ => fate::FAILED,
                    });
                    chunk.retries += u64::from(result.attempts - 1);
                    chunk.retry_picos += result.retry_overhead.picos();
                    chunk.consumed_picos += result.consumed.picos();
                }
                CellMeasurement::SimError(e) => {
                    chunk.fates.push(fate::SIM_ERROR);
                    eprintln!(
                        "warning: campaign cell {} ({} n={} ppn={} m={}): {e}",
                        cell.id,
                        cfg.label(),
                        cell.nodes,
                        cell.ppn,
                        cell.msize
                    );
                }
            }
            id += 1;
        }
    }
    span.set_attr("cells", chunk.cells());
    span.set_attr("ok", chunk.ok_cells());
    chunk
}

/// Run (or resume) a campaign over `spec`'s grid into the store at
/// `store_path`.
///
/// With `cfg.resume` the store is opened and every committed chunk is
/// recovered (a torn tail from a crash is truncated away); otherwise
/// the file is created fresh. The remaining chunks are measured on
/// `cfg.threads` work-stealing workers and committed strictly in chunk
/// order, so the final file is byte-identical regardless of thread
/// count or interruption history.
pub fn run_campaign(
    spec: &DatasetSpec,
    library: &MpiLibrary,
    bench: &BenchConfig,
    plan: Option<&FaultPlan>,
    retry: &RetryPolicy,
    cfg: &CampaignConfig,
    store_path: &Path,
) -> Result<CampaignReport, StoreError> {
    let threads = cfg.threads.max(1);
    let chunk_size = cfg.checkpoint_every.max(1);
    let configs = library.configs(spec.coll);
    let grid = spec.cell_grid(library);
    let header = StoreHeader::new(
        spec.id,
        spec.coll.mpi_name(),
        spec.lib.name(),
        spec.lib.version(),
        &spec.machine.name,
        spec.seed,
        spec.nodes.clone(),
        spec.ppn.clone(),
        spec.msizes.clone(),
        configs.len(),
        chunk_size,
        bench,
        retry,
        plan,
    );
    let cells_total = grid.len();
    let chunks_total = header.total_chunks();

    let mut span = mpcp_obs::span("campaign.run")
        .attr("dataset", spec.id)
        .attr("threads", threads)
        .attr("chunks", chunks_total);
    let wall = mpcp_obs::maybe_now();

    let (mut store, resumed) = if cfg.resume {
        CampaignStore::open_or_create(store_path, header)?
    } else {
        (CampaignStore::create(store_path, header)?, Vec::new())
    };
    let chunks_resumed = resumed.len() as u64;
    let cells_resumed = store.cells_done();
    mpcp_obs::counter_add!("campaign.cells_resumed", cells_resumed);

    let mut records: Vec<Record> = Vec::new();
    let mut faults = FaultSummary::default();
    let mut consumed_picos = 0u64;
    for chunk in &resumed {
        records.extend(chunk.to_records());
        faults.merge(&chunk.summary());
        consumed_picos += chunk.consumed_picos;
    }

    let noise = NoiseModel::default();
    let queues = StealQueues::deal(chunks_resumed, chunks_total, threads);
    let mut commit_error: Option<StoreError> = None;
    if chunks_resumed < chunks_total {
        let (tx, rx) = mpsc::channel::<(u64, ChunkData)>();
        std::thread::scope(|scope| {
            for w in 0..threads {
                let tx = tx.clone();
                let queues = &queues;
                let grid = &grid;
                let machine = &spec.machine;
                let noise = &noise;
                scope.spawn(move || {
                    while let Some(index) = queues.next(w) {
                        let chunk = measure_chunk(
                            grid, configs, machine, spec.seed, bench, noise, plan, retry, index,
                            chunk_size,
                        );
                        // A send error means the committer stopped
                        // (append failure); stop measuring.
                        if tx.send((index, chunk)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            // Committer: buffer out-of-order chunks, append in order.
            let mut pending: BTreeMap<u64, ChunkData> = BTreeMap::new();
            let mut next = chunks_resumed;
            'commit: while let Ok((index, chunk)) = rx.recv() {
                pending.insert(index, chunk);
                while let Some(chunk) = pending.remove(&next) {
                    if let Err(e) = store.append(&chunk) {
                        commit_error = Some(e);
                        break 'commit;
                    }
                    mpcp_obs::counter_add!("campaign.chunks", 1);
                    mpcp_obs::counter_add!("campaign.cells", chunk.cells());
                    records.extend(chunk.to_records());
                    faults.merge(&chunk.summary());
                    consumed_picos += chunk.consumed_picos;
                    next += 1;
                }
            }
            // Dropping rx unblocks any worker parked in send().
            drop(rx);
        });
    }
    if let Some(e) = commit_error {
        return Err(e);
    }

    let steals = queues.steals.load(Ordering::Relaxed);
    span.set_attr("records", records.len());
    span.set_attr("steals", steals);
    span.set_attr("cells_resumed", cells_resumed);
    if let Some(t0) = wall {
        let secs = t0.elapsed().as_secs_f64();
        let fresh = cells_total - cells_resumed;
        if secs > 0.0 && fresh > 0 {
            mpcp_obs::gauge_set!("campaign.cells_per_sec", fresh as f64 / secs);
        }
    }

    Ok(CampaignReport {
        records,
        faults,
        total_bench: SimTime(consumed_picos),
        cells_total,
        cells_resumed,
        chunks_total,
        chunks_resumed,
        steals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mpcp_campaign_{name}_{}", std::process::id()))
    }

    #[test]
    fn campaign_matches_the_sequential_generator() {
        let spec = DatasetSpec::tiny_for_tests();
        let lib = spec.library(None);
        let bench = BenchConfig::quick();
        let path = tmp("seq_equiv");
        let cfg = CampaignConfig { threads: 2, checkpoint_every: 5, resume: false };
        let report = run_campaign(
            &spec,
            &lib,
            &bench,
            None,
            &RetryPolicy::default(),
            &cfg,
            &path,
        )
        .unwrap();
        let direct = spec.generate(&lib, &bench);
        assert_eq!(report.records, direct.records);
        assert_eq!(report.faults, direct.faults);
        assert_eq!(report.total_bench, direct.total_bench);
        assert_eq!(report.cells_total, spec.sample_count(&lib) as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_on_a_complete_store_is_a_no_op() {
        let spec = DatasetSpec::tiny_for_tests();
        let lib = spec.library(None);
        let bench = BenchConfig::quick();
        let path = tmp("noop_resume");
        let cfg = CampaignConfig { threads: 1, checkpoint_every: 7, resume: false };
        let first = run_campaign(&spec, &lib, &bench, None, &RetryPolicy::default(), &cfg, &path)
            .unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let again = run_campaign(
            &spec,
            &lib,
            &bench,
            None,
            &RetryPolicy::default(),
            &CampaignConfig { resume: true, ..cfg },
            &path,
        )
        .unwrap();
        assert_eq!(again.cells_resumed, again.cells_total);
        assert_eq!(again.chunks_resumed, again.chunks_total);
        assert_eq!(again.records, first.records);
        assert_eq!(again.faults, first.faults);
        assert_eq!(std::fs::read(&path).unwrap(), bytes);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunk_size_one_and_oversized_both_work() {
        let spec = DatasetSpec::tiny_for_tests();
        let lib = spec.library(None);
        let bench = BenchConfig::quick();
        for (name, every) in [("one", 1u64), ("huge", 10_000u64)] {
            let path = tmp(name);
            let cfg = CampaignConfig { threads: 3, checkpoint_every: every, resume: false };
            let report =
                run_campaign(&spec, &lib, &bench, None, &RetryPolicy::default(), &cfg, &path)
                    .unwrap();
            assert_eq!(report.records.len(), spec.sample_count(&lib));
            std::fs::remove_file(&path).ok();
        }
    }
}
