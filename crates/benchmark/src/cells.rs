//! Canonical, lazy enumeration of a benchmark grid's cells.
//!
//! Both the original [`crate::datasets::DatasetSpec::generate_with_faults`]
//! path and the parallel campaign engine ([`crate::campaign`]) walk the
//! same four-dimensional grid `(nodes × ppn × configuration × msize)`.
//! Before this module each path re-derived the grid with its own nested
//! loops, which is exactly how two "identical" sweeps drift apart. A
//! [`CellGrid`] instead assigns every cell a dense **cell id** in one
//! pinned canonical order —
//!
//! ```text
//! id = ((node_i · |ppn| + ppn_i) · |configs| + uid) · |msizes| + msize_i
//! ```
//!
//! — i.e. topology-major (`nodes` outer, then `ppn`), then configuration
//! uid, then message size, matching the historical record order of the
//! dataset CSVs. Cells are decoded from their id on demand; nothing is
//! materialized, so a million-cell campaign enumerates lazily.
//!
//! The id is also what the campaign's deterministic seeding hangs off:
//! a cell's noise and fault streams are derived from the cell
//! *coordinates* (see [`crate::noise::cell_stream`]), which the id maps
//! to bijectively, so any partition of ids across threads replays the
//! exact same draws.

use mpcp_collectives::AlgorithmConfig;
use mpcp_simnet::{SimError, Simulator, Topology};

use crate::fault::{measure_cell, CellOutcome, CellResult, FaultPlan, RetryPolicy};
use crate::noise::{cell_stream, NoiseModel};
use crate::record::Record;
use crate::repro::BenchConfig;

/// One grid cell, decoded from its dense id.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cell {
    /// Dense id in the canonical order (see module docs).
    pub id: u64,
    /// Algorithm-configuration index into the library's list.
    pub uid: u32,
    /// Node count `n`.
    pub nodes: u32,
    /// Processes per node `N`.
    pub ppn: u32,
    /// Message size in bytes `m`.
    pub msize: u64,
}

/// The dense id ↔ coordinate mapping for one benchmark grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellGrid {
    nodes: Vec<u32>,
    ppn: Vec<u32>,
    msizes: Vec<u64>,
    configs: u32,
}

impl CellGrid {
    /// Build the grid mapping. `configs` is the library's configuration
    /// count for the collective under test.
    ///
    /// # Panics
    /// Panics if the configuration count exceeds the serialized `u32`
    /// uid range (a registry that large is corrupt and must not be
    /// truncated silently).
    pub fn new(nodes: Vec<u32>, ppn: Vec<u32>, msizes: Vec<u64>, configs: usize) -> CellGrid {
        let configs = u32::try_from(configs).expect("config count exceeds u32 uid range");
        CellGrid { nodes, ppn, msizes, configs }
    }

    /// Total number of cells.
    pub fn len(&self) -> u64 {
        self.nodes.len() as u64
            * self.ppn.len() as u64
            * self.msizes.len() as u64
            * u64::from(self.configs)
    }

    /// True when the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of `(nodes, ppn)` topology groups.
    pub fn topo_groups(&self) -> usize {
        self.nodes.len() * self.ppn.len()
    }

    /// Cells per topology group (`|configs| · |msizes|`).
    pub fn group_len(&self) -> u64 {
        u64::from(self.configs) * self.msizes.len() as u64
    }

    /// The `(nodes, ppn)` pair of topology group `g`.
    pub fn group(&self, g: usize) -> (u32, u32) {
        (self.nodes[g / self.ppn.len()], self.ppn[g % self.ppn.len()])
    }

    /// Decode a dense cell id into its coordinates.
    pub fn cell(&self, id: u64) -> Cell {
        debug_assert!(id < self.len(), "cell id {id} out of range");
        let m_len = self.msizes.len() as u64;
        let c_len = u64::from(self.configs);
        let p_len = self.ppn.len() as u64;
        let mi = id % m_len;
        let uid = (id / m_len) % c_len;
        let g = id / (m_len * c_len);
        let pi = g % p_len;
        let ni = g / p_len;
        Cell {
            id,
            uid: uid as u32,
            nodes: self.nodes[ni as usize],
            ppn: self.ppn[pi as usize],
            msize: self.msizes[mi as usize],
        }
    }

    /// Lazily enumerate every cell in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = Cell> + '_ {
        (0..self.len()).map(|id| self.cell(id))
    }

    /// Lazily enumerate the cells of topology group `g` in canonical
    /// order (a contiguous id range).
    pub fn group_cells(&self, g: usize) -> impl Iterator<Item = Cell> + '_ {
        let start = g as u64 * self.group_len();
        (start..start + self.group_len()).map(|id| self.cell(id))
    }
}

/// How one cell's measurement ended.
#[derive(Clone, Debug)]
pub enum CellMeasurement {
    /// A usable record plus its fault-loop accounting.
    Measured {
        /// The dataset row.
        record: Record,
        /// Attempt/budget accounting.
        result: CellResult,
    },
    /// The cell was lost to faults (failed or timed out).
    Lost(CellResult),
    /// The deterministic simulation itself errored (counted, not fatal).
    SimError(SimError),
}

/// Measure one grid cell: one deterministic simulation plus the
/// fault-aware ReproMPI loop on the cell's own noise stream.
///
/// This is the single measurement path shared by the sequential dataset
/// generator and the parallel campaign runner; a cell's outcome is a
/// pure function of `(seed, cell coordinates, bench, plan, retry)`, so
/// the two paths — and any thread interleaving inside the campaign —
/// produce bit-identical results.
#[allow(clippy::too_many_arguments)]
pub fn measure_grid_cell(
    sim: &Simulator<'_>,
    topo: &Topology,
    cfg: &AlgorithmConfig,
    cell: Cell,
    seed: u64,
    bench: &BenchConfig,
    noise: &NoiseModel,
    plan: Option<&FaultPlan>,
    retry: &RetryPolicy,
) -> CellMeasurement {
    let progs = cfg.build(topo, cell.msize);
    let base = match sim.run(&progs) {
        Ok(run) => run.makespan(),
        Err(e) => {
            mpcp_obs::counter_add!("bench.sim_errors", 1);
            return CellMeasurement::SimError(e);
        }
    };
    let mut stream = cell_stream(seed, cell.uid, cell.nodes, cell.ppn, cell.msize);
    let result = measure_cell(
        base,
        bench,
        noise,
        &mut stream,
        plan,
        retry,
        (cell.uid, cell.nodes, cell.ppn, cell.msize),
    );
    match result.outcome {
        CellOutcome::Ok(meas) => CellMeasurement::Measured {
            record: Record {
                nodes: cell.nodes,
                ppn: cell.ppn,
                msize: cell.msize,
                uid: cell.uid,
                alg_id: cfg.alg_id,
                excluded: cfg.excluded,
                runtime: meas.median_secs,
                base: meas.base.as_secs_f64(),
                reps: meas.reps,
            },
            result,
        },
        CellOutcome::Failed | CellOutcome::TimedOut => CellMeasurement::Lost(result),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> CellGrid {
        CellGrid::new(vec![2, 3], vec![1, 2], vec![16, 64, 256], 4)
    }

    #[test]
    fn canonical_order_is_pinned() {
        // The regression contract: ids enumerate (nodes, ppn, uid, msize)
        // with msize innermost — the historical CSV record order. Any
        // change here silently reshuffles every stored campaign.
        let g = grid();
        assert_eq!(g.len(), 2 * 2 * 4 * 3);
        let mut expect = Vec::new();
        for &n in &[2u32, 3] {
            for &p in &[1u32, 2] {
                for uid in 0u32..4 {
                    for &m in &[16u64, 64, 256] {
                        expect.push((uid, n, p, m));
                    }
                }
            }
        }
        let got: Vec<_> = g.iter().map(|c| (c.uid, c.nodes, c.ppn, c.msize)).collect();
        assert_eq!(got, expect);
        // Ids are dense and self-consistent.
        for (i, c) in g.iter().enumerate() {
            assert_eq!(c.id, i as u64);
            assert_eq!(g.cell(c.id), c);
        }
    }

    #[test]
    fn group_cells_tile_the_grid() {
        let g = grid();
        let concat: Vec<Cell> =
            (0..g.topo_groups()).flat_map(|gi| g.group_cells(gi).collect::<Vec<_>>()).collect();
        let all: Vec<Cell> = g.iter().collect();
        assert_eq!(concat, all);
        // Every group is one fixed topology.
        for gi in 0..g.topo_groups() {
            let (n, p) = g.group(gi);
            assert!(g.group_cells(gi).all(|c| c.nodes == n && c.ppn == p));
        }
        assert_eq!(g.group(0), (2, 1));
        assert_eq!(g.group(3), (3, 2));
    }

    #[test]
    fn empty_dimension_is_an_empty_grid() {
        let g = CellGrid::new(vec![], vec![1], vec![16], 4);
        assert!(g.is_empty());
        assert_eq!(g.iter().count(), 0);
    }
}
