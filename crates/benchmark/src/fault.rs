//! Deterministic fault injection for benchmark runs.
//!
//! Real benchmark campaigns lose cells: jobs crash, cells hit their time
//! budget without completing, whole node allocations disappear
//! mid-campaign, and congestion episodes inflate entire cells. A
//! [`FaultPlan`] reproduces those failure modes *deterministically*: each
//! grid cell's fate is a pure function of the plan seed and the cell
//! coordinates, drawn from a SplitMix64 stream **separate** from the
//! measurement-noise stream. A plan with all probabilities at zero and no
//! blackouts therefore leaves the generated dataset bit-identical to a
//! fault-free run.
//!
//! Failed attempts may be retried ([`RetryPolicy`]) with exponential
//! backoff; the backoff is charged against the cell's time budget, so a
//! retried cell never spends more benchmarking time than a clean one
//! (modulo the usual "always keep at least one observation" overshoot of
//! the ReproMPI loop). Timeouts are not retried — a timed-out attempt has
//! already consumed the whole budget.

use mpcp_simnet::SimTime;
use serde::{Deserialize, Serialize};

use crate::noise::{NoiseModel, SplitMix64};
use crate::repro::{summarize, BenchConfig, Measurement};

/// A deterministic fault-injection plan for one benchmark campaign.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Per-attempt probability that a cell measurement fails outright
    /// (job crash, MPI abort). Failed attempts are retryable.
    pub fail_prob: f64,
    /// Per-attempt probability that a cell hangs until its time budget
    /// expires. Timed-out cells are not retried (the budget is gone).
    pub timeout_prob: f64,
    /// Probability that an otherwise-successful cell is inflated by a
    /// heavy-tail congestion episode.
    pub outlier_prob: f64,
    /// Multiplier applied to an outlier cell's summary statistics.
    pub outlier_scale: f64,
    /// Node counts that are blacked out for the whole campaign: every
    /// attempt on these node counts fails.
    pub blackout_nodes: Vec<u32>,
    /// Seed for the fault stream (independent of the noise seed).
    pub seed: u64,
}

impl FaultPlan {
    /// A plan that injects nothing (bit-identical to no plan at all).
    pub fn none() -> FaultPlan {
        FaultPlan {
            fail_prob: 0.0,
            timeout_prob: 0.0,
            outlier_prob: 0.0,
            outlier_scale: 1.0,
            blackout_nodes: Vec::new(),
            seed: 0,
        }
    }

    /// A uniform failure plan: `fail_prob` chance per attempt, seeded.
    pub fn uniform(fail_prob: f64, seed: u64) -> FaultPlan {
        FaultPlan { fail_prob, seed, ..FaultPlan::none() }
    }

    /// Does this plan inject any fault at all?
    pub fn is_noop(&self) -> bool {
        self.fail_prob <= 0.0
            && self.timeout_prob <= 0.0
            && self.outlier_prob <= 0.0
            && self.blackout_nodes.is_empty()
    }

    /// Parse the CLI syntax: comma-separated `key=value` pairs.
    ///
    /// * `fail=0.3` — per-attempt failure probability;
    /// * `timeout=0.05` — per-attempt timeout probability;
    /// * `outlier=0.02x8` — outlier probability `x` scale factor;
    /// * `blackout=13+19` — `+`-separated node counts that are down;
    /// * `seed=7` — fault-stream seed.
    ///
    /// Example: `fail=0.3,timeout=0.05,outlier=0.02x8,blackout=13+19,seed=7`.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault plan: expected key=value, got '{part}'"))?;
            let prob = |v: &str, key: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("fault plan: '{key}' wants a number, got '{v}'"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("fault plan: '{key}={v}' is not a probability in [0, 1]"));
                }
                Ok(p)
            };
            match key {
                "fail" => plan.fail_prob = prob(value, key)?,
                "timeout" => plan.timeout_prob = prob(value, key)?,
                "outlier" => {
                    let (p, scale) = value.split_once('x').unwrap_or((value, "8"));
                    plan.outlier_prob = prob(p, key)?;
                    plan.outlier_scale = scale.parse().map_err(|_| {
                        format!("fault plan: outlier scale wants a number, got '{scale}'")
                    })?;
                    if plan.outlier_scale < 1.0 {
                        return Err(format!(
                            "fault plan: outlier scale {scale} must be >= 1 (it inflates runtimes)"
                        ));
                    }
                }
                "blackout" => {
                    for n in value.split('+').filter(|n| !n.is_empty()) {
                        let node: u32 = n.parse().map_err(|_| {
                            format!("fault plan: blackout wants '+'-separated node counts, got '{n}'")
                        })?;
                        plan.blackout_nodes.push(node);
                    }
                }
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("fault plan: seed wants an integer, got '{value}'"))?;
                }
                other => {
                    return Err(format!(
                        "fault plan: unknown key '{other}' (known: fail, timeout, outlier, blackout, seed)"
                    ))
                }
            }
        }
        if plan.fail_prob + plan.timeout_prob >= 1.0 {
            return Err(format!(
                "fault plan: fail ({}) + timeout ({}) must stay below 1",
                plan.fail_prob, plan.timeout_prob
            ));
        }
        Ok(plan)
    }

    /// Draw the fate of one measurement attempt.
    pub fn draw(&self, stream: &mut SplitMix64) -> CellFate {
        let u = stream.next_f64();
        if u < self.timeout_prob {
            return CellFate::TimedOut;
        }
        if u < self.timeout_prob + self.fail_prob {
            return CellFate::Failed;
        }
        if self.outlier_prob > 0.0 && stream.next_f64() < self.outlier_prob {
            return CellFate::Outlier;
        }
        CellFate::Ok
    }
}

/// Derive the fault stream for a grid cell. Deliberately salted
/// differently from [`crate::noise::cell_stream`], so fault draws never
/// perturb the measurement-noise sequence.
pub fn fault_stream(seed: u64, uid: u32, nodes: u32, ppn: u32, msize: u64) -> SplitMix64 {
    let mut h = seed ^ 0xF4_17_5E_ED_0B_AD_CE_11;
    for v in [uid as u64, nodes as u64, ppn as u64, msize] {
        h ^= v.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        h = h.rotate_left(31).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    SplitMix64::new(h)
}

/// The fate of one measurement attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellFate {
    /// Clean measurement.
    Ok,
    /// Measurement completes but a congestion episode inflates it.
    Outlier,
    /// Attempt crashes (retryable).
    Failed,
    /// Attempt hangs until the budget expires (not retryable).
    TimedOut,
}

/// Bounded retry with exponential backoff, charged against the cell's
/// time budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Extra attempts after the first failed one.
    pub max_retries: u32,
    /// Backoff before retry `k` (0-based): `backoff << k`.
    pub backoff: SimTime,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 2, backoff: SimTime::from_micros_f64(100.0) }
    }
}

impl RetryPolicy {
    /// No retries at all.
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy { max_retries: 0, backoff: SimTime::ZERO }
    }

    /// Backoff charged before retrying after failed attempt `k` (0-based).
    pub fn backoff_for(&self, attempt: u32) -> SimTime {
        SimTime(self.backoff.picos().saturating_shl(attempt))
    }
}

/// `u64::checked_shl` with saturation — backoff growth must not wrap.
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        if shift >= 64 {
            return if self == 0 { 0 } else { u64::MAX };
        }
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

/// How one grid cell ended up after fault injection and retries.
#[derive(Clone, Copy, Debug)]
pub enum CellOutcome {
    /// A usable measurement (possibly after retries).
    Ok(Measurement),
    /// All attempts failed; no measurement.
    Failed,
    /// The attempt hung; the budget is consumed, no measurement.
    TimedOut,
}

/// One cell's fault-aware measurement result.
#[derive(Clone, Copy, Debug)]
pub struct CellResult {
    /// Final outcome.
    pub outcome: CellOutcome,
    /// Attempts made (>= 1).
    pub attempts: u32,
    /// Simulated time charged to failed attempts (backoff); always
    /// `<= bench.budget`.
    pub retry_overhead: SimTime,
    /// Total simulated time this cell consumed, including overhead.
    pub consumed: SimTime,
}

/// Run the ReproMPI loop for one cell under a fault plan.
///
/// With no plan (or a no-op plan) this is exactly [`summarize`] — same
/// noise stream consumption, bit-identical records. Otherwise each
/// attempt draws a [`CellFate`] from the cell's fault stream:
///
/// * `Failed` charges the retry backoff against the budget and retries
///   (up to [`RetryPolicy::max_retries`] extra attempts); when the
///   backoff would exceed the remaining budget, the cell is abandoned.
/// * `TimedOut` consumes the whole remaining budget and is final.
/// * `Ok`/`Outlier` run the measurement loop on whatever budget is left
///   (at least one observation is always taken — see [`summarize`]).
///
/// Node counts listed in `blackout_nodes` fail every attempt.
#[allow(clippy::too_many_arguments)]
pub fn measure_cell(
    base: SimTime,
    bench: &BenchConfig,
    noise: &NoiseModel,
    stream: &mut SplitMix64,
    plan: Option<&FaultPlan>,
    retry: &RetryPolicy,
    cell: (u32, u32, u32, u64),
) -> CellResult {
    let plan = match plan {
        Some(p) if !p.is_noop() => p,
        _ => {
            let m = summarize(base, bench, noise, stream);
            return CellResult {
                outcome: CellOutcome::Ok(m),
                attempts: 1,
                retry_overhead: SimTime::ZERO,
                consumed: m.consumed,
            };
        }
    };
    let (uid, nodes, ppn, msize) = cell;
    let mut fates = fault_stream(plan.seed, uid, nodes, ppn, msize);
    let blackout = plan.blackout_nodes.contains(&nodes);
    let mut overhead = SimTime::ZERO;
    let mut attempts = 0u32;
    while attempts <= retry.max_retries {
        let fate = if blackout { CellFate::Failed } else { plan.draw(&mut fates) };
        attempts += 1;
        match fate {
            CellFate::TimedOut => {
                mpcp_obs::counter_add!("bench.cells_timed_out", 1);
                return CellResult {
                    outcome: CellOutcome::TimedOut,
                    attempts,
                    retry_overhead: overhead,
                    consumed: bench.budget,
                };
            }
            CellFate::Failed => {
                mpcp_obs::counter_add!("bench.attempt_failures", 1);
                let backoff = retry.backoff_for(attempts - 1);
                // Charge the backoff only if it leaves budget to retry in;
                // overhead never exceeds the cell budget.
                if attempts > retry.max_retries
                    || overhead + backoff >= bench.budget
                {
                    return CellResult {
                        outcome: CellOutcome::Failed,
                        attempts,
                        retry_overhead: overhead,
                        consumed: overhead,
                    };
                }
                overhead += backoff;
                mpcp_obs::counter_add!("bench.retries", 1);
            }
            CellFate::Ok | CellFate::Outlier => {
                let sub = BenchConfig { budget: bench.budget.saturating_sub(overhead), ..*bench };
                let mut m = summarize(base, &sub, noise, stream);
                if fate == CellFate::Outlier {
                    mpcp_obs::counter_add!("bench.cells_outlier", 1);
                    m.median_secs *= plan.outlier_scale;
                    m.mean_secs *= plan.outlier_scale;
                    m.min_secs *= plan.outlier_scale;
                }
                m.consumed += overhead;
                return CellResult {
                    outcome: CellOutcome::Ok(m),
                    attempts,
                    retry_overhead: overhead,
                    consumed: m.consumed,
                };
            }
        }
    }
    unreachable!("loop always returns within max_retries + 1 attempts");
}

/// Aggregated fault statistics for a benchmark campaign.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Cells that produced a usable measurement.
    pub cells_ok: usize,
    /// Cells lost to (unretried or retry-exhausted) failures.
    pub cells_failed: usize,
    /// Cells lost to timeouts.
    pub cells_timed_out: usize,
    /// Cells lost to simulation errors (counted, not fatal).
    pub sim_errors: usize,
    /// Total retry attempts across the campaign.
    pub retries: u64,
    /// Total simulated time charged to retry backoff.
    pub retry_time: SimTime,
}

impl FaultSummary {
    /// Total cells attempted.
    pub fn total(&self) -> usize {
        self.cells_ok + self.cells_failed + self.cells_timed_out + self.sim_errors
    }

    /// Fraction of cells that produced a measurement.
    pub fn coverage(&self) -> f64 {
        if self.total() == 0 {
            return 1.0;
        }
        self.cells_ok as f64 / self.total() as f64
    }

    /// Fold another summary into this one.
    pub fn merge(&mut self, other: &FaultSummary) {
        self.cells_ok += other.cells_ok;
        self.cells_failed += other.cells_failed;
        self.cells_timed_out += other.cells_timed_out;
        self.sim_errors += other.sim_errors;
        self.retries += other.retries;
        self.retry_time += other.retry_time;
    }

    /// Record one cell's result.
    pub fn absorb(&mut self, r: &CellResult) {
        match r.outcome {
            CellOutcome::Ok(_) => self.cells_ok += 1,
            CellOutcome::Failed => self.cells_failed += 1,
            CellOutcome::TimedOut => self.cells_timed_out += 1,
        }
        self.retries += (r.attempts - 1) as u64;
        self.retry_time += r.retry_overhead;
    }

    /// Human-readable one-liner for CLI output.
    pub fn summary(&self) -> String {
        format!(
            "{}/{} cells measured ({:.1}% coverage), {} failed, {} timed out, {} sim error(s), {} retry(ies)",
            self.cells_ok,
            self.total(),
            100.0 * self.coverage(),
            self.cells_failed,
            self.cells_timed_out,
            self.sim_errors,
            self.retries,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench() -> BenchConfig {
        BenchConfig::quick()
    }

    #[test]
    fn parse_full_syntax() {
        let p = FaultPlan::parse("fail=0.3,timeout=0.05,outlier=0.02x8,blackout=13+19,seed=7")
            .unwrap();
        assert_eq!(p.fail_prob, 0.3);
        assert_eq!(p.timeout_prob, 0.05);
        assert_eq!(p.outlier_prob, 0.02);
        assert_eq!(p.outlier_scale, 8.0);
        assert_eq!(p.blackout_nodes, vec![13, 19]);
        assert_eq!(p.seed, 7);
        assert!(!p.is_noop());
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(FaultPlan::parse("fail=1.5").is_err());
        assert!(FaultPlan::parse("fail").is_err());
        assert!(FaultPlan::parse("unknown=1").is_err());
        assert!(FaultPlan::parse("fail=0.6,timeout=0.5").is_err());
        assert!(FaultPlan::parse("outlier=0.1x0.5").is_err());
        assert!(FaultPlan::parse("blackout=x").is_err());
        // Empty string is the no-op plan.
        assert!(FaultPlan::parse("").unwrap().is_noop());
    }

    #[test]
    fn noop_plan_is_bit_identical_to_no_plan() {
        let base = SimTime::from_micros_f64(50.0);
        let noise = NoiseModel::default();
        let cell = (3, 4, 2, 1024);
        let mut s1 = SplitMix64::new(99);
        let a = measure_cell(base, &bench(), &noise, &mut s1, None, &RetryPolicy::default(), cell);
        let mut s2 = SplitMix64::new(99);
        let plan = FaultPlan::none();
        let b = measure_cell(
            base,
            &bench(),
            &noise,
            &mut s2,
            Some(&plan),
            &RetryPolicy::default(),
            cell,
        );
        let (CellOutcome::Ok(ma), CellOutcome::Ok(mb)) = (a.outcome, b.outcome) else {
            panic!("both must measure");
        };
        assert_eq!(ma.median_secs.to_bits(), mb.median_secs.to_bits());
        assert_eq!(ma.reps, mb.reps);
        // And the noise streams advanced identically.
        assert_eq!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn fates_are_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan { fail_prob: 0.3, ..FaultPlan::none() };
        let mut failed = 0;
        let n = 10_000;
        for i in 0..n {
            let mut s = fault_stream(plan.seed, i, 2, 1, 64);
            if plan.draw(&mut s) == CellFate::Failed {
                failed += 1;
            }
        }
        let rate = failed as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "failure rate {rate}");
        // Determinism: same cell, same fate.
        let mut a = fault_stream(7, 1, 2, 3, 4);
        let mut b = fault_stream(7, 1, 2, 3, 4);
        assert_eq!(plan.draw(&mut a), plan.draw(&mut b));
    }

    #[test]
    fn fault_stream_is_independent_of_noise_stream() {
        use crate::noise::cell_stream;
        let a = cell_stream(7, 1, 2, 3, 4).next_u64();
        let b = fault_stream(7, 1, 2, 3, 4).next_u64();
        assert_ne!(a, b, "fault and noise streams must be salted apart");
    }

    #[test]
    fn blackout_nodes_always_fail() {
        let plan = FaultPlan { blackout_nodes: vec![13], ..FaultPlan::none() };
        let noise = NoiseModel::default();
        for msize in [64u64, 4096, 262_144] {
            let mut s = SplitMix64::new(1);
            let r = measure_cell(
                SimTime::from_micros_f64(10.0),
                &bench(),
                &noise,
                &mut s,
                Some(&plan),
                &RetryPolicy::default(),
                (0, 13, 2, msize),
            );
            assert!(matches!(r.outcome, CellOutcome::Failed), "{r:?}");
            // Other node counts are untouched.
            let mut s = SplitMix64::new(1);
            let ok = measure_cell(
                SimTime::from_micros_f64(10.0),
                &bench(),
                &noise,
                &mut s,
                Some(&plan),
                &RetryPolicy::default(),
                (0, 14, 2, msize),
            );
            assert!(matches!(ok.outcome, CellOutcome::Ok(_)), "{ok:?}");
        }
    }

    #[test]
    fn retry_overhead_never_exceeds_budget() {
        let plan = FaultPlan { blackout_nodes: vec![2], ..FaultPlan::none() };
        let noise = NoiseModel::default();
        let cfg = bench();
        let retry = RetryPolicy { max_retries: 50, backoff: SimTime::from_micros_f64(500.0) };
        let mut s = SplitMix64::new(1);
        let r = measure_cell(
            SimTime::from_micros_f64(10.0),
            &cfg,
            &noise,
            &mut s,
            Some(&plan),
            &retry,
            (0, 2, 1, 64),
        );
        assert!(matches!(r.outcome, CellOutcome::Failed));
        assert!(r.retry_overhead <= cfg.budget, "{:?} > {:?}", r.retry_overhead, cfg.budget);
        assert!(r.attempts <= 51);
    }

    #[test]
    fn timed_out_cells_consume_the_whole_budget() {
        let plan = FaultPlan { timeout_prob: 1.0, ..FaultPlan::none() };
        let noise = NoiseModel::default();
        let cfg = bench();
        let mut s = SplitMix64::new(1);
        let r = measure_cell(
            SimTime::from_micros_f64(10.0),
            &cfg,
            &noise,
            &mut s,
            Some(&plan),
            &RetryPolicy::default(),
            (0, 2, 1, 64),
        );
        assert!(matches!(r.outcome, CellOutcome::TimedOut));
        assert_eq!(r.consumed, cfg.budget);
        assert_eq!(r.attempts, 1); // timeouts are final
    }

    #[test]
    fn outliers_inflate_the_measurement() {
        let plan =
            FaultPlan { outlier_prob: 1.0, outlier_scale: 8.0, seed: 3, ..FaultPlan::none() };
        let noise = NoiseModel::none();
        let base = SimTime::from_micros_f64(10.0);
        let mut s = SplitMix64::new(1);
        let r = measure_cell(
            base,
            &bench(),
            &noise,
            &mut s,
            Some(&plan),
            &RetryPolicy::default(),
            (0, 2, 1, 64),
        );
        let CellOutcome::Ok(m) = r.outcome else { panic!("{r:?}") };
        let expect = base.as_secs_f64() * 8.0;
        assert!((m.median_secs - expect).abs() / expect < 1e-12, "{}", m.median_secs);
    }

    #[test]
    fn summary_math() {
        let mut s = FaultSummary::default();
        s.absorb(&CellResult {
            outcome: CellOutcome::Failed,
            attempts: 3,
            retry_overhead: SimTime(200),
            consumed: SimTime(200),
        });
        let mut other = FaultSummary { cells_ok: 3, ..FaultSummary::default() };
        other.merge(&s);
        assert_eq!(other.total(), 4);
        assert_eq!(other.retries, 2);
        assert_eq!(other.retry_time, SimTime(200));
        assert!((other.coverage() - 0.75).abs() < 1e-12);
        assert!(other.summary().contains("75.0% coverage"));
        assert_eq!(FaultSummary::default().coverage(), 1.0);
    }

    #[test]
    fn backoff_saturates_instead_of_wrapping() {
        let r = RetryPolicy { max_retries: 200, backoff: SimTime(1) };
        assert_eq!(r.backoff_for(0), SimTime(1));
        assert_eq!(r.backoff_for(1), SimTime(2));
        assert_eq!(r.backoff_for(100), SimTime(u64::MAX));
        let z = RetryPolicy { max_retries: 1, backoff: SimTime::ZERO };
        assert_eq!(z.backoff_for(100), SimTime::ZERO);
    }
}
