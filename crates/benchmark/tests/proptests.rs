//! Property-based tests for the benchmark harness: budget adherence,
//! reproducibility, and record serialization.

use proptest::prelude::*;

use mpcp_benchmark::fault::measure_cell;
use mpcp_benchmark::noise::{cell_stream, SplitMix64};
use mpcp_benchmark::record::Record;
use mpcp_benchmark::repro::{summarize, BenchConfig};
use mpcp_benchmark::{CellOutcome, FaultPlan, FaultSummary, NoiseModel, RetryPolicy};
use mpcp_simnet::SimTime;

/// A strategy for arbitrary (but bounded) fault summaries.
fn arb_summary() -> impl Strategy<Value = FaultSummary> {
    (0usize..1000, 0usize..1000, 0usize..1000, 0usize..1000, 0u64..10_000, 0u64..(1 << 40)).prop_map(
        |(cells_ok, cells_failed, cells_timed_out, sim_errors, retries, picos)| FaultSummary {
            cells_ok,
            cells_failed,
            cells_timed_out,
            sim_errors,
            retries,
            retry_time: SimTime(picos),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn repetition_loop_respects_budget_and_cap(
        base_us in 0.1f64..1e6,
        budget_ms in 1.0f64..2000.0,
        max_reps in 1u32..1000,
        seed in any::<u64>(),
    ) {
        let config = BenchConfig {
            max_reps,
            budget: SimTime::from_secs_f64(budget_ms * 1e-3),
            sync_per_rep: SimTime::from_micros_f64(5.0),
        };
        let mut stream = SplitMix64::new(seed);
        let m = summarize(
            SimTime::from_micros_f64(base_us),
            &config,
            &NoiseModel::default(),
            &mut stream,
        );
        prop_assert!(m.reps >= 1);
        prop_assert!(m.reps <= max_reps.max(1));
        // Either under budget, or a single mandatory repetition.
        prop_assert!(m.consumed <= config.budget || m.reps == 1);
        prop_assert!(m.min_secs <= m.median_secs);
        prop_assert!(m.median_secs > 0.0);
    }

    #[test]
    fn measurements_are_seed_reproducible(
        base_us in 0.1f64..1e4,
        seed in any::<u64>(),
    ) {
        let config = BenchConfig::quick();
        let noise = NoiseModel::default();
        let run = || {
            let mut stream = SplitMix64::new(seed);
            summarize(SimTime::from_micros_f64(base_us), &config, &noise, &mut stream)
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.median_secs, b.median_secs);
        prop_assert_eq!(a.reps, b.reps);
        prop_assert_eq!(a.consumed, b.consumed);
    }

    #[test]
    fn median_is_close_to_base_for_mild_noise(
        base_us in 1.0f64..1e5,
        seed in any::<u64>(),
    ) {
        let config = BenchConfig { max_reps: 200, ..BenchConfig::paper_default("Hydra") };
        let noise = NoiseModel { sigma: 0.02, outlier_prob: 0.0, outlier_scale: 1.0 };
        let mut stream = SplitMix64::new(seed);
        let m = summarize(SimTime::from_micros_f64(base_us), &config, &noise, &mut stream);
        if m.reps >= 50 {
            let rel = (m.median_secs - base_us * 1e-6).abs() / (base_us * 1e-6);
            prop_assert!(rel < 0.05, "relative median error {rel}");
        }
    }

    #[test]
    fn record_csv_roundtrips(
        nodes in 1u32..1000,
        ppn in 1u32..64,
        msize in 0u64..(1 << 40),
        uid in 0u32..500,
        alg_id in 0u32..20,
        excluded in any::<bool>(),
        runtime in 1e-9f64..1e3,
        base in 1e-9f64..1e3,
        reps in 1u32..501,
    ) {
        let r = Record { nodes, ppn, msize, uid, alg_id, excluded, runtime, base, reps };
        let back = Record::from_csv(&r.to_csv()).unwrap();
        prop_assert_eq!(back, r);
    }

    #[test]
    fn retry_accounting_never_exceeds_cell_budget(
        base_us in 0.1f64..1e5,
        budget_ms in 0.1f64..100.0,
        fail in 0.0f64..0.9,
        timeout in 0.0f64..0.09,
        max_retries in 0u32..8,
        backoff_us in 0.0f64..10_000.0,
        seed in any::<u64>(),
        cell in (0u32..100, 1u32..50, 1u32..50, 1u64..1_000_000),
    ) {
        // The fault-injection invariant: retry backoff is charged
        // against the cell budget and can never exceed it, and the
        // cell's total consumed time only exceeds the budget via the
        // one guaranteed observation of the ReproMPI loop.
        let config = BenchConfig {
            max_reps: 50,
            budget: SimTime::from_secs_f64(budget_ms * 1e-3),
            sync_per_rep: SimTime::from_micros_f64(5.0),
        };
        let plan = FaultPlan {
            fail_prob: fail * (1.0 - timeout),
            timeout_prob: timeout,
            seed,
            ..FaultPlan::none()
        };
        let retry = RetryPolicy {
            max_retries,
            backoff: SimTime::from_micros_f64(backoff_us),
        };
        let mut stream = cell_stream(seed, cell.0, cell.1, cell.2, cell.3);
        let r = measure_cell(
            SimTime::from_micros_f64(base_us),
            &config,
            &NoiseModel::default(),
            &mut stream,
            Some(&plan),
            &retry,
            cell,
        );
        prop_assert!(r.retry_overhead <= config.budget,
            "retry overhead {:?} exceeds budget {:?}", r.retry_overhead, config.budget);
        prop_assert!(r.attempts >= 1 && r.attempts <= max_retries + 1);
        match r.outcome {
            CellOutcome::Ok(m) => {
                prop_assert!(m.reps >= 1);
                prop_assert!(m.consumed == r.consumed);
                // Over budget only when the guaranteed first observation
                // alone is over (one measured rep).
                prop_assert!(r.consumed <= config.budget || m.reps == 1,
                    "consumed {:?} over budget {:?} with {} reps",
                    r.consumed, config.budget, m.reps);
            }
            CellOutcome::Failed => prop_assert!(r.consumed <= config.budget),
            CellOutcome::TimedOut => prop_assert!(r.consumed == config.budget),
        }
    }

    #[test]
    fn fault_fates_are_independent_of_noise_draws(
        base_us in 0.1f64..1e3,
        seed in any::<u64>(),
        cell in (0u32..100, 1u32..50, 1u32..50, 1u64..1_000_000),
    ) {
        // A no-op plan consumes zero noise-stream draws beyond what the
        // plain loop uses: records stay bit-identical.
        let config = BenchConfig::quick();
        let noise = NoiseModel::default();
        let mut s1 = cell_stream(seed, cell.0, cell.1, cell.2, cell.3);
        let plain = summarize(SimTime::from_micros_f64(base_us), &config, &noise, &mut s1);
        let mut s2 = cell_stream(seed, cell.0, cell.1, cell.2, cell.3);
        let plan = FaultPlan::none();
        let r = measure_cell(
            SimTime::from_micros_f64(base_us),
            &config,
            &noise,
            &mut s2,
            Some(&plan),
            &RetryPolicy::default(),
            cell,
        );
        let CellOutcome::Ok(m) = r.outcome else { panic!("no-op plan must measure") };
        prop_assert_eq!(m.median_secs.to_bits(), plain.median_secs.to_bits());
        prop_assert_eq!(m.reps, plain.reps);
        prop_assert_eq!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn fault_summary_merge_is_commutative(
        a in arb_summary(),
        b in arb_summary(),
    ) {
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn fault_summary_merge_is_associative_with_identity(
        a in arb_summary(),
        b in arb_summary(),
        c in arb_summary(),
    ) {
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        prop_assert_eq!(left, right);
        // default is the identity element
        let mut with_id = a;
        with_id.merge(&FaultSummary::default());
        prop_assert_eq!(with_id, a);
    }

    #[test]
    fn merge_of_shards_equals_sequential_concat(
        base_us in 0.1f64..1e3,
        fail in 0.0f64..0.6,
        timeout in 0.0f64..0.2,
        seed in any::<u64>(),
        cells in proptest::collection::vec(
            (0u32..100, 1u32..50, 1u32..50, 1u64..1_000_000), 1..24),
        split_a in 0usize..24,
        split_b in 0usize..24,
    ) {
        // Summarizing shards independently and merging must equal
        // absorbing every cell into one summary, for ANY partition —
        // the property the work-stealing campaign runner relies on when
        // it folds per-chunk summaries in commit order.
        let config = BenchConfig::quick();
        let noise = NoiseModel::default();
        let plan = FaultPlan {
            fail_prob: fail * (1.0 - timeout),
            timeout_prob: timeout,
            seed,
            ..FaultPlan::none()
        };
        let retry = RetryPolicy::default();
        let results: Vec<_> = cells
            .iter()
            .map(|&cell| {
                let mut stream = cell_stream(seed, cell.0, cell.1, cell.2, cell.3);
                measure_cell(
                    SimTime::from_micros_f64(base_us),
                    &config,
                    &noise,
                    &mut stream,
                    Some(&plan),
                    &retry,
                    cell,
                )
            })
            .collect();

        let mut whole = FaultSummary::default();
        for r in &results {
            whole.absorb(r);
        }

        let (mut i, mut j) = (split_a.min(results.len()), split_b.min(results.len()));
        if i > j {
            std::mem::swap(&mut i, &mut j);
        }
        let mut merged = FaultSummary::default();
        for shard in [&results[..i], &results[i..j], &results[j..]] {
            let mut s = FaultSummary::default();
            for r in shard {
                s.absorb(r);
            }
            merged.merge(&s);
        }
        prop_assert_eq!(merged, whole);
        prop_assert_eq!(whole.total(), results.len());
    }

    #[test]
    fn cell_streams_are_order_free(
        seed in any::<u64>(),
        a in (0u32..100, 1u32..50, 1u32..50, 1u64..1_000_000),
        b in (0u32..100, 1u32..50, 1u32..50, 1u64..1_000_000),
    ) {
        // Stream for cell `a` is identical whether or not cell `b` was
        // generated first (grid-order independence).
        let direct = cell_stream(seed, a.0, a.1, a.2, a.3).next_u64();
        let _interleaved = cell_stream(seed, b.0, b.1, b.2, b.3).next_u64();
        let after = cell_stream(seed, a.0, a.1, a.2, a.3).next_u64();
        prop_assert_eq!(direct, after);
    }
}
