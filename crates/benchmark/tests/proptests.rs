//! Property-based tests for the benchmark harness: budget adherence,
//! reproducibility, and record serialization.

use proptest::prelude::*;

use mpcp_benchmark::noise::{cell_stream, SplitMix64};
use mpcp_benchmark::record::Record;
use mpcp_benchmark::repro::{summarize, BenchConfig};
use mpcp_benchmark::NoiseModel;
use mpcp_simnet::SimTime;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn repetition_loop_respects_budget_and_cap(
        base_us in 0.1f64..1e6,
        budget_ms in 1.0f64..2000.0,
        max_reps in 1u32..1000,
        seed in any::<u64>(),
    ) {
        let config = BenchConfig {
            max_reps,
            budget: SimTime::from_secs_f64(budget_ms * 1e-3),
            sync_per_rep: SimTime::from_micros_f64(5.0),
        };
        let mut stream = SplitMix64::new(seed);
        let m = summarize(
            SimTime::from_micros_f64(base_us),
            &config,
            &NoiseModel::default(),
            &mut stream,
        );
        prop_assert!(m.reps >= 1);
        prop_assert!(m.reps <= max_reps.max(1));
        // Either under budget, or a single mandatory repetition.
        prop_assert!(m.consumed <= config.budget || m.reps == 1);
        prop_assert!(m.min_secs <= m.median_secs);
        prop_assert!(m.median_secs > 0.0);
    }

    #[test]
    fn measurements_are_seed_reproducible(
        base_us in 0.1f64..1e4,
        seed in any::<u64>(),
    ) {
        let config = BenchConfig::quick();
        let noise = NoiseModel::default();
        let run = || {
            let mut stream = SplitMix64::new(seed);
            summarize(SimTime::from_micros_f64(base_us), &config, &noise, &mut stream)
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.median_secs, b.median_secs);
        prop_assert_eq!(a.reps, b.reps);
        prop_assert_eq!(a.consumed, b.consumed);
    }

    #[test]
    fn median_is_close_to_base_for_mild_noise(
        base_us in 1.0f64..1e5,
        seed in any::<u64>(),
    ) {
        let config = BenchConfig { max_reps: 200, ..BenchConfig::paper_default("Hydra") };
        let noise = NoiseModel { sigma: 0.02, outlier_prob: 0.0, outlier_scale: 1.0 };
        let mut stream = SplitMix64::new(seed);
        let m = summarize(SimTime::from_micros_f64(base_us), &config, &noise, &mut stream);
        if m.reps >= 50 {
            let rel = (m.median_secs - base_us * 1e-6).abs() / (base_us * 1e-6);
            prop_assert!(rel < 0.05, "relative median error {rel}");
        }
    }

    #[test]
    fn record_csv_roundtrips(
        nodes in 1u32..1000,
        ppn in 1u32..64,
        msize in 0u64..(1 << 40),
        uid in 0u32..500,
        alg_id in 0u32..20,
        excluded in any::<bool>(),
        runtime in 1e-9f64..1e3,
        base in 1e-9f64..1e3,
        reps in 1u32..501,
    ) {
        let r = Record { nodes, ppn, msize, uid, alg_id, excluded, runtime, base, reps };
        let back = Record::from_csv(&r.to_csv()).unwrap();
        prop_assert_eq!(back, r);
    }

    #[test]
    fn cell_streams_are_order_free(
        seed in any::<u64>(),
        a in (0u32..100, 1u32..50, 1u32..50, 1u64..1_000_000),
        b in (0u32..100, 1u32..50, 1u32..50, 1u64..1_000_000),
    ) {
        // Stream for cell `a` is identical whether or not cell `b` was
        // generated first (grid-order independence).
        let direct = cell_stream(seed, a.0, a.1, a.2, a.3).next_u64();
        let _interleaved = cell_stream(seed, b.0, b.1, b.2, b.3).next_u64();
        let after = cell_stream(seed, a.0, a.1, a.2, a.3).next_u64();
        prop_assert_eq!(direct, after);
    }
}
