//! Differential determinism suite for the campaign runner: the store
//! file, the fault accounting, and the derived CSV must be **byte
//! identical** at every thread count. Scheduling (who measures a chunk,
//! and when) must be unobservable in every output artifact.

use std::path::{Path, PathBuf};

use proptest::prelude::*;

use mpcp_benchmark::record::write_csv;
use mpcp_benchmark::{
    run_campaign, BenchConfig, CampaignConfig, CampaignReport, DatasetSpec, FaultPlan, LibKind,
    RetryPolicy,
};
use mpcp_collectives::Collective;
use mpcp_simnet::Machine;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mpcp_det_{name}_{}", std::process::id()))
}

/// Run a campaign fresh into `path` and return (report, store bytes).
fn run_once(
    spec: &DatasetSpec,
    bench: &BenchConfig,
    plan: Option<&FaultPlan>,
    threads: usize,
    checkpoint_every: u64,
    path: &Path,
) -> (CampaignReport, Vec<u8>) {
    let lib = spec.library(None);
    let cfg = CampaignConfig { threads, checkpoint_every, resume: false };
    let report = run_campaign(spec, &lib, bench, plan, &RetryPolicy::default(), &cfg, path)
        .expect("campaign run");
    let bytes = std::fs::read(path).expect("read store");
    (report, bytes)
}

/// A lossy fault plan exercising every fate (ok / failed / timed out /
/// blacked out) so fault accounting is part of the comparison.
fn lossy_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        fail_prob: 0.2,
        timeout_prob: 0.05,
        outlier_prob: 0.1,
        outlier_scale: 4.0,
        blackout_nodes: vec![3],
        seed,
    }
}

#[test]
fn store_faults_and_csv_are_byte_identical_at_1_2_4_8_threads() {
    let spec = DatasetSpec::tiny_for_tests();
    let bench = BenchConfig::quick();
    let plan = lossy_plan(11);

    // checkpoint_every = 7 cuts the 180-cell grid into 26 chunks, so
    // multi-thread runs genuinely interleave (and steal) chunks.
    let base_path = tmp("threads_1");
    let (base_report, base_bytes) = run_once(&spec, &bench, Some(&plan), 1, 7, &base_path);
    assert!(base_report.faults.cells_failed > 0, "plan must lose cells");
    assert!(base_report.faults.cells_ok > 0, "plan must keep cells");
    let base_csv = tmp("threads_1.csv");
    write_csv(&base_csv, &base_report.records).expect("write csv");
    let base_csv_bytes = std::fs::read(&base_csv).expect("read csv");

    for threads in [2usize, 4, 8] {
        let path = tmp(&format!("threads_{threads}"));
        let (report, bytes) = run_once(&spec, &bench, Some(&plan), threads, 7, &path);
        assert_eq!(bytes, base_bytes, "{threads}-thread store differs from 1-thread");
        assert_eq!(report.records, base_report.records, "{threads}-thread records differ");
        assert_eq!(report.faults, base_report.faults, "{threads}-thread faults differ");
        assert_eq!(report.total_bench, base_report.total_bench);
        let csv = tmp(&format!("threads_{threads}.csv"));
        write_csv(&csv, &report.records).expect("write csv");
        assert_eq!(
            std::fs::read(&csv).expect("read csv"),
            base_csv_bytes,
            "{threads}-thread CSV differs"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&csv).ok();
    }
    std::fs::remove_file(&base_path).ok();
    std::fs::remove_file(&base_csv).ok();
}

#[test]
fn campaign_with_faults_matches_the_sequential_generator() {
    let spec = DatasetSpec::tiny_for_tests();
    let lib = spec.library(None);
    let bench = BenchConfig::quick();
    let plan = lossy_plan(23);
    let retry = RetryPolicy::default();

    let path = tmp("vs_generator");
    let cfg = CampaignConfig { threads: 4, checkpoint_every: 9, resume: false };
    let report = run_campaign(&spec, &lib, &bench, Some(&plan), &retry, &cfg, &path)
        .expect("campaign run");
    let direct = spec.generate_with_faults(&lib, &bench, Some(&plan), &retry);

    assert_eq!(report.records, direct.records);
    assert_eq!(report.faults, direct.faults);
    assert_eq!(report.total_bench, direct.total_bench);
    std::fs::remove_file(&path).ok();
}

proptest! {
    // Each case runs two full campaigns; keep the grid tiny and the
    // case count low so the suite stays in test-suite time.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_grid_shape_is_thread_count_invariant(
        seed in any::<u64>(),
        nodes in proptest::sample::select(vec![vec![2u32], vec![4], vec![2, 3], vec![3, 5]]),
        ppn in proptest::sample::select(vec![vec![1u32], vec![2], vec![1, 2]]),
        msizes in proptest::sample::select(vec![vec![16u64], vec![256], vec![16, 1024]]),
        fail in 0.0f64..0.5,
        timeout in 0.0f64..0.1,
        fault_seed in any::<u64>(),
        threads in 2usize..=6,
        checkpoint_every in 1u64..=11,
    ) {
        let spec = DatasetSpec {
            id: "prop",
            coll: Collective::Allreduce,
            lib: LibKind::OpenMpi,
            machine: Machine::hydra(),
            nodes,
            ppn,
            msizes,
            seed,
        };
        let bench = BenchConfig { max_reps: 5, ..BenchConfig::quick() };
        let plan = FaultPlan { fail_prob: fail, timeout_prob: timeout, seed: fault_seed, ..FaultPlan::none() };
        let p1 = tmp(&format!("prop_s{seed}_t1"));
        let pn = tmp(&format!("prop_s{seed}_tn"));
        let (r1, b1) = run_once(&spec, &bench, Some(&plan), 1, checkpoint_every, &p1);
        let (rn, bn) = run_once(&spec, &bench, Some(&plan), threads, checkpoint_every, &pn);
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&pn).ok();
        prop_assert_eq!(b1, bn, "store bytes differ at {} threads", threads);
        prop_assert_eq!(r1.records, rn.records);
        prop_assert_eq!(r1.faults, rn.faults);
        prop_assert_eq!(r1.total_bench, rn.total_bench);
    }
}
