//! Crash/resume kill-tests: a campaign interrupted at **any byte
//! boundary** — the file a `kill -9` mid-append leaves behind — must
//! resume to a store byte-identical to an uninterrupted run. Corruption
//! that is not a pure truncation must surface as a typed error, never a
//! panic, and never a silently wrong store.

use std::path::{Path, PathBuf};

use mpcp_benchmark::{
    run_campaign, BenchConfig, CampaignConfig, DatasetSpec, FaultPlan, RetryPolicy, StoreError,
};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mpcp_resume_{name}_{}", std::process::id()))
}

/// A small lossy campaign: 40 cells, 10 chunks of 4, every fate
/// represented so chunk payloads carry both coordinate and measurement
/// columns.
fn spec() -> DatasetSpec {
    DatasetSpec {
        nodes: vec![2, 3],
        ppn: vec![1],
        msizes: vec![16, 1024],
        seed: 71,
        ..DatasetSpec::tiny_for_tests()
    }
}

fn plan() -> FaultPlan {
    FaultPlan { fail_prob: 0.25, timeout_prob: 0.1, seed: 5, ..FaultPlan::none() }
}

fn bench() -> BenchConfig {
    BenchConfig { max_reps: 5, ..BenchConfig::quick() }
}

/// Run the reference campaign fresh into `path`, returning its bytes.
fn reference_bytes(path: &Path) -> Vec<u8> {
    let s = spec();
    let lib = s.library(None);
    let cfg = CampaignConfig { threads: 1, checkpoint_every: 4, resume: false };
    run_campaign(&s, &lib, &bench(), Some(&plan()), &RetryPolicy::default(), &cfg, path)
        .expect("reference campaign");
    std::fs::read(path).expect("read reference store")
}

/// Resume a campaign over whatever is at `path` (2 threads, so resume
/// and parallelism compose).
fn resume(path: &Path) -> Result<mpcp_benchmark::CampaignReport, StoreError> {
    let s = spec();
    let lib = s.library(None);
    let cfg = CampaignConfig { threads: 2, checkpoint_every: 4, resume: true };
    run_campaign(&s, &lib, &bench(), Some(&plan()), &RetryPolicy::default(), &cfg, path)
}

#[test]
fn kill_at_every_byte_boundary_resumes_to_identical_bytes() {
    let full_path = tmp("kill_full");
    let full = reference_bytes(&full_path);
    std::fs::remove_file(&full_path).ok();
    assert!(full.len() > 500, "store too small to be a meaningful kill test");

    let path = tmp("kill_cut");
    for cut in 0..full.len() {
        std::fs::write(&path, &full[..cut]).expect("write truncated store");
        let report = match resume(&path) {
            Ok(r) => r,
            // Truncation is always recoverable: anything else is a bug.
            Err(e) => panic!("resume after cut at byte {cut} failed: {e}"),
        };
        assert_eq!(
            std::fs::read(&path).expect("read resumed store"),
            full,
            "store resumed from a cut at byte {cut} is not byte-identical"
        );
        assert_eq!(report.cells_total, 40);
        assert_eq!(
            report.cells_resumed + (report.chunks_total - report.chunks_resumed) * 4,
            40,
            "cut at byte {cut}: resumed + re-measured cells must cover the grid"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_bytes_are_typed_errors_or_correct_completions() {
    let full_path = tmp("flip_full");
    let full = reference_bytes(&full_path);
    std::fs::remove_file(&full_path).ok();

    let path = tmp("flip_cut");
    for pos in 0..full.len() {
        let mut corrupt = full.clone();
        corrupt[pos] ^= 0x40;
        std::fs::write(&path, &corrupt).expect("write corrupted store");
        match resume(&path) {
            // A flip that mimics a shorter valid stream (e.g. in a
            // payload-length field) heals by truncation + re-measure;
            // the final bytes must still be exactly right.
            Ok(_) => assert_eq!(
                std::fs::read(&path).expect("read store"),
                full,
                "flip at byte {pos} resumed to wrong bytes"
            ),
            Err(e @ (StoreError::Codec(_) | StoreError::HeaderMismatch { .. })) => {
                assert!(!e.to_string().is_empty());
            }
            Err(StoreError::Io { .. }) => panic!("flip at byte {pos} surfaced as I/O"),
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn resuming_someone_elses_store_is_a_typed_header_mismatch() {
    let path = tmp("wrong_campaign");
    reference_bytes(&path);

    let other = DatasetSpec { seed: 72, ..spec() };
    let lib = other.library(None);
    let cfg = CampaignConfig { threads: 1, checkpoint_every: 4, resume: true };
    let err = run_campaign(
        &other,
        &lib,
        &bench(),
        Some(&plan()),
        &RetryPolicy::default(),
        &cfg,
        &path,
    )
    .expect_err("a different campaign's store must be rejected");
    match err {
        StoreError::HeaderMismatch { ref what } => assert!(what.contains("seed"), "{what}"),
        other => panic!("expected HeaderMismatch, got {other}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn double_kill_double_resume_still_converges() {
    // Kill twice at awkward places (mid-header, mid-chunk), resuming in
    // between: the store must still converge to the uninterrupted bytes.
    let full_path = tmp("double_full");
    let full = reference_bytes(&full_path);
    std::fs::remove_file(&full_path).ok();

    let path = tmp("double_cut");
    let cuts = [full.len() / 5, full.len() / 2];
    std::fs::write(&path, &full[..cuts[0]]).expect("write first cut");
    resume(&path).expect("first resume");
    std::fs::write(&path, &full[..cuts[1]]).expect("write second cut");
    let report = resume(&path).expect("second resume");
    assert_eq!(std::fs::read(&path).expect("read store"), full);
    assert!(report.cells_resumed > 0, "second resume must reuse committed chunks");
    std::fs::remove_file(&path).ok();
}
