//! Property tests for the metrics core: log-bucketing is monotone and
//! bounds every value, merging equals concatenation, and quantile
//! estimates bracket the true sample quantile within one bucket.

use mpcp_obs::metrics::{bucket_hi, bucket_lo, bucket_of, HistSnapshot, Histogram, NBUCKETS};
use proptest::prelude::*;

fn record_all(values: &[u64]) -> HistSnapshot {
    let h = Histogram::default();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    /// Every value lands in a bucket whose [lo, hi] range contains it.
    #[test]
    fn bucket_bounds_contain_value(v in any::<u64>()) {
        let b = bucket_of(v);
        prop_assert!(b < NBUCKETS);
        prop_assert!(bucket_lo(b) <= v, "lo {} > v {v}", bucket_lo(b));
        prop_assert!(v <= bucket_hi(b), "v {v} > hi {}", bucket_hi(b));
    }

    /// Bucketing is monotone: a ≤ b implies bucket(a) ≤ bucket(b).
    #[test]
    fn bucketing_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_of(lo) <= bucket_of(hi));
    }

    /// Merging two histograms equals recording the concatenated stream.
    #[test]
    fn merge_equals_concatenated_stream(
        xs in prop::collection::vec(any::<u64>(), 0..200),
        ys in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        let mut merged = record_all(&xs);
        merged.merge(&record_all(&ys));
        let mut both = xs.clone();
        both.extend_from_slice(&ys);
        // Wrapping: the atomic sum wraps on overflow exactly like the
        // wrapping sum of the concatenated stream.
        let concat = record_all(&both);
        prop_assert_eq!(merged.buckets, concat.buckets);
        prop_assert_eq!(
            merged.sum,
            xs.iter().chain(&ys).fold(0u64, |acc, &v| acc.wrapping_add(v))
        );
        prop_assert_eq!(merged.count(), both.len() as u64);
        prop_assert_eq!((merged.min, merged.max), (concat.min, concat.max));
    }

    /// Min/max are exact, and the interpolated quantile estimate never
    /// leaves the observed [min, max] range at any q.
    #[test]
    fn min_max_exact_and_bound_quantiles(
        xs in prop::collection::vec(any::<u64>(), 1..300),
        q_millis in 0u64..=1000,
    ) {
        let snap = record_all(&xs);
        prop_assert_eq!(snap.min, *xs.iter().min().unwrap());
        prop_assert_eq!(snap.max, *xs.iter().max().unwrap());
        let q = q_millis as f64 / 1000.0;
        let est = snap.quantile(q).unwrap();
        prop_assert!(
            snap.min <= est && est <= snap.max,
            "estimate {est} outside observed range [{}, {}]", snap.min, snap.max
        );
    }

    /// The quantile estimate lies in the same bucket as the true sample
    /// quantile — i.e. within one bucket (≤ 25% relative error above
    /// the exact range).
    #[test]
    fn quantile_brackets_true_quantile(
        mut xs in prop::collection::vec(0u64..1_000_000_000, 1..300),
        q_millis in 0u64..=1000,
    ) {
        let q = q_millis as f64 / 1000.0;
        let snap = record_all(&xs);
        let est = snap.quantile(q).unwrap();
        xs.sort_unstable();
        // True order statistic at rank ceil(q·n), clamped to [1, n].
        let n = xs.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        let true_q = xs[rank - 1];
        let tb = bucket_of(true_q);
        prop_assert!(
            bucket_lo(tb) <= est && est <= bucket_hi(tb),
            "estimate {est} outside bucket [{}, {}] of true quantile {true_q}",
            bucket_lo(tb), bucket_hi(tb)
        );
    }

    /// Histogram mean is exact (modulo f64 rounding of the true mean).
    #[test]
    fn mean_is_exact(xs in prop::collection::vec(0u64..1_000_000_000, 1..200)) {
        let snap = record_all(&xs);
        let true_mean = xs.iter().sum::<u64>() as f64 / xs.len() as f64;
        prop_assert!((snap.mean() - true_mean).abs() < 1e-6 * true_mean.max(1.0));
    }
}
