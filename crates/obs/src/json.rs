//! A minimal JSON parser — enough to validate and re-read the files
//! this crate emits (the vendored serde shim does not serialize, so
//! the observability layer carries its own reader).
//!
//! Supports the full JSON grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null); numbers are parsed as `f64`.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (key order not preserved).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (surrounding whitespace allowed).
pub fn parse(s: &str) -> Result<JsonValue, String> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

/// Parse JSON Lines: one document per non-empty line.
pub fn parse_jsonl(s: &str) -> Result<Vec<JsonValue>, String> {
    s.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by this
                            // crate; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        c => return Err(format!("bad escape \\{}", c as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": "x\ny", "c": null, "d": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c"), Some(&JsonValue::Null));
        assert_eq!(v.get("d"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("[1] trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn jsonl_lines() {
        let docs = parse_jsonl("{\"a\":1}\n\n{\"b\":2}\n").unwrap();
        assert_eq!(docs.len(), 2);
        assert!(parse_jsonl("{\"a\":1}\nnot json\n").is_err());
    }

    #[test]
    fn unicode_escapes_and_raw_utf8() {
        assert_eq!(parse("\"\\u0041\\u00e9\"").unwrap().as_str(), Some("Aé"));
        assert_eq!(parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
    }
}
