//! Rolling-window telemetry: lock-free recorders that age cumulative
//! counters and histograms into fixed windows of recent time.
//!
//! PR 2's [`crate::metrics`] registry answers "what happened since the
//! process started"; a serving operator needs "what is p99 *right
//! now*". A [`WindowedHistogram`] (and its lighter sibling
//! [`WindowedCounter`]) buckets samples by wall time into a ring of
//! `slots` windows of `slot_ns` each (default 1s × 60). Snapshots
//! merge the in-range windows into per-window [`HistSnapshot`]s,
//! yielding rolling rates, p50/p95/p99, and SLO burn-rate, while
//! windows older than the ring silently expire.
//!
//! # Concurrency design
//!
//! Each recording thread owns a private ring ([`ThreadRing`]) per
//! recorder, registered globally like the span buffers in
//! [`crate::span`]. Because every ring has exactly one writer, slot
//! recycling (claiming a slot whose window has expired for the
//! current window) never races with another writer; readers observe
//! recycling through a seqlock tag per slot:
//!
//! - writer: bump `seq` to odd, rewrite the slot, bump `seq` to even
//!   (release), so an in-progress recycle is visible as an odd tag;
//! - reader: load `seq` (acquire), copy the slot's atomics, fence,
//!   re-load `seq` — retry/skip on odd or changed tags.
//!
//! All slot fields are atomics, so even a theoretically torn read is
//! well-defined; the seqlock only guards *logical* consistency (a
//! reader never merges half-recycled slots). Recycling destroys only
//! windows that are already out of range — a slot is reused for
//! window `w'` only when it holds `w ≡ w' (mod slots)`, i.e. `w ≤ w'
//! − slots` — so a full snapshot taken after writers quiesce is exact:
//! no sample in a live window is lost or double-counted. Samples
//! racing a concurrent snapshot may smear across the count/sum fields
//! of the *current* window (readers see a sample's bucket before its
//! sum, or vice versa); totals re-converge at the next snapshot.
//!
//! Time is injected ([`crate::clock::Clock`]) so tests and replays
//! drive rolls deterministically; only `obs` itself may read the wall
//! clock (the workspace no-wallclock lint covers the deterministic
//! crates).

use crate::metrics::{bucket_of, HistSnapshot, NBUCKETS};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Ring geometry: `slots` windows of `slot_ns` nanoseconds each.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowConfig {
    /// Width of one window in nanoseconds.
    pub slot_ns: u64,
    /// Number of windows retained (ring length).
    pub slots: usize,
}

impl Default for WindowConfig {
    /// One-second windows, one minute of history.
    fn default() -> Self {
        WindowConfig { slot_ns: 1_000_000_000, slots: 60 }
    }
}

impl WindowConfig {
    /// Absolute window index for a timestamp.
    #[inline]
    fn window_of(&self, now_ns: u64) -> u64 {
        now_ns / self.slot_ns
    }

    /// Inclusive tag range (`window + 1`) covering the last `slots`
    /// windows ending at `now_ns`.
    #[inline]
    fn live_tags(&self, now_ns: u64) -> (u64, u64) {
        let hi = self.window_of(now_ns) + 1;
        (hi.saturating_sub(self.slots as u64 - 1).max(1), hi)
    }
}

/// Per-recorder identity for the thread-local ring cache. Monotonic,
/// never reused, so a dropped recorder's id cannot alias a new one.
fn next_recorder_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    // ORDERING: Relaxed — an id ticket: uniqueness comes from the RMW
    // itself; no other data is published under this counter.
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Most rings a thread caches across all live recorders before the
/// oldest cache entry is dropped (the registry keeps the ring alive
/// until its windows expire, so eviction never loses samples).
const TLS_RING_CAP: usize = 64;

// ---------------------------------------------------------------------------
// Histogram slots
// ---------------------------------------------------------------------------

/// One window's worth of histogram state. `window` holds the absolute
/// window index + 1 (0 = never written); `seq` is the seqlock tag.
struct HistSlot {
    seq: AtomicU64,
    window: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl HistSlot {
    fn new() -> HistSlot {
        HistSlot {
            seq: AtomicU64::new(0),
            window: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Seqlock read: the slot's window and contents iff the tag lies in
    /// `[lo_tag, hi_tag]` and no recycle intervened. Bounded retries —
    /// a slot that keeps recycling is being claimed for a window newer
    /// than this snapshot anyway.
    fn read(&self, lo_tag: u64, hi_tag: u64) -> Option<(u64, HistSnapshot)> {
        for _ in 0..8 {
            // ORDERING: Acquire pairs with the writer's Release seq
            // store in `record`: an even s1 means every payload store
            // from that write epoch is visible to the loads below.
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            // ORDERING: Relaxed — the tag may be torn by a racing
            // recycle; the seq re-check below rejects any such read.
            let tag = self.window.load(Ordering::Relaxed);
            if tag < lo_tag || tag > hi_tag {
                return None;
            }
            // ORDERING: Relaxed payload loads — validity is established
            // solely by the Acquire fence + seq re-check below, not by
            // per-load ordering (classic seqlock read side).
            let mut hs = HistSnapshot {
                sum: self.sum.load(Ordering::Relaxed),
                min: self.min.load(Ordering::Relaxed),
                max: self.max.load(Ordering::Relaxed),
                ..HistSnapshot::default()
            };
            // ORDERING: Relaxed bucket loads, validated the same way.
            for (out, b) in hs.buckets.iter_mut().zip(self.buckets.iter()) {
                *out = b.load(Ordering::Relaxed);
            }
            // ORDERING: the Acquire fence orders every payload load
            // above before the Relaxed seq re-check; an unchanged even
            // seq proves no recycle overlapped the reads.
            fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) == s1 {
                return Some((tag - 1, hs));
            }
        }
        None
    }
}

/// A single thread's ring of histogram slots. Exactly one thread
/// writes; any thread may read via the seqlock protocol.
struct ThreadRing {
    slots: Box<[HistSlot]>,
    /// Newest tag this ring has written (for dead-ring pruning).
    newest: AtomicU64,
}

impl ThreadRing {
    fn new(cfg: &WindowConfig) -> ThreadRing {
        ThreadRing {
            slots: (0..cfg.slots).map(|_| HistSlot::new()).collect(),
            newest: AtomicU64::new(0),
        }
    }

    fn record(&self, cfg: &WindowConfig, now_ns: u64, v: u64, n: u64) {
        let w = cfg.window_of(now_ns);
        let tag = w + 1;
        let slot = &self.slots[(w % self.slots.len() as u64) as usize];
        // ORDERING: Relaxed claim check — single-writer slot: only this
        // thread ever recycles it, so the tag cannot move underneath us.
        if slot.window.load(Ordering::Relaxed) != tag {
            // Single writer: only this thread ever recycles this slot.
            // ORDERING: the odd seq bump may be Relaxed because the
            // Release fence right after it orders it before the payload
            // resets (readers reject odd seqs outright); the closing
            // Release fence + Release seq store publish the rewritten
            // slot, pairing with the Acquire load in `read`. See the
            // no-relaxed-publish [[allow]] in lint.toml.
            let s = slot.seq.load(Ordering::Relaxed);
            slot.seq.store(s.wrapping_add(1), Ordering::Relaxed);
            fence(Ordering::Release);
            slot.window.store(tag, Ordering::Relaxed);
            slot.sum.store(0, Ordering::Relaxed);
            slot.min.store(u64::MAX, Ordering::Relaxed);
            slot.max.store(0, Ordering::Relaxed);
            for b in slot.buckets.iter() {
                b.store(0, Ordering::Relaxed);
            }
            fence(Ordering::Release);
            slot.seq.store(s.wrapping_add(2), Ordering::Release);
        }
        // ORDERING: Relaxed sample bumps — same-epoch readers may merge
        // a slightly stale histogram; what must be ordered (the slot's
        // identity) is carried by the seqlock protocol above.
        slot.buckets[bucket_of(v)].fetch_add(n, Ordering::Relaxed);
        slot.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed);
        slot.min.fetch_min(v, Ordering::Relaxed);
        slot.max.fetch_max(v, Ordering::Relaxed);
        self.newest.fetch_max(tag, Ordering::Relaxed);
    }
}

/// A rolling-window histogram recorder. Cheap concurrent recording
/// (per-thread rings, no shared write contention); snapshots merge all
/// threads' in-range windows without stopping writers.
pub struct WindowedHistogram {
    id: u64,
    cfg: WindowConfig,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
}

thread_local! {
    /// Cache of this thread's rings: `(recorder id, ring)`.
    static HIST_RINGS: RefCell<Vec<(u64, Arc<ThreadRing>)>> = const { RefCell::new(Vec::new()) };
}

impl WindowedHistogram {
    /// A recorder with the given geometry. Panics on a zero-sized
    /// window or ring (misconfiguration, not a runtime condition).
    pub fn new(cfg: WindowConfig) -> WindowedHistogram {
        assert!(cfg.slot_ns > 0 && cfg.slots > 0, "degenerate window config");
        WindowedHistogram { id: next_recorder_id(), cfg, rings: Mutex::new(Vec::new()) }
    }

    /// Ring geometry.
    pub fn config(&self) -> WindowConfig {
        self.cfg
    }

    /// This thread's ring, created and registered on first use.
    fn local_ring(&self) -> Arc<ThreadRing> {
        HIST_RINGS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, ring)) = cache.iter().find(|(id, _)| *id == self.id) {
                return Arc::clone(ring);
            }
            let ring = Arc::new(ThreadRing::new(&self.cfg));
            lock_rings(&self.rings).push(Arc::clone(&ring));
            if cache.len() >= TLS_RING_CAP {
                cache.remove(0);
            }
            cache.push((self.id, Arc::clone(&ring)));
            ring
        })
    }

    /// Record one sample at `now_ns` (from the injected clock).
    #[inline]
    pub fn record(&self, now_ns: u64, v: u64) {
        self.record_n(now_ns, v, 1);
    }

    /// Record one observed value standing for `n` samples (a sampled
    /// fast path records every Nth event with weight N, keeping
    /// counts, rates, and quantile weights statistically consistent).
    /// `n == 0` is a no-op.
    #[inline]
    pub fn record_n(&self, now_ns: u64, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.local_ring().record(&self.cfg, now_ns, v, n);
    }

    /// Merge every thread's in-range windows into a snapshot, without
    /// blocking writers. Rings whose owning thread has exited and
    /// whose windows have all expired are pruned here.
    pub fn snapshot(&self, now_ns: u64) -> WindowSnapshot {
        let (lo_tag, hi_tag) = self.cfg.live_tags(now_ns);
        let mut windows: BTreeMap<u64, HistSnapshot> = BTreeMap::new();
        let mut rings = lock_rings(&self.rings);
        rings.retain(|ring| {
            // ORDERING: Relaxed — `newest` is a monotonic high-water
            // mark; pruning a hair late is harmless, pruning is
            // serialized by the registry lock we hold.
            Arc::strong_count(ring) > 1 || ring.newest.load(Ordering::Relaxed) >= lo_tag
        });
        for ring in rings.iter() {
            for slot in ring.slots.iter() {
                if let Some((w, hs)) = slot.read(lo_tag, hi_tag) {
                    match windows.entry(w) {
                        std::collections::btree_map::Entry::Vacant(e) => {
                            e.insert(hs);
                        }
                        std::collections::btree_map::Entry::Occupied(mut e) => {
                            e.get_mut().merge(&hs);
                        }
                    }
                }
            }
        }
        WindowSnapshot {
            slot_ns: self.cfg.slot_ns,
            now_ns,
            windows: windows.into_iter().collect(),
        }
    }
}

/// Lock a ring registry, recovering from a poisoned mutex (a panicked
/// recorder thread must not take telemetry down with it).
fn lock_rings<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A point-in-time view of a [`WindowedHistogram`]: the in-range
/// windows (ascending absolute index) merged across threads.
#[derive(Clone, Debug, Default)]
pub struct WindowSnapshot {
    /// Window width in nanoseconds.
    pub slot_ns: u64,
    /// Timestamp the snapshot was taken at.
    pub now_ns: u64,
    /// `(absolute window index, merged histogram)`, ascending, only
    /// nonempty windows.
    pub windows: Vec<(u64, HistSnapshot)>,
}

impl WindowSnapshot {
    /// All windows merged into one histogram.
    pub fn total(&self) -> HistSnapshot {
        let mut total = HistSnapshot::default();
        for (_, hs) in &self.windows {
            total.merge(hs);
        }
        total
    }

    /// Total samples across the in-range windows.
    pub fn count(&self) -> u64 {
        self.windows.iter().map(|(_, hs)| hs.count()).sum()
    }

    /// Sample rate over the span from the oldest nonempty window's
    /// start to `now_ns` (0 when empty).
    pub fn rate_per_sec(&self) -> f64 {
        let Some(&(w0, _)) = self.windows.first() else {
            return 0.0;
        };
        let span_ns = self.now_ns.saturating_sub(w0.saturating_mul(self.slot_ns)).max(1);
        self.count() as f64 * 1e9 / span_ns as f64
    }

    /// Quantile over all in-range windows merged (see
    /// [`HistSnapshot::quantile`] for the error bound).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.total().quantile(q)
    }

    /// SLO burn-rate: the fraction of nonempty windows whose
    /// `q`-quantile exceeds `slo_ns`. 0 when no window has samples.
    pub fn burn_rate(&self, q: f64, slo_ns: u64) -> f64 {
        let mut nonempty = 0u64;
        let mut breached = 0u64;
        for (_, hs) in &self.windows {
            if let Some(est) = hs.quantile(q) {
                nonempty += 1;
                if est > slo_ns {
                    breached += 1;
                }
            }
        }
        if nonempty == 0 {
            0.0
        } else {
            breached as f64 / nonempty as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Counter slots
// ---------------------------------------------------------------------------

/// One window of a [`WindowedCounter`]: same seqlock protocol as
/// [`HistSlot`], one value instead of a histogram.
struct CountSlot {
    seq: AtomicU64,
    window: AtomicU64,
    value: AtomicU64,
}

impl CountSlot {
    fn new() -> CountSlot {
        CountSlot { seq: AtomicU64::new(0), window: AtomicU64::new(0), value: AtomicU64::new(0) }
    }

    fn read(&self, lo_tag: u64, hi_tag: u64) -> Option<(u64, u64)> {
        for _ in 0..8 {
            // ORDERING: Acquire pairs with the writer's Release seq
            // store (same seqlock read protocol as HistSlot::read).
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let tag = self.window.load(Ordering::Relaxed); // ORDERING: see HistSlot::read.
            if tag < lo_tag || tag > hi_tag {
                return None;
            }
            let v = self.value.load(Ordering::Relaxed); // ORDERING: see HistSlot::read.
            // ORDERING: Acquire fence before the Relaxed seq re-check
            // validates the payload loads above (see HistSlot::read).
            fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) == s1 {
                return Some((tag - 1, v));
            }
        }
        None
    }
}

struct CountRing {
    slots: Box<[CountSlot]>,
    newest: AtomicU64,
}

impl CountRing {
    fn new(cfg: &WindowConfig) -> CountRing {
        CountRing {
            slots: (0..cfg.slots).map(|_| CountSlot::new()).collect(),
            newest: AtomicU64::new(0),
        }
    }

    fn add(&self, cfg: &WindowConfig, now_ns: u64, n: u64) {
        let w = cfg.window_of(now_ns);
        let tag = w + 1;
        let slot = &self.slots[(w % self.slots.len() as u64) as usize];
        // ORDERING: Relaxed claim check — single-writer slot, exactly
        // as in ThreadRing::record.
        if slot.window.load(Ordering::Relaxed) != tag {
            // ORDERING: odd-bump Relaxed + paired Release fences +
            // closing Release seq store publish the recycled slot
            // exactly as in ThreadRing::record (see the
            // no-relaxed-publish [[allow]] in lint.toml).
            let s = slot.seq.load(Ordering::Relaxed);
            slot.seq.store(s.wrapping_add(1), Ordering::Relaxed);
            fence(Ordering::Release);
            slot.window.store(tag, Ordering::Relaxed);
            slot.value.store(0, Ordering::Relaxed);
            fence(Ordering::Release);
            slot.seq.store(s.wrapping_add(2), Ordering::Release);
        }
        // ORDERING: Relaxed — monotonic count/watermark bumps, ordered
        // by the seqlock protocol above where it matters.
        slot.value.fetch_add(n, Ordering::Relaxed);
        self.newest.fetch_max(tag, Ordering::Relaxed);
    }
}

/// A rolling-window counter: per-window increment totals with the same
/// per-thread-ring design as [`WindowedHistogram`], for rates like
/// requests/s or shed/s where a full histogram is overkill.
pub struct WindowedCounter {
    id: u64,
    cfg: WindowConfig,
    rings: Mutex<Vec<Arc<CountRing>>>,
}

thread_local! {
    static COUNT_RINGS: RefCell<Vec<(u64, Arc<CountRing>)>> = const { RefCell::new(Vec::new()) };
}

impl WindowedCounter {
    /// A counter with the given geometry (panics on degenerate config).
    pub fn new(cfg: WindowConfig) -> WindowedCounter {
        assert!(cfg.slot_ns > 0 && cfg.slots > 0, "degenerate window config");
        WindowedCounter { id: next_recorder_id(), cfg, rings: Mutex::new(Vec::new()) }
    }

    fn local_ring(&self) -> Arc<CountRing> {
        COUNT_RINGS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, ring)) = cache.iter().find(|(id, _)| *id == self.id) {
                return Arc::clone(ring);
            }
            let ring = Arc::new(CountRing::new(&self.cfg));
            lock_rings(&self.rings).push(Arc::clone(&ring));
            if cache.len() >= TLS_RING_CAP {
                cache.remove(0);
            }
            cache.push((self.id, Arc::clone(&ring)));
            ring
        })
    }

    /// Add `n` to the window containing `now_ns`.
    #[inline]
    pub fn add(&self, now_ns: u64, n: u64) {
        self.local_ring().add(&self.cfg, now_ns, n);
    }

    /// Per-window totals across threads, ascending by window index.
    pub fn snapshot(&self, now_ns: u64) -> CounterWindows {
        let (lo_tag, hi_tag) = self.cfg.live_tags(now_ns);
        let mut windows: BTreeMap<u64, u64> = BTreeMap::new();
        let mut rings = lock_rings(&self.rings);
        rings.retain(|ring| {
            // ORDERING: Relaxed — monotonic high-water mark; see the
            // matching retain in WindowedHistogram::snapshot.
            Arc::strong_count(ring) > 1 || ring.newest.load(Ordering::Relaxed) >= lo_tag
        });
        for ring in rings.iter() {
            for slot in ring.slots.iter() {
                if let Some((w, v)) = slot.read(lo_tag, hi_tag) {
                    *windows.entry(w).or_insert(0) += v;
                }
            }
        }
        CounterWindows {
            slot_ns: self.cfg.slot_ns,
            now_ns,
            windows: windows.into_iter().collect(),
        }
    }
}

/// A point-in-time view of a [`WindowedCounter`].
#[derive(Clone, Debug, Default)]
pub struct CounterWindows {
    /// Window width in nanoseconds.
    pub slot_ns: u64,
    /// Timestamp the snapshot was taken at.
    pub now_ns: u64,
    /// `(absolute window index, total)`, ascending, nonempty windows.
    pub windows: Vec<(u64, u64)>,
}

impl CounterWindows {
    /// Sum across the in-range windows.
    pub fn total(&self) -> u64 {
        self.windows.iter().map(|&(_, v)| v).sum()
    }

    /// Increment rate over the span from the oldest nonempty window's
    /// start to `now_ns` (0 when empty).
    pub fn rate_per_sec(&self) -> f64 {
        let Some(&(w0, _)) = self.windows.first() else {
            return 0.0;
        };
        let span_ns = self.now_ns.saturating_sub(w0.saturating_mul(self.slot_ns)).max(1);
        self.total() as f64 * 1e9 / span_ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::metrics::Histogram;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    const CFG: WindowConfig = WindowConfig { slot_ns: 1_000, slots: 16 };

    #[test]
    fn single_thread_roll_and_expiry() {
        let h = WindowedHistogram::new(CFG);
        let clock = Clock::manual(0);
        // Window 0: slow samples breaching a 500ns SLO; windows 1–2 fast.
        for v in [900u64, 950, 980] {
            h.record(clock.now_ns(), v);
        }
        clock.set(1_000);
        h.record(clock.now_ns(), 100);
        clock.set(2_500);
        h.record(clock.now_ns(), 120);
        let s = h.snapshot(clock.now_ns());
        assert_eq!(s.windows.iter().map(|(w, _)| *w).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(s.count(), 5);
        assert_eq!(s.total().min, 100);
        assert_eq!(s.total().max, 980);
        // 1 of 3 nonempty windows breaches p99 > 500ns.
        let burn = s.burn_rate(0.99, 500);
        assert!((burn - 1.0 / 3.0).abs() < 1e-9, "burn {burn}");
        // rate: 5 samples over 2500ns.
        assert!((s.rate_per_sec() - 5.0 * 1e9 / 2500.0).abs() < 1e-6);
        // Advance past the ring: everything expires.
        clock.set(CFG.slot_ns * (CFG.slots as u64 + 3));
        let s = h.snapshot(clock.now_ns());
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.rate_per_sec(), 0.0);
    }

    #[test]
    fn slot_recycling_keeps_only_live_windows() {
        let h = WindowedHistogram::new(CFG);
        let clock = Clock::manual(0);
        // Two full laps of the ring, one sample per window.
        for w in 0..(CFG.slots as u64 * 2) {
            clock.set(w * CFG.slot_ns);
            h.record(clock.now_ns(), w);
        }
        let s = h.snapshot(clock.now_ns());
        // Exactly the last `slots` windows survive.
        assert_eq!(s.windows.len(), CFG.slots);
        assert_eq!(s.windows.first().unwrap().0, CFG.slots as u64);
        assert_eq!(s.windows.last().unwrap().0, CFG.slots as u64 * 2 - 1);
        assert_eq!(s.total().min, CFG.slots as u64);
    }

    /// The satellite gate: N writer threads with a reader snapshotting
    /// mid-roll; the final snapshot must equal the single-threaded
    /// oracle exactly — no lost or double-counted samples across slot
    /// recycling.
    #[test]
    fn concurrent_writers_match_single_thread_oracle() {
        let threads: usize = if cfg!(miri) { 2 } else { 4 };
        let per: usize = if cfg!(miri) { 48 } else { 480 };
        let h = Arc::new(WindowedHistogram::new(CFG));
        let clock = Clock::manual(0);

        // Prefill every slot with old windows so the concurrent phase
        // recycles slots while the reader is looking at them.
        for w in 0..CFG.slots as u64 {
            clock.set(w * CFG.slot_ns);
            h.record(clock.now_ns(), 1);
        }
        let start_w = CFG.slots as u64 * 2;
        clock.set(start_w * CFG.slot_ns);

        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let (h, clock, stop) = (Arc::clone(&h), clock.clone(), Arc::clone(&stop));
            let expected_total = (threads * per) as u64;
            thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let s = h.snapshot(clock.now_ns());
                    assert!(s.count() <= expected_total, "over-counted mid-roll");
                    assert!(s.windows.windows(2).all(|p| p[0].0 < p[1].0), "unsorted");
                    thread::yield_now();
                }
            })
        };

        let sample = |t: usize, i: usize| ((t * 7919 + i * 13) % 5_000) as u64;
        let writers: Vec<_> = (0..threads)
            .map(|t| {
                let (h, clock) = (Arc::clone(&h), clock.clone());
                thread::spawn(move || {
                    for i in 0..per {
                        h.record(clock.now_ns(), sample(t, i));
                        // Advance occasionally: rolls windows, but the
                        // whole phase spans < `slots` windows so no
                        // concurrent sample ever expires.
                        if i % 48 == 47 {
                            clock.advance(CFG.slot_ns / 4);
                        }
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();

        // Span check: advances = threads·per/32 quarter-windows.
        let advanced = clock.now_ns() - start_w * CFG.slot_ns;
        assert!(advanced < CFG.slot_ns * (CFG.slots as u64 - 1), "test drifted out of range");

        let oracle_h = Histogram::default();
        for t in 0..threads {
            for i in 0..per {
                oracle_h.record(sample(t, i));
            }
        }
        let oracle = oracle_h.snapshot();
        let total = h.snapshot(clock.now_ns()).total();
        assert_eq!(total, oracle);
    }

    #[test]
    fn windowed_counter_rates() {
        let c = WindowedCounter::new(CFG);
        let clock = Clock::manual(0);
        c.add(clock.now_ns(), 3);
        clock.set(1_500);
        c.add(clock.now_ns(), 2);
        c.add(clock.now_ns(), 5);
        let s = c.snapshot(clock.now_ns());
        assert_eq!(s.windows, vec![(0, 3), (1, 7)]);
        assert_eq!(s.total(), 10);
        assert!((s.rate_per_sec() - 10.0 * 1e9 / 1500.0).abs() < 1e-6);
        clock.set(CFG.slot_ns * (CFG.slots as u64 + 2));
        assert_eq!(c.snapshot(clock.now_ns()).total(), 0);
    }

    #[test]
    fn dead_thread_rings_survive_until_expiry() {
        let h = Arc::new(WindowedHistogram::new(CFG));
        let clock = Clock::manual(0);
        {
            let (h, clock) = (Arc::clone(&h), clock.clone());
            thread::spawn(move || h.record(clock.now_ns(), 77)).join().unwrap();
        }
        // The writer thread is gone, but its window is still live.
        let s = h.snapshot(clock.now_ns());
        assert_eq!(s.count(), 1);
        assert_eq!(s.total().min, 77);
        // Once expired, the orphaned ring is pruned.
        clock.set(CFG.slot_ns * (CFG.slots as u64 + 1));
        assert_eq!(h.snapshot(clock.now_ns()).count(), 0);
        assert!(lock_rings(&h.rings).is_empty(), "orphaned ring not pruned");
    }
}
