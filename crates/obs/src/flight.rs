//! Flight recorder: a bounded ring of the most recent trace events,
//! frozen and dumped to a Chrome-trace post-mortem file when a
//! trigger fires.
//!
//! [`crate::span`] buffers are drain-once and unbounded — fine for a
//! traced batch run, useless for answering "what happened in the 50ms
//! before that latency spike" in a long-lived server. The flight
//! recorder taps the same recording path ([`observe`] is called for
//! every completed span and instant event while armed), keeps only
//! the last `capacity` events (overwrite-oldest, one atomic
//! reservation per event), and on the first matching trigger freezes
//! itself and writes the ring as a Chrome trace.
//!
//! Trigger taxonomy (see [`FlightConfig`]):
//! - **latency-over-threshold** — a span (optionally name-filtered)
//!   whose duration exceeds `latency_threshold_ns`;
//! - **named events** — an instant event matching one of
//!   `event_prefixes`, e.g. `fit.error` (a training failure) or
//!   `serve.degraded` (a selection that fell back or produced no
//!   finite prediction).
//!
//! The trigger check runs *after* the event is recorded, so the
//! offending span is always inside its own dump. `dumped.swap(true)`
//! guarantees exactly one dump per arming no matter how many threads
//! trip triggers concurrently; re-[`arm`] to record again.
//!
//! Concurrency: the hot path is one relaxed load when disarmed; when
//! armed, a slot index is reserved with `fetch_add` (lock-free — no
//! writer ever waits for another to *choose* a slot) and the event is
//! stored under that slot's own mutex, contended only when writers
//! lap the ring within one reservation cycle.

use crate::export::chrome_trace;
use crate::span::{AttrValue, EventKind, TraceEvent};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// What arms the recorder and when it dumps.
#[derive(Clone, Debug)]
pub struct FlightConfig {
    /// Ring size: how many recent events a dump contains at most.
    pub capacity: usize,
    /// Dump when a span's duration exceeds this (None = no latency
    /// trigger).
    pub latency_threshold_ns: Option<u64>,
    /// Restrict the latency trigger to spans whose name starts with
    /// this prefix (empty = any span).
    pub latency_prefix: String,
    /// Instant-event name prefixes that trigger a dump (e.g.
    /// `fit.error`, `serve.degraded`).
    pub event_prefixes: Vec<String>,
    /// Where the post-mortem Chrome trace is written.
    pub dump_path: PathBuf,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            capacity: 256,
            latency_threshold_ns: None,
            latency_prefix: String::new(),
            event_prefixes: vec!["fit.error".into(), "serve.degraded".into()],
            dump_path: PathBuf::from("flight_dump.json"),
        }
    }
}

struct Ring {
    cfg: FlightConfig,
    /// Total events ever recorded; `head % capacity` is the next slot.
    head: AtomicU64,
    slots: Box<[Mutex<Option<TraceEvent>>]>,
    dumped: AtomicBool,
    dump_ok: AtomicBool,
}

/// Fast-path gate: one relaxed load per recorded event when disarmed.
static ARMED: AtomicBool = AtomicBool::new(false);

fn cell() -> &'static RwLock<Option<Arc<Ring>>> {
    static CELL: OnceLock<RwLock<Option<Arc<Ring>>>> = OnceLock::new();
    CELL.get_or_init(|| RwLock::new(None))
}

fn lock_slot(slot: &Mutex<Option<TraceEvent>>) -> std::sync::MutexGuard<'_, Option<TraceEvent>> {
    slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Ring {
    fn new(cfg: FlightConfig) -> Ring {
        let capacity = cfg.capacity.max(1);
        Ring {
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            dumped: AtomicBool::new(false),
            dump_ok: AtomicBool::new(false),
            cfg,
        }
    }

    fn push(&self, ev: &TraceEvent) {
        // ORDERING: Relaxed — the ticket's uniqueness comes from the
        // RMW; the event payload is published by the slot Mutex.
        let idx = self.head.fetch_add(1, Ordering::Relaxed);
        *lock_slot(&self.slots[(idx % self.slots.len() as u64) as usize]) = Some(ev.clone());
    }

    fn is_trigger(&self, ev: &TraceEvent) -> Option<String> {
        match ev.kind {
            EventKind::Span => {
                let threshold = self.cfg.latency_threshold_ns?;
                (ev.dur_ns > threshold && ev.name.starts_with(self.cfg.latency_prefix.as_str()))
                    .then(|| format!("latency: {} took {}ns > {}ns", ev.name, ev.dur_ns, threshold))
            }
            EventKind::Instant => self
                .cfg
                .event_prefixes
                .iter()
                .find(|p| ev.name.starts_with(p.as_str()))
                .map(|p| format!("event: {} (matched \"{p}\")", ev.name)),
        }
    }

    /// Collect the ring oldest-first (only filled slots), append the
    /// trigger marker, and write the post-mortem trace.
    fn dump(&self, reason: &str, trigger: &TraceEvent) {
        // ORDERING: Relaxed — an approximate cursor is fine: racing
        // pushes may land or miss, and each slot read is Mutex-fenced.
        let head = self.head.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut events: Vec<TraceEvent> = (start..head)
            .filter_map(|i| lock_slot(&self.slots[(i % cap) as usize]).clone())
            .collect();
        events.sort_by_key(|e| (e.ts_ns, e.id));
        events.push(TraceEvent {
            name: "flight.trigger",
            kind: EventKind::Instant,
            ts_ns: trigger.ts_ns.saturating_add(trigger.dur_ns),
            dur_ns: 0,
            tid: trigger.tid,
            id: 0,
            parent: trigger.id,
            attrs: vec![
                ("reason", AttrValue::Str(reason.to_string())),
                ("events", AttrValue::U64(events.len() as u64 + 1)),
            ],
        });
        let ok = std::fs::write(&self.cfg.dump_path, chrome_trace(&events, None)).is_ok();
        // ORDERING: Relaxed — a status flag read only by `status()`
        // polling; no data is published under it.
        self.dump_ok.store(ok, Ordering::Relaxed);
    }
}

/// Install and arm a recorder (replacing any previous one). Recording
/// starts immediately; the first trigger freezes it and writes
/// `cfg.dump_path`.
pub fn arm(cfg: FlightConfig) {
    let ring = Arc::new(Ring::new(cfg));
    *cell().write().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(ring);
    // ORDERING: Release pairs with `observe`'s load: a thread that sees
    // armed=true then takes the RwLock, which orders the ring install.
    ARMED.store(true, Ordering::Release);
}

/// Disarm and drop the recorder (no dump). Returns whether one was
/// installed.
pub fn disarm() -> bool {
    // ORDERING: Release mirrors `arm`; stragglers that still see true
    // just find an empty cell under the RwLock and bail.
    ARMED.store(false, Ordering::Release);
    cell()
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take()
        .is_some()
}

/// Point-in-time recorder state, for introspection (`mpcp top`).
#[derive(Clone, Debug, PartialEq)]
pub struct FlightStatus {
    /// Still recording (armed and not yet triggered).
    pub armed: bool,
    /// A trigger fired and the ring was dumped.
    pub dumped: bool,
    /// The dump file was written successfully.
    pub dump_ok: bool,
    /// Total events observed since arming.
    pub events_seen: u64,
    /// Configured dump destination.
    pub dump_path: PathBuf,
}

/// Current recorder state, `None` when never armed (or disarmed).
pub fn status() -> Option<FlightStatus> {
    let guard = cell().read().unwrap_or_else(std::sync::PoisonError::into_inner);
    let ring = guard.as_ref()?;
    // ORDERING: Relaxed throughout — a point-in-time status poll; the
    // fields need no mutual consistency, only eventual visibility.
    Some(FlightStatus {
        armed: ARMED.load(Ordering::Relaxed),
        dumped: ring.dumped.load(Ordering::Relaxed),
        dump_ok: ring.dump_ok.load(Ordering::Relaxed),
        events_seen: ring.head.load(Ordering::Relaxed),
        dump_path: ring.cfg.dump_path.clone(),
    })
}

/// Record one completed span/event into the ring and fire a dump if
/// it matches a trigger. Called from [`crate::span`]'s recording
/// paths; a disarmed recorder costs one relaxed load.
pub(crate) fn observe(ev: &TraceEvent) {
    // ORDERING: Relaxed — the cheap disarmed-fast-path check; the ring
    // itself is fetched under the RwLock, which provides the ordering.
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    let ring = {
        let guard = cell().read().unwrap_or_else(std::sync::PoisonError::into_inner);
        match guard.as_ref() {
            Some(r) => Arc::clone(r),
            None => return,
        }
    };
    ring.push(ev);
    if let Some(reason) = ring.is_trigger(ev) {
        // ORDERING: the SeqCst swap makes "who dumps" a single total-
        // order race: exactly one dump per arming, no matter how many
        // threads trip triggers concurrently. The Release disarm then
        // stops further recording as soon as other threads observe it.
        if !ring.dumped.swap(true, Ordering::SeqCst) {
            ARMED.store(false, Ordering::Release);
            ring.dump(&reason, ev);
        }
    }
}

/// Directly observe an externally built event (tests, synthetic
/// markers). Same semantics as the span-path hook.
pub fn observe_event(ev: &TraceEvent) {
    observe(ev);
}

/// Dump the ring now, without a trigger (e.g. on operator request or
/// at shutdown), to `path`. Returns false when disarmed/never armed
/// or the write failed. Does not freeze the recorder.
pub fn dump_now(path: &Path) -> bool {
    let guard = cell().read().unwrap_or_else(std::sync::PoisonError::into_inner);
    let Some(ring) = guard.as_ref() else { return false };
    // ORDERING: Relaxed — same approximate-cursor contract as
    // `Ring::dump`; slot contents are Mutex-fenced.
    let head = ring.head.load(Ordering::Relaxed);
    let cap = ring.slots.len() as u64;
    let start = head.saturating_sub(cap);
    let mut events: Vec<TraceEvent> = (start..head)
        .filter_map(|i| lock_slot(&ring.slots[(i % cap) as usize]).clone())
        .collect();
    events.sort_by_key(|e| (e.ts_ns, e.id));
    std::fs::write(path, chrome_trace(&events, None)).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn span_ev(name: &'static str, ts_ns: u64, dur_ns: u64) -> TraceEvent {
        TraceEvent {
            name,
            kind: EventKind::Span,
            ts_ns,
            dur_ns,
            tid: 1,
            id: ts_ns + 1,
            parent: 0,
            attrs: Vec::new(),
        }
    }

    fn instant_ev(name: &'static str, ts_ns: u64) -> TraceEvent {
        TraceEvent { name, kind: EventKind::Instant, ts_ns, dur_ns: 0, tid: 1, id: 0, parent: 0, attrs: Vec::new() }
    }

    fn temp_path(file: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mpcp_obs_flight_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(file)
    }

    #[test]
    fn latency_trigger_dumps_exactly_once_with_offender() {
        let _lock = crate::span::test_lock();
        let path = temp_path("latency.json");
        std::fs::remove_file(&path).ok();
        arm(FlightConfig {
            capacity: 8,
            latency_threshold_ns: Some(1_000),
            latency_prefix: "serve.".into(),
            event_prefixes: Vec::new(),
            dump_path: path.clone(),
        });
        for i in 0..5u64 {
            observe(&span_ev("serve.fast", 10 + i, 100));
        }
        // Over threshold but wrong prefix: no trigger.
        observe(&span_ev("train.slow", 100, 50_000));
        assert!(!status().unwrap().dumped);
        observe(&span_ev("serve.spike", 200, 9_000));
        let st = status().unwrap();
        assert!(st.dumped && st.dump_ok && !st.armed, "{st:?}");
        // A second spike after the freeze neither dumps nor records.
        observe(&span_ev("serve.spike2", 300, 9_000));
        assert_eq!(status().unwrap().events_seen, st.events_seen);

        let parsed = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let arr = parsed.as_arr().unwrap().to_vec();
        let names: Vec<_> =
            arr.iter().filter_map(|d| d.get("name").and_then(|n| n.as_str())).collect();
        assert!(names.contains(&"serve.spike"), "offending span missing: {names:?}");
        assert!(names.contains(&"flight.trigger"), "trigger marker missing");
        assert!(!names.contains(&"serve.spike2"));
        assert!(disarm());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn event_trigger_and_overwrite_oldest() {
        let _lock = crate::span::test_lock();
        let path = temp_path("degraded.json");
        std::fs::remove_file(&path).ok();
        arm(FlightConfig {
            capacity: 4,
            latency_threshold_ns: None,
            latency_prefix: String::new(),
            event_prefixes: vec!["serve.degraded".into()],
            dump_path: path.clone(),
        });
        let fillers: Vec<&'static str> =
            vec!["f0", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9"];
        for (i, name) in fillers.iter().enumerate() {
            observe(&span_ev(name, 10 * (i as u64 + 1), 5));
        }
        observe(&instant_ev("serve.degraded.no_finite", 1_000));
        let st = status().unwrap();
        assert!(st.dumped && st.dump_ok, "{st:?}");

        let parsed = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let names: Vec<String> = parsed
            .as_arr()
            .unwrap()
            .iter()
            .filter_map(|d| d.get("name").and_then(|n| n.as_str()).map(str::to_string))
            .collect();
        // Ring holds the last 4 events: f7 f8 f9 + the trigger event,
        // plus the flight.trigger marker appended at dump time.
        assert!(names.contains(&"serve.degraded.no_finite".to_string()));
        assert!(names.contains(&"f9".to_string()) && !names.contains(&"f0".to_string()));
        assert_eq!(names.len(), 5, "{names:?}");
        assert!(disarm());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dump_now_snapshots_without_freezing() {
        let _lock = crate::span::test_lock();
        let path = temp_path("manual.json");
        std::fs::remove_file(&path).ok();
        arm(FlightConfig {
            capacity: 8,
            latency_threshold_ns: None,
            latency_prefix: String::new(),
            event_prefixes: Vec::new(),
            dump_path: temp_path("unused.json"),
        });
        observe(&span_ev("a", 1, 10));
        assert!(dump_now(&path));
        let st = status().unwrap();
        assert!(st.armed && !st.dumped);
        observe(&span_ev("b", 2, 10));
        assert_eq!(status().unwrap().events_seen, 2);
        assert!(disarm());
        assert!(!dump_now(&path));
        assert_eq!(status(), None);
        std::fs::remove_file(&path).ok();
    }
}
