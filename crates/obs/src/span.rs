//! Span and event recording: RAII guards, thread-local buffers, and a
//! global drain.
//!
//! Each thread records into its own `Arc<Mutex<Vec<TraceEvent>>>`
//! buffer (uncontended except while draining), registered globally on
//! first use so [`drain`] can collect from every thread that ever
//! recorded — including short-lived worker-pool threads that have
//! since exited.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// An attribute value attached to a span or event.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Text.
    Str(String),
}

impl AttrValue {
    /// Render as a JSON value fragment.
    pub fn to_json(&self) -> String {
        match self {
            AttrValue::U64(v) => v.to_string(),
            AttrValue::I64(v) => v.to_string(),
            AttrValue::F64(v) if v.is_finite() => {
                // Shortest round-trip float; JSON has no NaN/Inf.
                format!("{v}")
            }
            AttrValue::F64(v) => format!("\"{v}\""),
            AttrValue::Str(s) => crate::export::json_string(s),
        }
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// What a [`TraceEvent`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span with a duration.
    Span,
    /// A point-in-time event.
    Instant,
}

/// One recorded span or event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Span/event name (static: probe sites name themselves).
    pub name: &'static str,
    /// Span or instant.
    pub kind: EventKind,
    /// Start time, nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Recording thread (dense ids assigned in first-use order).
    pub tid: u64,
    /// Unique id of this span (0 for instants).
    pub id: u64,
    /// Id of the enclosing span, 0 if top-level.
    pub parent: u64,
    /// Attributes in insertion order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

type Buffer = Arc<Mutex<Vec<TraceEvent>>>;

fn buffer_registry() -> &'static Mutex<Vec<Buffer>> {
    static REGISTRY: OnceLock<Mutex<Vec<Buffer>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

pub(crate) fn init_epoch() {
    EPOCH.get_or_init(Instant::now);
}

fn since_epoch(t: Instant) -> u64 {
    let e = *EPOCH.get_or_init(Instant::now);
    t.saturating_duration_since(e).as_nanos() as u64
}

struct Local {
    buf: Buffer,
    stack: Vec<u64>,
    tid: u64,
}

impl Local {
    fn new() -> Local {
        let buf: Buffer = Arc::new(Mutex::new(Vec::new()));
        buffer_registry().lock().unwrap().push(Arc::clone(&buf));
        Local { buf, stack: Vec::new(), tid: NEXT_TID.fetch_add(1, Ordering::Relaxed) }
    }
}

thread_local! {
    static LOCAL: RefCell<Local> = RefCell::new(Local::new());
}

/// Collect every recorded event from every thread, oldest first, and
/// clear the buffers. Buffers of exited threads are drained too, then
/// dropped.
pub fn drain() -> Vec<TraceEvent> {
    let mut out = Vec::new();
    let mut registry = buffer_registry().lock().unwrap();
    registry.retain(|buf| {
        out.append(&mut buf.lock().unwrap());
        // Keep only buffers some live thread still holds.
        Arc::strong_count(buf) > 1
    });
    drop(registry);
    out.sort_by_key(|e| (e.ts_ns, e.id));
    out
}

/// Id of the innermost open span on this thread (0 if none).
pub fn current_span_id() -> u64 {
    LOCAL.with(|l| l.borrow().stack.last().copied().unwrap_or(0))
}

/// Open a span. Returns a no-op guard when recording is disabled; the
/// span is recorded (with its duration and attributes) when the guard
/// drops.
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard(None);
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let parent = l.stack.last().copied().unwrap_or(0);
        l.stack.push(id);
        parent
    });
    SpanGuard(Some(ActiveSpan { name, id, parent, start: Instant::now(), attrs: Vec::new() }))
}

struct ActiveSpan {
    name: &'static str,
    id: u64,
    parent: u64,
    start: Instant,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// RAII guard for an open span; records on drop.
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    /// Attach an attribute (builder style, at open time).
    pub fn attr(mut self, key: &'static str, value: impl Into<AttrValue>) -> SpanGuard {
        self.set_attr(key, value);
        self
    }

    /// Attach an attribute to an already-open span (e.g. a result
    /// computed inside the span).
    pub fn set_attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(s) = self.0.as_mut() {
            s.attrs.push((key, value.into()));
        }
    }

    /// This span's id (0 when recording was disabled at open).
    pub fn id(&self) -> u64 {
        self.0.as_ref().map_or(0, |s| s.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(s) = self.0.take() else { return };
        let end = Instant::now();
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            // Pop this span; defensive against out-of-order guard drops.
            if let Some(pos) = l.stack.iter().rposition(|&id| id == s.id) {
                l.stack.remove(pos);
            }
            let ev = TraceEvent {
                name: s.name,
                kind: EventKind::Span,
                ts_ns: since_epoch(s.start),
                dur_ns: end.saturating_duration_since(s.start).as_nanos() as u64,
                tid: l.tid,
                id: s.id,
                parent: s.parent,
                attrs: s.attrs,
            };
            crate::flight::observe(&ev);
            l.buf.lock().unwrap().push(ev);
        });
    }
}

/// Build a point-in-time event; call [`EventBuilder::emit`] (or let it
/// drop) to record it under the current span.
pub fn event(name: &'static str) -> EventBuilder {
    if !crate::enabled() {
        return EventBuilder(None);
    }
    EventBuilder(Some(PendingEvent { name, at: Instant::now(), attrs: Vec::new() }))
}

struct PendingEvent {
    name: &'static str,
    at: Instant,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// Builder for an instant event; records on `emit` or drop.
pub struct EventBuilder(Option<PendingEvent>);

impl EventBuilder {
    /// Attach an attribute.
    pub fn attr(mut self, key: &'static str, value: impl Into<AttrValue>) -> EventBuilder {
        if let Some(e) = self.0.as_mut() {
            e.attrs.push((key, value.into()));
        }
        self
    }

    /// Record the event now.
    pub fn emit(mut self) {
        self.record();
    }

    fn record(&mut self) {
        let Some(e) = self.0.take() else { return };
        LOCAL.with(|l| {
            let l = l.borrow_mut();
            let ev = TraceEvent {
                name: e.name,
                kind: EventKind::Instant,
                ts_ns: since_epoch(e.at),
                dur_ns: 0,
                tid: l.tid,
                id: 0,
                parent: l.stack.last().copied().unwrap_or(0),
                attrs: e.attrs,
            };
            crate::flight::observe(&ev);
            l.buf.lock().unwrap().push(ev);
        });
    }
}

impl Drop for EventBuilder {
    fn drop(&mut self) {
        self.record();
    }
}

/// Serialize tests that toggle the global enabled flag.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_parent_link() {
        let _lock = test_lock();
        crate::set_enabled(true);
        drain();
        let outer_id;
        {
            let outer = span("outer").attr("k", 7u64);
            outer_id = outer.id();
            assert_eq!(current_span_id(), outer_id);
            {
                let _inner = span("inner");
                event("tick").attr("x", 1.5).emit();
            }
        }
        crate::set_enabled(false);
        let events = drain();
        assert_eq!(events.len(), 3);
        let tick = events.iter().find(|e| e.name == "tick").unwrap();
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        assert_eq!(tick.kind, EventKind::Instant);
        assert_eq!(tick.parent, inner.id);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.id, outer_id);
        assert_eq!(outer.parent, 0);
        assert!(outer.dur_ns >= inner.dur_ns);
        assert_eq!(outer.attrs, vec![("k", AttrValue::U64(7))]);
    }

    #[test]
    fn drain_collects_across_threads() {
        let _lock = test_lock();
        crate::set_enabled(true);
        drain();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let _g = span("worker").attr("i", i as u64);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        crate::set_enabled(false);
        let events = drain();
        assert_eq!(events.iter().filter(|e| e.name == "worker").count(), 4);
        let tids: std::collections::BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 4);
        // A second drain is empty (buffers cleared, dead threads dropped).
        assert!(drain().is_empty());
    }

    #[test]
    fn set_attr_after_open() {
        let _lock = test_lock();
        crate::set_enabled(true);
        drain();
        {
            let mut g = span("run");
            g.set_attr("result", 42u64);
        }
        crate::set_enabled(false);
        let events = drain();
        assert_eq!(events[0].attrs, vec![("result", AttrValue::U64(42))]);
    }
}
