//! Run provenance: enough metadata stamped into every benchmark and
//! experiment output to reproduce it — git SHA, the configuration the
//! run was invoked with, the seed, and wall-clock time.

use std::sync::OnceLock;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::export::json_string;

/// A provenance stamp for one run.
#[derive(Clone, Debug)]
pub struct Provenance {
    /// Git commit of the working tree (`MPCP_GIT_SHA` env override,
    /// else `git rev-parse`; "unknown" outside a repository).
    pub git_sha: String,
    /// Whether the working tree had uncommitted changes.
    pub git_dirty: bool,
    /// Free-form configuration description (command line, spec id...).
    pub config: String,
    /// RNG seed, when the run had one.
    pub seed: Option<u64>,
    /// Wall-clock start, seconds since the Unix epoch.
    pub unix_time: u64,
}

fn git_output(args: &[&str]) -> Option<String> {
    let out = std::process::Command::new("git").args(args).output().ok()?;
    out.status.success().then(|| String::from_utf8_lossy(&out.stdout).trim().to_string())
}

fn git_state() -> &'static (String, bool) {
    static STATE: OnceLock<(String, bool)> = OnceLock::new();
    STATE.get_or_init(|| {
        if let Ok(sha) = std::env::var("MPCP_GIT_SHA") {
            return (sha, false);
        }
        let sha = git_output(&["rev-parse", "--short=12", "HEAD"])
            .unwrap_or_else(|| "unknown".to_string());
        let dirty = git_output(&["status", "--porcelain"]).is_some_and(|s| !s.is_empty());
        (sha, dirty)
    })
}

impl Provenance {
    /// Capture provenance for a run described by `config`.
    pub fn capture(config: &str, seed: Option<u64>) -> Provenance {
        let (git_sha, git_dirty) = git_state().clone();
        Provenance {
            git_sha,
            git_dirty,
            config: config.to_string(),
            seed,
            unix_time: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
        }
    }

    /// JSON object form (embedded in trace and metrics files).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"git_sha\":{},\"git_dirty\":{},\"config\":{},\"seed\":{},\"unix_time\":{}}}",
            json_string(&self.git_sha),
            self.git_dirty,
            json_string(&self.config),
            self.seed.map_or("null".to_string(), |s| s.to_string()),
            self.unix_time,
        )
    }

    /// One-line human-readable header, safe to prepend to text output
    /// (e.g. `# provenance git=abc123 config="table3" seed=7 t=...`).
    pub fn header(&self) -> String {
        format!(
            "# provenance git={}{} config={:?}{} unix_time={}",
            self.git_sha,
            if self.git_dirty { "+dirty" } else { "" },
            self.config,
            self.seed.map_or(String::new(), |s| format!(" seed={s}")),
            self.unix_time,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_renders_json_and_header() {
        let p = Provenance::capture("unit-test", Some(42));
        let v = crate::json::parse(&p.to_json()).unwrap();
        assert_eq!(v.get("config").and_then(|c| c.as_str()), Some("unit-test"));
        assert_eq!(v.get("seed").and_then(|s| s.as_f64()), Some(42.0));
        assert!(!v.get("git_sha").unwrap().as_str().unwrap().is_empty());
        assert!(p.header().starts_with("# provenance git="));
        let none = Provenance::capture("x", None);
        assert!(none.header().contains("config=\"x\""));
        assert_eq!(crate::json::parse(&none.to_json()).unwrap().get("seed"),
            Some(&crate::json::JsonValue::Null));
    }
}
