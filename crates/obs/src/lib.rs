//! # mpcp-obs — tracing spans, metrics, and run provenance
//!
//! A zero-dependency observability layer for the whole pipeline:
//!
//! * [`span`] / [`event`] — RAII span guards and point events with
//!   monotonic timestamps, parent links, and `key=value` attributes,
//!   buffered per thread and drained on demand ([`drain`]) to JSONL or
//!   Chrome `chrome://tracing` format ([`export`]).
//! * [`metrics`] — a process-global registry of named counters, gauges,
//!   and log-bucketed histograms (lock-free atomic recording, mergeable
//!   snapshots, p50/p95/p99 summaries).
//! * [`export`] — the three exporters: human-readable summary tables,
//!   a JSONL event stream, and a Chrome trace-event file.
//! * [`provenance`] — a run-provenance stamp (git SHA, config, seed,
//!   wall-clock time) for benchmark and experiment outputs.
//! * [`json`] — a minimal JSON parser used to validate and re-read the
//!   emitted files (the vendored serde shim does not serialize).
//! * [`window`] — rolling-window recorders over an injectable
//!   [`clock`]: per-window rates, live p50/p95/p99, SLO burn-rate.
//! * [`flight`] — a bounded ring of recent events dumped as a
//!   Chrome-trace post-mortem when a latency/failure trigger fires.
//!
//! Everything is behind one runtime switch: with tracing disabled
//! (the default) the instrumented hot paths cost a single relaxed
//! atomic load per probe — no clock reads, no allocation, no locks.
//!
//! ```
//! mpcp_obs::set_enabled(true);
//! {
//!     let _g = mpcp_obs::span("fit").attr("rounds", 200u64);
//!     mpcp_obs::event("round").attr("deviance", 0.25).emit();
//!     mpcp_obs::metrics::counter("rows").add(1);
//! }
//! let events = mpcp_obs::drain();
//! assert_eq!(events.len(), 2);
//! mpcp_obs::set_enabled(false);
//! ```

#![forbid(unsafe_code)]

pub mod clock;
pub mod export;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod provenance;
mod span;
pub mod window;

pub use span::{current_span_id, drain, event, span, AttrValue, EventBuilder, EventKind,
    SpanGuard, TraceEvent};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn tracing and metrics recording on or off. Enabling also fixes
/// the trace epoch (t = 0) on first use.
pub fn set_enabled(on: bool) {
    if on {
        span::init_epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recording is enabled. This is the entire disabled-path cost
/// of every probe: one relaxed atomic load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Record a duration histogram sample and bump a counter only when
/// enabled — the common "timed section" idiom:
///
/// ```
/// let t = mpcp_obs::maybe_now();
/// // ... hot work ...
/// mpcp_obs::record_elapsed("stage.ns", t);
/// ```
#[inline(always)]
pub fn maybe_now() -> Option<std::time::Instant> {
    enabled().then(std::time::Instant::now)
}

/// Record nanoseconds elapsed since [`maybe_now`] into histogram
/// `name` (no-op when `t` is `None`, i.e. recording was disabled).
#[inline]
pub fn record_elapsed(name: &'static str, t: Option<std::time::Instant>) {
    if let Some(t0) = t {
        metrics::histogram(name).record(t0.elapsed().as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probes_record_nothing() {
        let _lock = crate::span::test_lock();
        set_enabled(false);
        drain();
        {
            let _g = span("quiet").attr("k", 1u64);
            event("e").attr("x", 2.0).emit();
        }
        assert!(drain().is_empty());
    }
}
