//! An injectable clock for the windowed-telemetry layer.
//!
//! The rolling-window recorders in [`crate::window`] bucket samples by
//! "nanoseconds since some epoch". In production that is the monotonic
//! wall clock; in tests and deterministic replays it must be a logical
//! clock the test advances by hand — otherwise window-roll semantics
//! (which slot a sample lands in, when a slot expires) cannot be
//! asserted bit-exactly. A [`Clock`] is cheap to clone (it shares the
//! underlying source) and safe to read from any thread.
//!
//! Wall-clock reads live here, inside `mpcp-obs`, on purpose: the
//! workspace lint forbids `Instant`/`SystemTime` in the deterministic
//! crates, and consumers of windowed telemetry (the serving layer)
//! only ever see this injectable handle.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[derive(Clone)]
enum Source {
    /// Monotonic wall clock, nanoseconds since this clock's creation.
    Wall(Instant),
    /// A hand-advanced logical clock (tests, deterministic replay).
    Manual(Arc<AtomicU64>),
}

/// A nanosecond clock: either the monotonic wall clock or a manually
/// advanced logical clock sharing one atomic across clones.
#[derive(Clone)]
pub struct Clock(Source);

impl Clock {
    /// A monotonic wall clock; `now_ns` counts from this call.
    pub fn wall() -> Clock {
        Clock(Source::Wall(Instant::now()))
    }

    /// A logical clock starting at `start_ns`; advance it with
    /// [`Clock::advance`] or pin it with [`Clock::set`]. Clones share
    /// the same underlying time.
    pub fn manual(start_ns: u64) -> Clock {
        Clock(Source::Manual(Arc::new(AtomicU64::new(start_ns))))
    }

    /// Nanoseconds since this clock's epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match &self.0 {
            Source::Wall(epoch) => {
                // Saturating: a u64 of nanoseconds covers ~584 years.
                epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
            }
            Source::Manual(t) => t.load(Ordering::Relaxed),
        }
    }

    /// Advance a manual clock by `ns` (no-op on a wall clock) and
    /// return the new time.
    pub fn advance(&self, ns: u64) -> u64 {
        match &self.0 {
            Source::Wall(_) => self.now_ns(),
            Source::Manual(t) => t.fetch_add(ns, Ordering::Relaxed) + ns,
        }
    }

    /// Pin a manual clock to an absolute time (no-op on a wall clock).
    pub fn set(&self, ns: u64) {
        if let Source::Manual(t) = &self.0 {
            t.store(ns, Ordering::Relaxed);
        }
    }

    /// Whether this is a hand-advanced logical clock.
    pub fn is_manual(&self) -> bool {
        matches!(self.0, Source::Manual(_))
    }
}

impl std::fmt::Debug for Clock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Source::Wall(_) => write!(f, "Clock::wall"),
            Source::Manual(t) => write!(f, "Clock::manual({})", t.load(Ordering::Relaxed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_shared_across_clones() {
        let c = Clock::manual(100);
        let c2 = c.clone();
        assert_eq!(c.now_ns(), 100);
        assert_eq!(c2.advance(50), 150);
        assert_eq!(c.now_ns(), 150);
        c.set(7);
        assert_eq!(c2.now_ns(), 7);
        assert!(c.is_manual());
    }

    #[test]
    fn wall_clock_is_monotone() {
        let c = Clock::wall();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
        assert!(!c.is_manual());
        // advance/set are documented no-ops on wall clocks.
        c.set(0);
        assert!(c.now_ns() >= b);
    }
}
