//! A process-global registry of named counters, gauges, and
//! log-bucketed histograms.
//!
//! Recording is lock-free (atomic adds); the registry lock is taken
//! only on name lookup and when snapshotting. Hot call sites inside a
//! single run may hold the returned `Arc`, but handles must not be
//! cached across [`reset`] — a reset detaches them from the registry
//! and later recordings would vanish from [`snapshot`]. The
//! [`crate::counter_add!`] / [`crate::hist_record!`] macros therefore
//! look the handle up per call (still behind the enabled flag, so the
//! disabled path is a single atomic load).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram buckets: values 0..15 exact, then 4 sub-buckets
/// per power of two up to `u64::MAX`.
pub const NBUCKETS: usize = 256;

/// Bucket index for a value: monotone in `v`, exact below 16,
/// ≤ 25% relative bucket width above.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v < 16 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize; // ≥ 4
        let sub = ((v >> (exp - 2)) & 3) as usize;
        16 + (exp - 4) * 4 + sub
    }
}

/// Smallest value mapping to bucket `b`.
#[inline]
pub fn bucket_lo(b: usize) -> u64 {
    if b < 16 {
        b as u64
    } else {
        let exp = 4 + (b - 16) / 4;
        let sub = ((b - 16) % 4) as u64;
        (4 + sub) << (exp - 2)
    }
}

/// Largest value mapping to bucket `b`.
#[inline]
pub fn bucket_hi(b: usize) -> u64 {
    if b < 16 {
        b as u64
    } else if b + 1 < NBUCKETS {
        bucket_lo(b + 1) - 1
    } else {
        u64::MAX
    }
}

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64`.
#[derive(Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A log-bucketed histogram of `u64` samples (typically nanoseconds or
/// sizes). Recording is an atomic add on one bucket; threads share one
/// instance, so per-thread recordings merge implicitly, and snapshots
/// of separate histograms merge exactly ([`HistSnapshot::merge`]).
pub struct Histogram {
    buckets: [AtomicU64; NBUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; NBUCKETS],
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Copy out an immutable snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; NBUCKETS];
        for (b, a) in buckets.iter_mut().zip(&self.buckets) {
            *b = a.load(Ordering::Relaxed);
        }
        HistSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable histogram snapshot: bucket counts plus the exact sum
/// and exact min/max of recorded values. The extremes bound the
/// interpolated [`HistSnapshot::quantile`] estimate so reported tails
/// never exceed any value actually observed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Count per bucket (see [`bucket_of`]).
    pub buckets: [u64; NBUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (`0` when empty).
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot { buckets: [0; NBUCKETS], sum: 0, min: u64::MAX, max: 0 }
    }
}

impl HistSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Merge another snapshot into this one. Equivalent to having
    /// recorded the concatenation of both sample streams.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        // Wrapping, like the atomic `record` sum itself.
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Quantile estimate `q ∈ [0, 1]`, `None` when empty.
    ///
    /// The estimate locates the bucket holding the order statistic
    /// `ceil(q·n)` (clamped to `[1, n]`, matching "smallest x with
    /// CDF(x) ≥ q"), linearly interpolates within that bucket by the
    /// statistic's rank among the bucket's samples, and finally clamps
    /// to the exact recorded `[min, max]`. Error bound: the result is
    /// always inside the true quantile's bucket, i.e. within one
    /// bucket width (≤ 25% relative above 16) of the true sample
    /// quantile, and never outside the observed value range.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            if c > 0 && seen + c >= rank {
                let (lo, hi) = (bucket_lo(b), bucket_hi(b));
                // rank_in ∈ [1, c]; interpolate lo..=hi at rank_in/c.
                let rank_in = rank - seen;
                let est = lo + (u128::from(hi - lo) * u128::from(rank_in) / u128::from(c)) as u64;
                // min ≤ hi and max ≥ lo because the bucket is nonempty,
                // so the clamp keeps the estimate inside the bucket.
                return Some(est.clamp(self.min, self.max));
            }
            seen += c;
        }
        unreachable!("rank ≤ total count")
    }

    /// Largest nonempty bucket's upper bound (0 when empty).
    pub fn max_bound(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, bucket_hi)
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// The counter named `name` (created on first use).
pub fn counter(name: &'static str) -> Arc<Counter> {
    Arc::clone(registry().counters.lock().unwrap().entry(name).or_default())
}

/// The gauge named `name` (created on first use).
pub fn gauge(name: &'static str) -> Arc<Gauge> {
    Arc::clone(registry().gauges.lock().unwrap().entry(name).or_default())
}

/// The histogram named `name` (created on first use).
pub fn histogram(name: &'static str) -> Arc<Histogram> {
    Arc::clone(registry().histograms.lock().unwrap().entry(name).or_default())
}

/// Intern a dynamically built metric name, leaking at most once per
/// unique string for the life of the process. Callers that derive
/// metric names from runtime data (e.g. one latency histogram per
/// serving shard) must intern instead of `Box::leak`-ing per call, so
/// repeated shard reloads reuse the same allocation.
pub fn interned(name: &str) -> &'static str {
    static INTERNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let mut set = INTERNED.get_or_init(Default::default).lock().unwrap();
    match set.get(name) {
        Some(s) => s,
        None => {
            let s: &'static str = Box::leak(name.to_owned().into_boxed_str());
            set.insert(s);
            s
        }
    }
}

/// Add to a named counter iff recording is enabled (disabled path: one
/// atomic load).
///
/// The handle is looked up in the registry on every enabled call, NOT
/// cached at the call site: [`reset`] detaches previously-registered
/// metrics, and a cached `Arc` would keep feeding a metric that no
/// longer appears in any [`snapshot`] — silently losing counters from
/// the second traced run in a process onward.
#[macro_export]
macro_rules! counter_add {
    ($name:literal, $n:expr) => {{
        if $crate::enabled() {
            $crate::metrics::counter($name).add($n);
        }
    }};
}

/// Set a named gauge iff recording is enabled (see [`counter_add!`] for
/// why the handle is not cached).
#[macro_export]
macro_rules! gauge_set {
    ($name:literal, $v:expr) => {{
        if $crate::enabled() {
            $crate::metrics::gauge($name).set($v);
        }
    }};
}

/// Record into a named histogram iff recording is enabled (see
/// [`counter_add!`] for why the handle is not cached).
#[macro_export]
macro_rules! hist_record {
    ($name:literal, $v:expr) => {{
        if $crate::enabled() {
            $crate::metrics::histogram($name).record($v);
        }
    }};
}

/// A point-in-time copy of every registered metric.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name → snapshot.
    pub histograms: Vec<(String, HistSnapshot)>,
}

impl MetricsSnapshot {
    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// Snapshot every registered metric (sorted by name).
pub fn snapshot() -> MetricsSnapshot {
    let r = registry();
    MetricsSnapshot {
        counters: r
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.to_string(), v.get()))
            .collect(),
        gauges: r
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.to_string(), v.get()))
            .collect(),
        histograms: r
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.to_string(), v.snapshot()))
            .collect(),
    }
}

/// Remove every registered metric (tests and between-run isolation).
pub fn reset() {
    let r = registry();
    r.counters.lock().unwrap().clear();
    r.gauges.lock().unwrap().clear();
    r.histograms.lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_consistent() {
        for b in 0..NBUCKETS {
            assert!(bucket_lo(b) <= bucket_hi(b), "bucket {b}");
            assert_eq!(bucket_of(bucket_lo(b)), b);
            assert_eq!(bucket_of(bucket_hi(b)), b);
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(u64::MAX), NBUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_and_mean() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.sum, 5050);
        assert!((s.mean() - 50.5).abs() < 1e-9);
        let p50 = s.quantile(0.5).unwrap();
        // True median 50: estimate within the 25% bucket width.
        assert!((38..=63).contains(&p50), "p50 {p50}");
        assert!(s.quantile(1.0).unwrap() >= 100);
        assert_eq!(Histogram::default().snapshot().quantile(0.5), None);
    }

    #[test]
    fn merge_equals_concatenation() {
        let a = Histogram::default();
        let b = Histogram::default();
        let all = Histogram::default();
        for v in [0u64, 3, 17, 200, 1 << 40, u64::MAX] {
            a.record(v);
            all.record(v);
        }
        for v in [5u64, 17, 999_999] {
            b.record(v);
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn min_max_are_exact_and_bound_quantiles() {
        let h = Histogram::default();
        for v in [7u64, 100, 3, 999] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!((s.min, s.max), (3, 999));
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let est = s.quantile(q).unwrap();
            assert!((3..=999).contains(&est), "q={q} est={est}");
        }
        // A single sample reports itself exactly at every quantile.
        let one = Histogram::default();
        one.record(42);
        assert_eq!(one.snapshot().quantile(0.99), Some(42));
    }

    #[test]
    fn interned_names_are_deduplicated() {
        let a = interned("test.interned.serve.latency_ns.bcast");
        let b = interned(&format!("test.interned.serve.latency_ns.{}", "bcast"));
        assert_eq!(a, b);
        // Same allocation, not merely equal contents.
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn registry_reuses_handles() {
        let c1 = counter("test.metric.reuse");
        let c2 = counter("test.metric.reuse");
        c1.add(2);
        c2.add(3);
        assert_eq!(c1.get(), 5);
        gauge("test.gauge.reuse").set(1.5);
        assert_eq!(gauge("test.gauge.reuse").get(), 1.5);
        let snap = snapshot();
        assert!(snap.counters.iter().any(|(n, v)| n == "test.metric.reuse" && *v == 5));
    }
}
