//! Exporters: JSONL event streams, Chrome trace-event files, and
//! human-readable summary tables.
//!
//! The Chrome format is the `chrome://tracing` / Perfetto "JSON array"
//! flavor: complete (`ph: "X"`) events for spans and instant
//! (`ph: "i"`) events, timestamps in microseconds. Open the file at
//! `chrome://tracing` or <https://ui.perfetto.dev> for a flame-style
//! timeline of a run.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use crate::json::{self, JsonValue};
use crate::metrics::MetricsSnapshot;
use crate::provenance::Provenance;
use crate::span::{EventKind, TraceEvent};

/// JSON-escape a string (with surrounding quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn attrs_json(attrs: &[(&'static str, crate::AttrValue)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(k), v.to_json());
    }
    out.push('}');
    out
}

/// One JSON object per line; a provenance line first when given.
pub fn events_jsonl(events: &[TraceEvent], provenance: Option<&Provenance>) -> String {
    let mut out = String::new();
    if let Some(p) = provenance {
        let _ = writeln!(out, "{{\"provenance\":{}}}", p.to_json());
    }
    for e in events {
        let kind = match e.kind {
            EventKind::Span => "span",
            EventKind::Instant => "instant",
        };
        let _ = writeln!(
            out,
            "{{\"name\":{},\"kind\":\"{kind}\",\"ts_ns\":{},\"dur_ns\":{},\"tid\":{},\"id\":{},\"parent\":{},\"attrs\":{}}}",
            json_string(e.name),
            e.ts_ns,
            e.dur_ns,
            e.tid,
            e.id,
            e.parent,
            attrs_json(&e.attrs),
        );
    }
    out
}

fn chrome_event_json(e: &TraceEvent) -> String {
    let ts_us = e.ts_ns as f64 / 1e3;
    let mut args = attrs_json(&e.attrs);
    if e.id != 0 {
        args = format!(
            "{{\"span_id\":{},\"parent\":{}{}",
            e.id,
            e.parent,
            if e.attrs.is_empty() { "}".into() } else { format!(",{}", &args[1..]) }
        );
    }
    match e.kind {
        EventKind::Span => format!(
            "{{\"name\":{},\"ph\":\"X\",\"ts\":{ts_us:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{args}}}",
            json_string(e.name),
            e.dur_ns as f64 / 1e3,
            e.tid,
        ),
        EventKind::Instant => format!(
            "{{\"name\":{},\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts_us:.3},\"pid\":1,\"tid\":{},\"args\":{args}}}",
            json_string(e.name),
            e.tid,
        ),
    }
}

/// Render events as a Chrome trace-event JSON array. A provenance
/// stamp, when given, becomes a metadata (`ph: "M"`) record.
pub fn chrome_trace(events: &[TraceEvent], provenance: Option<&Provenance>) -> String {
    let mut rows: Vec<String> = Vec::with_capacity(events.len() + 1);
    if let Some(p) = provenance {
        rows.push(format!(
            "{{\"name\":\"mpcp_provenance\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{}}}",
            p.to_json()
        ));
    }
    rows.extend(events.iter().map(chrome_event_json));
    format!("[\n{}\n]\n", rows.join(",\n"))
}

/// Write a Chrome trace to `path`. If the file already holds a JSON
/// array (e.g. from an earlier pipeline stage run with the same
/// `--trace-out`), the new events are appended to it, so a multi-command
/// pipeline accumulates one coherent timeline.
pub fn write_chrome_trace(
    path: &Path,
    events: &[TraceEvent],
    provenance: Option<&Provenance>,
) -> std::io::Result<()> {
    let fresh = chrome_trace(events, provenance);
    let merged = match std::fs::read_to_string(path) {
        Ok(existing) if json::parse(&existing).map(|v| v.as_arr().is_some()).unwrap_or(false) => {
            let old_body = existing.trim().trim_start_matches('[').trim_end_matches(']').trim();
            let new_body = fresh.trim().trim_start_matches('[').trim_end_matches(']').trim();
            match (old_body.is_empty(), new_body.is_empty()) {
                (true, _) => format!("[\n{new_body}\n]\n"),
                (_, true) => format!("[\n{old_body}\n]\n"),
                _ => format!("[\n{old_body},\n{new_body}\n]\n"),
            }
        }
        _ => fresh,
    };
    std::fs::write(path, merged)
}

/// Metrics as JSONL: a provenance line, counters, gauges, then
/// histograms with their quantile summaries and nonzero buckets.
pub fn metrics_jsonl(snap: &MetricsSnapshot, provenance: Option<&Provenance>) -> String {
    let mut out = String::new();
    if let Some(p) = provenance {
        let _ = writeln!(out, "{{\"provenance\":{}}}", p.to_json());
    }
    for (name, v) in &snap.counters {
        let _ = writeln!(
            out,
            "{{\"metric\":{},\"type\":\"counter\",\"value\":{v}}}",
            json_string(name)
        );
    }
    for (name, v) in &snap.gauges {
        let _ = writeln!(
            out,
            "{{\"metric\":{},\"type\":\"gauge\",\"value\":{v}}}",
            json_string(name)
        );
    }
    for (name, h) in &snap.histograms {
        let buckets: Vec<String> = h
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| format!("[{},{c}]", crate::metrics::bucket_lo(b)))
            .collect();
        let _ = writeln!(
            out,
            "{{\"metric\":{},\"type\":\"histogram\",\"count\":{},\"sum\":{},\"mean\":{:.3},\"p50\":{},\"p95\":{},\"p99\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
            json_string(name),
            h.count(),
            h.sum,
            h.mean(),
            h.quantile(0.50).unwrap_or(0),
            h.quantile(0.95).unwrap_or(0),
            h.quantile(0.99).unwrap_or(0),
            if h.count() > 0 { h.min } else { 0 },
            if h.count() > 0 { h.max } else { h.max_bound() },
            buckets.join(","),
        );
    }
    out
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Aggregate spans by name into a summary table: count, total, mean,
/// max wall time (self time is not separated; nesting shows in the
/// Chrome view).
pub fn span_summary(events: &[TraceEvent]) -> String {
    struct Agg {
        count: u64,
        total_ns: u64,
        max_ns: u64,
    }
    let mut by_name: BTreeMap<&str, Agg> = BTreeMap::new();
    let mut instants: BTreeMap<&str, u64> = BTreeMap::new();
    for e in events {
        match e.kind {
            EventKind::Span => {
                let a = by_name.entry(e.name).or_insert(Agg { count: 0, total_ns: 0, max_ns: 0 });
                a.count += 1;
                a.total_ns += e.dur_ns;
                a.max_ns = a.max_ns.max(e.dur_ns);
            }
            EventKind::Instant => *instants.entry(e.name).or_insert(0) += 1,
        }
    }
    let mut out = String::new();
    if !by_name.is_empty() {
        out.push_str("span                         count      total       mean        max\n");
        for (name, a) in &by_name {
            let _ = writeln!(
                out,
                "{:<28} {:>5}  {:>9}  {:>9}  {:>9}",
                name,
                a.count,
                fmt_ns(a.total_ns as f64),
                fmt_ns(a.total_ns as f64 / a.count as f64),
                fmt_ns(a.max_ns as f64),
            );
        }
    }
    if !instants.is_empty() {
        out.push_str("event                        count\n");
        for (name, c) in &instants {
            let _ = writeln!(out, "{name:<28} {c:>5}");
        }
    }
    if out.is_empty() {
        out.push_str("(no spans recorded)\n");
    }
    out
}

/// Metrics summary table: counters, gauges, and histogram quantiles.
pub fn metrics_summary(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !snap.counters.is_empty() {
        out.push_str("counter                                   value\n");
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "{name:<40} {v:>7}");
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauge                                     value\n");
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "{name:<40} {v:>7.3}");
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str(
            "histogram                              count       mean        p50        p95        p99        max\n",
        );
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "{:<36} {:>7}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}",
                name,
                h.count(),
                fmt_ns(h.mean()),
                fmt_ns(h.quantile(0.50).unwrap_or(0) as f64),
                fmt_ns(h.quantile(0.95).unwrap_or(0) as f64),
                fmt_ns(h.quantile(0.99).unwrap_or(0) as f64),
                fmt_ns(h.max_bound() as f64),
            );
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

/// Expand documents into individual event objects: a Chrome trace is
/// one JSON array holding all events, a JSONL file is one object per
/// line — callers of the summarizers shouldn't care which they parsed.
fn flatten_docs(docs: &[JsonValue]) -> Vec<&JsonValue> {
    let mut out = Vec::new();
    for d in docs {
        match d.as_arr() {
            Some(items) => out.extend(items),
            None => out.push(d),
        }
    }
    out
}

/// Summarize a parsed trace file (Chrome array or events JSONL) by
/// span name; used by `mpcp report`.
pub fn summarize_trace_value(docs: &[JsonValue]) -> String {
    struct Agg {
        count: u64,
        total_us: f64,
        max_us: f64,
    }
    let mut spans: BTreeMap<String, Agg> = BTreeMap::new();
    let mut instants: BTreeMap<String, u64> = BTreeMap::new();
    for d in flatten_docs(docs) {
        let Some(name) = d.get("name").and_then(|n| n.as_str()) else { continue };
        // Chrome flavor: ph "X"/"i", ts/dur in us. JSONL flavor:
        // kind "span"/"instant", ts_ns/dur_ns.
        let ph = d.get("ph").and_then(|p| p.as_str());
        let kind = d.get("kind").and_then(|k| k.as_str());
        let dur_us = d
            .get("dur")
            .and_then(|v| v.as_f64())
            .or_else(|| d.get("dur_ns").and_then(|v| v.as_f64()).map(|ns| ns / 1e3));
        match (ph, kind) {
            (Some("X"), _) | (_, Some("span")) => {
                let a = spans
                    .entry(name.to_string())
                    .or_insert(Agg { count: 0, total_us: 0.0, max_us: 0.0 });
                a.count += 1;
                let d = dur_us.unwrap_or(0.0);
                a.total_us += d;
                a.max_us = a.max_us.max(d);
            }
            (Some("i"), _) | (_, Some("instant")) => {
                *instants.entry(name.to_string()).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    let mut out = String::new();
    if !spans.is_empty() {
        out.push_str("span                         count      total       mean        max\n");
        for (name, a) in &spans {
            let _ = writeln!(
                out,
                "{:<28} {:>5}  {:>9}  {:>9}  {:>9}",
                name,
                a.count,
                fmt_ns(a.total_us * 1e3),
                fmt_ns(a.total_us * 1e3 / a.count as f64),
                fmt_ns(a.max_us * 1e3),
            );
        }
    }
    if !instants.is_empty() {
        out.push_str("event                        count\n");
        for (name, c) in &instants {
            let _ = writeln!(out, "{name:<28} {c:>5}");
        }
    }
    if out.is_empty() {
        out.push_str("(no spans in trace)\n");
    }
    out
}

/// Span names present in a parsed trace (Chrome or JSONL flavor).
pub fn trace_span_names(docs: &[JsonValue]) -> std::collections::BTreeSet<String> {
    flatten_docs(docs)
        .into_iter()
        .filter(|d| {
            d.get("ph").and_then(|p| p.as_str()) == Some("X")
                || d.get("kind").and_then(|k| k.as_str()) == Some("span")
        })
        .filter_map(|d| d.get("name").and_then(|n| n.as_str()).map(str::to_string))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::EventKind;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                name: "fit",
                kind: EventKind::Span,
                ts_ns: 1_000,
                dur_ns: 2_500_000,
                tid: 1,
                id: 3,
                parent: 0,
                attrs: vec![("rounds", crate::AttrValue::U64(200))],
            },
            TraceEvent {
                name: "round",
                kind: EventKind::Instant,
                ts_ns: 2_000,
                dur_ns: 0,
                tid: 1,
                id: 0,
                parent: 3,
                attrs: vec![("deviance", crate::AttrValue::F64(0.25))],
            },
        ]
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let s = chrome_trace(&sample_events(), Some(&Provenance::capture("test", Some(7))));
        let v = crate::json::parse(&s).unwrap();
        let arr = v.as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].get("ph").and_then(|p| p.as_str()), Some("M"));
        assert_eq!(arr[1].get("name").and_then(|n| n.as_str()), Some("fit"));
        assert_eq!(arr[1].get("ph").and_then(|p| p.as_str()), Some("X"));
        let names = trace_span_names(arr);
        assert!(names.contains("fit") && !names.contains("round"));
    }

    #[test]
    fn jsonl_round_trips_through_parser() {
        let s = events_jsonl(&sample_events(), None);
        let docs = crate::json::parse_jsonl(&s).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].get("kind").and_then(|k| k.as_str()), Some("span"));
        assert_eq!(
            docs[0].get("attrs").unwrap().get("rounds").and_then(|v| v.as_f64()),
            Some(200.0)
        );
    }

    #[test]
    fn chrome_merge_appends() {
        let dir = std::env::temp_dir().join("mpcp_obs_export_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        std::fs::remove_file(&path).ok();
        write_chrome_trace(&path, &sample_events(), None).unwrap();
        write_chrome_trace(&path, &sample_events(), None).unwrap();
        let merged = std::fs::read_to_string(&path).unwrap();
        let v = crate::json::parse(&merged).unwrap();
        assert_eq!(v.as_arr().unwrap().len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn summaries_render() {
        let s = span_summary(&sample_events());
        assert!(s.contains("fit") && s.contains("round"), "{s}");
        let mut snap = MetricsSnapshot::default();
        snap.counters.push(("events".into(), 12));
        let t = metrics_summary(&snap);
        assert!(t.contains("events"), "{t}");
        let j = metrics_jsonl(&snap, None);
        assert!(crate::json::parse_jsonl(&j).is_ok());
    }

    #[test]
    fn escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
