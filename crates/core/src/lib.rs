//! # mpcp-core — algorithm selection for MPI collectives via runtime
//! regression
//!
//! The paper's primary contribution (CLUSTER 2020): given benchmark
//! measurements of every algorithm configuration `u_{j,l}` of an MPI
//! collective over a grid of instances `(message size m, nodes n,
//! processes-per-node N)`, fit **one regression model per configuration**
//! that predicts *absolute running time*, and answer unseen instances by
//! querying every model and returning the argmin (Fig. 3 of the paper).
//!
//! ```no_run
//! use mpcp_benchmark::{BenchConfig, DatasetSpec};
//! use mpcp_core::{Selector, splits};
//! use mpcp_ml::Learner;
//!
//! let spec = DatasetSpec::d1(); // MPI_Bcast, Open MPI, Hydra
//! let library = spec.library(None);
//! let data = spec.generate(&library, &BenchConfig::paper_default("Hydra"));
//!
//! let split = splits::paper_split("Hydra");
//! let train = splits::filter_records(&data.records, &split.train_full);
//! let selector = Selector::train(
//!     &Learner::gam(),
//!     &train,
//!     library.configs(spec.coll),
//! ).expect("no configuration could be trained");
//! let inst = mpcp_core::Instance::new(spec.coll, 65536, 27, 16);
//! let (uid, predicted_us) = selector.select(&inst);
//! println!("predicted best: {uid} (~{predicted_us:.1} us)");
//! ```
//!
//! [`evaluation`] scores a selector the way the paper does: the running
//! time of the predicted algorithm (looked up in the measured dataset)
//! against the empirical best (exhaustive search) and the library's
//! hard-coded default — yielding Fig. 4–8 and Table IV.
//!
//! Partial grids (fault-injected benchmark runs) degrade gracefully:
//! [`Selector::train_with_report`] returns per-configuration
//! [`ConfigCoverage`], [`Selector::select_with_fallback`] falls back to
//! the library's decision logic when no trained model can answer, and
//! [`evaluation::evaluate_report`] skips-and-counts instances whose
//! choices were never measured instead of panicking.

#![forbid(unsafe_code)]

pub mod artifact;
pub mod evaluation;
pub mod instance;
pub mod selector;
pub mod splits;
pub mod tuning_file;

pub use artifact::{ArtifactError, ArtifactMeta, SelectorArtifact};
pub use evaluation::{
    evaluate, evaluate_report, mean_speedup, EvalReport, InstanceEval, RuntimeTable,
};
pub use instance::Instance;
pub use selector::{
    ConfigCoverage, Selection, Selector, SelectorError, TrainOptions, TrainReport,
};
