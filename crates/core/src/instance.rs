//! Communication-problem instances and their feature encoding.

use mpcp_collectives::Collective;
use serde::{Deserialize, Serialize};

/// Number of features fed to the regression models.
pub const NUM_FEATURES: usize = 4;

/// One communication problem: "run collective `F` with `m` bytes on
/// `n × N` processes" (Section II of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// The collective operation.
    pub coll: Collective,
    /// Message size in bytes.
    pub msize: u64,
    /// Number of compute nodes.
    pub nodes: u32,
    /// Processes per node.
    pub ppn: u32,
}

impl Instance {
    /// Construct an instance.
    pub fn new(coll: Collective, msize: u64, nodes: u32, ppn: u32) -> Instance {
        Instance { coll, msize, nodes, ppn }
    }

    /// Total processes `p = n · N`.
    pub fn procs(&self) -> u32 {
        self.nodes * self.ppn
    }

    /// Feature vector: `[log2(m+1), n, N, n·N]`.
    ///
    /// Message size is log-transformed (it spans 7 orders of magnitude
    /// and the paper's grids are geometric); node count and ppn stay
    /// linear so the models can resolve the paper's odd/even test split;
    /// the total process count is included as an explicit interaction.
    pub fn features(&self) -> [f64; NUM_FEATURES] {
        [
            ((self.msize + 1) as f64).log2(),
            self.nodes as f64,
            self.ppn as f64,
            self.procs() as f64,
        ]
    }
}

impl std::fmt::Display for Instance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(m={}, {}x{})", self.coll, self.msize, self.nodes, self.ppn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_shape_and_monotonicity() {
        let a = Instance::new(Collective::Bcast, 1024, 16, 32);
        let f = a.features();
        assert_eq!(f.len(), NUM_FEATURES);
        assert_eq!(f[1], 16.0);
        assert_eq!(f[2], 32.0);
        assert_eq!(f[3], 512.0);
        let b = Instance::new(Collective::Bcast, 4096, 16, 32);
        assert!(b.features()[0] > f[0]);
    }

    #[test]
    fn zero_message_is_finite() {
        let a = Instance::new(Collective::Allreduce, 0, 2, 1);
        assert!(a.features()[0] >= 0.0);
        assert!(a.features().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn display_is_readable() {
        let a = Instance::new(Collective::Bcast, 64, 4, 8);
        assert_eq!(format!("{a}"), "MPI_Bcast(m=64, 4x8)");
    }
}
