//! Evaluation the paper's way (Section V): every strategy's choice is
//! looked up in the *measured* dataset, so the comparison needs no extra
//! benchmark runs. Three strategies per test instance:
//!
//! * **Exhaustive Search (Best)** — argmin over the measured runtimes;
//! * **Default** — what the library's hard-coded decision logic picks;
//! * **Prediction** — what the trained [`Selector`] picks.
//!
//! Fig. 4–8 plot runtimes normalized to Best; Table IV reports the mean
//! speed-up of Prediction over Default.

use std::collections::HashMap;

use mpcp_benchmark::Record;
use mpcp_collectives::{Collective, MpiLibrary};
use mpcp_simnet::Topology;

use crate::instance::Instance;
use crate::selector::Selector;

/// Per-instance entries: `(uid, runtime_seconds, excluded)`.
type CellEntries = Vec<(u32, f64, bool)>;

/// Measured runtimes indexed by `(nodes, ppn, msize)` then by uid.
pub struct RuntimeTable {
    cells: HashMap<(u32, u32, u64), CellEntries>,
}

impl RuntimeTable {
    /// Index a record set.
    pub fn new(records: &[Record]) -> RuntimeTable {
        let mut cells: HashMap<(u32, u32, u64), CellEntries> = HashMap::new();
        for r in records {
            cells
                .entry((r.nodes, r.ppn, r.msize))
                .or_default()
                .push((r.uid, r.runtime, r.excluded));
        }
        RuntimeTable { cells }
    }

    /// All distinct instances in the table, sorted.
    pub fn instances(&self, coll: Collective) -> Vec<Instance> {
        let mut keys: Vec<&(u32, u32, u64)> = self.cells.keys().collect();
        keys.sort();
        keys.iter()
            .map(|&&(n, ppn, m)| Instance::new(coll, m, n, ppn))
            .collect()
    }

    /// Measured runtime of configuration `uid` on an instance.
    pub fn runtime(&self, inst: &Instance, uid: u32) -> Option<f64> {
        self.cells
            .get(&(inst.nodes, inst.ppn, inst.msize))?
            .iter()
            .find(|(u, _, _)| *u == uid)
            .map(|(_, t, _)| *t)
    }

    /// Empirically best selectable configuration `(uid, runtime)`.
    pub fn best(&self, inst: &Instance) -> Option<(u32, f64)> {
        self.cells
            .get(&(inst.nodes, inst.ppn, inst.msize))?
            .iter()
            .filter(|(_, _, excluded)| !excluded)
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(u, t, _)| (*u, *t))
    }
}

/// One test instance scored under the three strategies.
#[derive(Clone, Copy, Debug)]
pub struct InstanceEval {
    /// The test instance.
    pub instance: Instance,
    /// Exhaustive-search winner.
    pub best_uid: u32,
    /// Its measured runtime (seconds).
    pub best: f64,
    /// The library default's choice.
    pub default_uid: u32,
    /// Its measured runtime.
    pub default: f64,
    /// The selector's choice.
    pub predicted_uid: u32,
    /// Its measured runtime.
    pub predicted: f64,
    /// `true` when the selector had no finite model prediction for this
    /// instance and fell back to the library default (the
    /// `DegradedSelection` marker surfaced per instance).
    pub degraded: bool,
}

impl InstanceEval {
    /// Speed-up of the prediction over the default (> 1 means the
    /// predicted algorithm is faster) — the Table IV metric.
    pub fn speedup(&self) -> f64 {
        self.default / self.predicted
    }

    /// Runtime of a strategy normalized to the best (the Fig. 4–8
    /// y-axis; Best ≡ 1.0).
    pub fn normalized_default(&self) -> f64 {
        self.default / self.best
    }

    /// Normalized runtime of the prediction.
    pub fn normalized_predicted(&self) -> f64 {
        self.predicted / self.best
    }
}

/// An evaluation over a (possibly partial) test grid: the scored
/// instances plus honest coverage accounting for everything skipped.
#[derive(Clone, Debug, Default)]
pub struct EvalReport {
    /// Instances scored under all three strategies.
    pub evals: Vec<InstanceEval>,
    /// Distinct instances present in the test records.
    pub instances: usize,
    /// Instances with no selectable measurement at all (every selectable
    /// configuration's cell failed).
    pub skipped_no_best: usize,
    /// Instances whose library-default choice has no measurement.
    pub skipped_missing_default: usize,
    /// Instances whose predicted choice has no measurement.
    pub skipped_missing_predicted: usize,
    /// Scored instances whose selection was a degraded fallback.
    pub degraded_selections: usize,
}

impl EvalReport {
    /// Fraction of test instances actually scored.
    pub fn coverage(&self) -> f64 {
        if self.instances == 0 {
            return 0.0;
        }
        self.evals.len() as f64 / self.instances as f64
    }
}

/// Score a selector on every instance of a (test) record set.
///
/// Equivalent to [`evaluate_report`] but discards the coverage
/// accounting; on a complete grid nothing is ever skipped and the two
/// agree exactly.
pub fn evaluate(
    selector: &Selector,
    test_records: &[Record],
    library: &MpiLibrary,
    coll: Collective,
) -> Vec<InstanceEval> {
    evaluate_report(selector, test_records, library, coll).evals
}

/// Total evaluation over partial grids: instances whose default or
/// predicted configuration was never measured are *counted and skipped*
/// instead of panicking, and degraded (fallback) selections are marked
/// per instance and tallied.
pub fn evaluate_report(
    selector: &Selector,
    test_records: &[Record],
    library: &MpiLibrary,
    coll: Collective,
) -> EvalReport {
    let table = RuntimeTable::new(test_records);
    let mut report = EvalReport::default();
    let instances = table.instances(coll);
    report.instances = instances.len();
    for inst in instances {
        let Some((best_uid, best)) = table.best(&inst) else {
            report.skipped_no_best += 1;
            continue;
        };
        let topo = Topology::new(inst.nodes, inst.ppn);
        let default_uid = library.default_choice(coll, inst.msize, &topo) as u32;
        let Some(default) = table.runtime(&inst, default_uid) else {
            report.skipped_missing_default += 1;
            continue;
        };
        let selection = selector.select_with_fallback(&inst, library);
        let Some(predicted) = table.runtime(&inst, selection.uid) else {
            report.skipped_missing_predicted += 1;
            continue;
        };
        if selection.degraded {
            report.degraded_selections += 1;
        }
        report.evals.push(InstanceEval {
            instance: inst,
            best_uid,
            best,
            default_uid,
            default,
            predicted_uid: selection.uid,
            predicted,
            degraded: selection.degraded,
        });
    }
    report
}

/// Mean per-instance speed-up over the default (Table IV entry).
pub fn mean_speedup(evals: &[InstanceEval]) -> f64 {
    if evals.is_empty() {
        return f64::NAN;
    }
    evals.iter().map(|e| e.speedup()).sum::<f64>() / evals.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splits;
    use mpcp_benchmark::{BenchConfig, DatasetSpec};
    use mpcp_ml::Learner;

    fn tiny_eval(learner: Learner) -> (Vec<InstanceEval>, usize) {
        let spec = DatasetSpec::tiny_for_tests();
        let lib = spec.library(None);
        let data = spec.generate(&lib, &BenchConfig::quick());
        // Train on nodes {2, 4}, test on node 3 (unseen).
        let train = splits::filter_records(&data.records, &[2, 4]);
        let test = splits::filter_records(&data.records, &[3]);
        let selector = Selector::train(&learner, &train, lib.configs(spec.coll)).unwrap();
        let evals = evaluate(&selector, &test, &lib, spec.coll);
        let expected_instances = spec.ppn.len() * spec.msizes.len();
        (evals, expected_instances)
    }

    #[test]
    fn evaluates_every_test_instance() {
        let (evals, expected) = tiny_eval(Learner::knn());
        assert_eq!(evals.len(), expected);
    }

    #[test]
    fn best_lower_bounds_everything() {
        let (evals, _) = tiny_eval(Learner::gam());
        for e in &evals {
            assert!(e.best <= e.default + 1e-15, "{e:?}");
            assert!(e.best <= e.predicted + 1e-15, "{e:?}");
            assert!(e.normalized_default() >= 1.0 - 1e-12);
            assert!(e.normalized_predicted() >= 1.0 - 1e-12);
        }
    }

    #[test]
    fn prediction_not_much_worse_than_default_on_tiny_grid() {
        // Even with a tiny training grid the selector should be in the
        // same league as the default logic on average.
        let (evals, _) = tiny_eval(Learner::knn());
        let s = mean_speedup(&evals);
        assert!(s > 0.5, "mean speedup {s}");
    }

    #[test]
    fn runtime_table_lookup() {
        let spec = DatasetSpec::tiny_for_tests();
        let lib = spec.library(None);
        let data = spec.generate(&lib, &BenchConfig::quick());
        let table = RuntimeTable::new(&data.records);
        let r = &data.records[0];
        let inst = Instance::new(spec.coll, r.msize, r.nodes, r.ppn);
        assert_eq!(table.runtime(&inst, r.uid), Some(r.runtime));
        let (_, best) = table.best(&inst).unwrap();
        assert!(best <= r.runtime);
    }

    #[test]
    fn mean_speedup_of_empty_is_nan() {
        assert!(mean_speedup(&[]).is_nan());
    }
}
