//! Tuning-file generation — the paper's deployment story (Section II):
//! once the node allocation is known (e.g. from SLURM), query the models
//! for 10–15 message sizes and write a configuration file that overrides
//! the library's algorithm selection for the upcoming run.

use std::io::Write;
use std::path::Path;

use mpcp_collectives::{AlgorithmConfig, Collective};

use crate::instance::Instance;
use crate::selector::Selector;

/// One selected entry: from this message size (inclusive) upwards, use
/// the given configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct TuningEntry {
    /// Lower bound of the message-size range (bytes).
    pub msize_from: u64,
    /// Selected configuration uid.
    pub uid: u32,
    /// Library algorithm id.
    pub alg_id: u32,
    /// Human-readable configuration label.
    pub label: String,
}

/// A per-collective tuning file for one `(nodes, ppn)` allocation.
#[derive(Clone, Debug)]
pub struct TuningFile {
    /// The collective tuned.
    pub coll: Collective,
    /// Allocation node count.
    pub nodes: u32,
    /// Allocation ppn.
    pub ppn: u32,
    /// Entries in ascending message-size order, deduplicated.
    pub entries: Vec<TuningEntry>,
}

/// The 13 query points the generator uses (the paper suggests 10–15).
pub fn default_query_sizes() -> Vec<u64> {
    vec![
        1,
        16,
        256,
        1 << 10,
        4 << 10,
        16 << 10,
        64 << 10,
        128 << 10,
        256 << 10,
        512 << 10,
        1 << 20,
        2 << 20,
        4 << 20,
    ]
}

impl TuningFile {
    /// Query the selector across message sizes and build the file,
    /// merging adjacent ranges that select the same configuration.
    pub fn generate(
        selector: &Selector,
        configs: &[AlgorithmConfig],
        coll: Collective,
        nodes: u32,
        ppn: u32,
        msizes: &[u64],
    ) -> TuningFile {
        let mut entries: Vec<TuningEntry> = Vec::new();
        let mut sizes = msizes.to_vec();
        sizes.sort_unstable();
        for &m in &sizes {
            let (uid, _) = selector.select(&Instance::new(coll, m, nodes, ppn));
            if entries.last().map(|e| e.uid) == Some(uid) {
                continue; // extend the previous range
            }
            let cfg = &configs[uid as usize];
            entries.push(TuningEntry { msize_from: m, uid, alg_id: cfg.alg_id, label: cfg.label() });
        }
        TuningFile { coll, nodes, ppn, entries }
    }

    /// Render in an MCA-parameter-file-like format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# mpcp tuning file: {} on {} nodes x {} ppn\n",
            self.coll, self.nodes, self.ppn
        ));
        out.push_str("# msize_from_bytes  alg_id  configuration\n");
        for e in &self.entries {
            out.push_str(&format!("{:<18} {:<7} {}\n", e.msize_from, e.alg_id, e.label));
        }
        out
    }

    /// Write to disk.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.render().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splits;
    use crate::Selector;
    use mpcp_benchmark::{BenchConfig, DatasetSpec};
    use mpcp_ml::Learner;

    #[test]
    fn generates_merged_ranges() {
        let spec = DatasetSpec::tiny_for_tests();
        let lib = spec.library(None);
        let data = spec.generate(&lib, &BenchConfig::quick());
        let train = splits::filter_records(&data.records, &[2, 4]);
        let selector = Selector::train(&Learner::knn(), &train, lib.configs(spec.coll)).unwrap();
        let tf = TuningFile::generate(
            &selector,
            lib.configs(spec.coll),
            spec.coll,
            3,
            2,
            &default_query_sizes(),
        );
        assert!(!tf.entries.is_empty());
        assert!(tf.entries.len() <= default_query_sizes().len());
        // Ranges ascend and are deduplicated.
        for w in tf.entries.windows(2) {
            assert!(w[0].msize_from < w[1].msize_from);
            assert_ne!(w[0].uid, w[1].uid);
        }
        let text = tf.render();
        assert!(text.contains("MPI_Allreduce"));
        assert!(text.lines().count() >= 3);
    }

    #[test]
    fn query_sizes_are_in_paper_range() {
        let q = default_query_sizes();
        assert!(q.len() >= 10 && q.len() <= 15);
    }
}
