//! The per-configuration regression selector (Fig. 3 of the paper).
//!
//! One regression model is fitted per algorithm configuration; a query
//! evaluates every model on the instance's feature vector and returns
//! the configuration with the smallest predicted running time. Excluded
//! (benchmark-only) configurations are never trained or selected.

use mpcp_benchmark::Record;
use mpcp_collectives::AlgorithmConfig;
use mpcp_ml::{Dataset, Learner, Model};
use rayon::prelude::*;

use crate::instance::{Instance, NUM_FEATURES};

/// Targets are modelled in microseconds: strictly positive and in a
/// numerically comfortable range for the Gamma/Tweedie objectives.
const SECS_TO_TARGET: f64 = 1e6;

/// Floor for measured runtimes when used as regression targets, keeping
/// the positive-target objectives valid.
const MIN_TARGET_US: f64 = 1e-3;

fn features_of(r: &Record) -> [f64; NUM_FEATURES] {
    [
        ((r.msize + 1) as f64).log2(),
        r.nodes as f64,
        r.ppn as f64,
        (r.nodes * r.ppn) as f64,
    ]
}

/// A trained algorithm selector for one collective on one machine/library.
pub struct Selector {
    learner_name: &'static str,
    /// One model per configuration uid; `None` for excluded uids (or
    /// uids absent from the training records).
    models: Vec<Option<Model>>,
}

impl Selector {
    /// Fit one regression model per selectable configuration from
    /// benchmark records.
    ///
    /// Models are trained on the *measured* (noisy median) runtimes, as
    /// in the paper; training is parallel across configurations.
    pub fn train(learner: &Learner, records: &[Record], configs: &[AlgorithmConfig]) -> Selector {
        assert!(!records.is_empty(), "no training records");
        let mut span = mpcp_obs::span("selector.train")
            .attr("learner", learner.name())
            .attr("records", records.len())
            .attr("configs", configs.len());
        let mut per_uid: Vec<Dataset> =
            (0..configs.len()).map(|_| Dataset::new(NUM_FEATURES)).collect();
        for r in records {
            let uid = r.uid as usize;
            assert!(uid < configs.len(), "record uid {uid} out of range");
            if configs[uid].excluded {
                continue;
            }
            let target = (r.runtime * SECS_TO_TARGET).max(MIN_TARGET_US);
            per_uid[uid].push(&features_of(r), target);
        }
        let models: Vec<Option<Model>> = per_uid
            .par_iter()
            .enumerate()
            .map(|(uid, data)| {
                if configs[uid].excluded || data.is_empty() {
                    None
                } else {
                    let t = mpcp_obs::maybe_now();
                    let m = learner.fit(data);
                    mpcp_obs::record_elapsed("selector.model_fit_ns", t);
                    Some(m)
                }
            })
            .collect();
        let trained = models.iter().filter(|m| m.is_some()).count();
        mpcp_obs::counter_add!("selector.models_trained", trained as u64);
        span.set_attr("models", trained);
        Selector { learner_name: learner.name(), models }
    }

    /// Predicted running time (microseconds) of configuration `uid` on
    /// an instance, if that configuration is selectable.
    pub fn predict_uid(&self, uid: usize, instance: &Instance) -> Option<f64> {
        self.models[uid].as_ref().map(|m| m.predict(&instance.features()))
    }

    /// Predicted runtimes for all selectable configurations.
    pub fn predict_all(&self, instance: &Instance) -> Vec<(u32, f64)> {
        let x = instance.features();
        self.models
            .iter()
            .enumerate()
            .filter_map(|(uid, m)| m.as_ref().map(|m| (uid as u32, m.predict(&x))))
            .collect()
    }

    /// The paper's selection rule: argmin of predicted runtime.
    /// Returns `(uid, predicted_microseconds)`.
    pub fn select(&self, instance: &Instance) -> (u32, f64) {
        let _span = mpcp_obs::span("select")
            .attr("instances", 1u64)
            .attr("models", self.model_count());
        let t = mpcp_obs::maybe_now();
        let all = self.predict_all(instance);
        let sel = all
            .iter()
            .copied()
            // total_cmp: a NaN prediction (degenerate model) must order
            // deterministically instead of panicking mid-selection.
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("selector has no trained models");
        if mpcp_obs::enabled() {
            mpcp_obs::counter_add!("selector.queries", 1);
            mpcp_obs::counter_add!("selector.models_evaluated", all.len() as u64);
            let second = all
                .iter()
                .filter(|&&(u, _)| u != sel.0)
                .map(|&(_, p)| p)
                .fold(f64::INFINITY, f64::min);
            if second.is_finite() && sel.1 > 0.0 {
                let ppm = ((second - sel.1) / sel.1 * 1e6).max(0.0);
                mpcp_obs::hist_record!("selector.margin_ppm", ppm as u64);
            }
        }
        mpcp_obs::record_elapsed("selector.select_ns", t);
        sel
    }

    /// Batched selection: the argmin rule of [`Selector::select`]
    /// applied to a block of instances at once.
    ///
    /// The feature matrix is assembled once (row-major), every model
    /// evaluates the whole block through its batch kernel — models in
    /// parallel — and a final pass folds the per-model prediction rows
    /// into one argmin per instance. Agrees elementwise with calling
    /// [`Selector::select`] in a loop (ties broken toward the lower
    /// uid, which is also the order `predict_all` yields).
    pub fn select_batch(&self, instances: &[Instance]) -> Vec<(u32, f64)> {
        let mut span = mpcp_obs::span("select")
            .attr("instances", instances.len())
            .attr("models", self.model_count());
        let t = mpcp_obs::maybe_now();
        let mut xs = Vec::with_capacity(instances.len() * NUM_FEATURES);
        for inst in instances {
            xs.extend_from_slice(&inst.features());
        }
        let per_model: Vec<Option<Vec<f64>>> = self
            .models
            .par_iter()
            .map(|m| m.as_ref().map(|m| m.predict_batch(&xs, NUM_FEATURES)))
            .collect();
        let mut best: Vec<(u32, f64)> = vec![(u32::MAX, f64::INFINITY); instances.len()];
        for (uid, preds) in per_model.iter().enumerate() {
            let Some(preds) = preds else { continue };
            for (b, &p) in best.iter_mut().zip(preds) {
                // `<=` mirrors `Iterator::min_by`, which keeps the LAST
                // of equally minimal elements — so exact-tie behavior
                // matches the scalar `select` path.
                if p <= b.1 {
                    *b = (uid as u32, p);
                }
            }
        }
        assert!(
            instances.is_empty() || best[0].0 != u32::MAX,
            "selector has no trained models"
        );
        if mpcp_obs::enabled() {
            let models = self.model_count();
            mpcp_obs::counter_add!("selector.queries", instances.len() as u64);
            mpcp_obs::counter_add!(
                "selector.models_evaluated",
                (models * instances.len()) as u64
            );
            // Predicted-vs-chosen margin: how far the runner-up sits
            // above the chosen configuration, in parts per million.
            for (i, &(uid, pred)) in best.iter().enumerate() {
                let mut second = f64::INFINITY;
                for (u, preds) in per_model.iter().enumerate() {
                    let Some(preds) = preds else { continue };
                    if u as u32 != uid && preds[i] < second {
                        second = preds[i];
                    }
                }
                if second.is_finite() && pred > 0.0 {
                    let ppm = ((second - pred) / pred * 1e6).max(0.0);
                    mpcp_obs::hist_record!("selector.margin_ppm", ppm as u64);
                }
            }
            span.set_attr("queries", instances.len());
        }
        mpcp_obs::record_elapsed("selector.select_ns", t);
        best
    }

    /// Name of the underlying learner ("KNN", "GAM", "XGBoost", ...).
    pub fn learner_name(&self) -> &'static str {
        self.learner_name
    }

    /// Number of trained (selectable) models.
    pub fn model_count(&self) -> usize {
        self.models.iter().filter(|m| m.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcp_benchmark::{BenchConfig, DatasetSpec};
    use mpcp_collectives::Collective;

    fn trained(learner: Learner) -> (Selector, DatasetSpec, Vec<Record>) {
        let spec = DatasetSpec::tiny_for_tests();
        let lib = spec.library(None);
        let data = spec.generate(&lib, &BenchConfig::quick());
        let selector = Selector::train(&learner, &data.records, lib.configs(spec.coll));
        (selector, spec, data.records)
    }

    #[test]
    fn trains_one_model_per_selectable_config() {
        let (selector, spec, _) = trained(Learner::knn());
        let lib = spec.library(None);
        let selectable = lib.selectable(spec.coll).count();
        assert_eq!(selector.model_count(), selectable);
    }

    #[test]
    fn select_returns_a_selectable_uid() {
        for learner in [Learner::knn(), Learner::gam(), Learner::xgboost()] {
            let (selector, spec, _) = trained(learner);
            let lib = spec.library(None);
            let inst = Instance::new(Collective::Allreduce, 1024, 3, 2);
            let (uid, pred) = selector.select(&inst);
            assert!(pred > 0.0, "{}", selector.learner_name());
            assert!(!lib.configs(spec.coll)[uid as usize].excluded);
        }
    }

    #[test]
    fn knn_predictions_stay_within_training_range() {
        // KNN averages K training targets, so every prediction must lie
        // within the per-configuration target range.
        let (selector, _, records) = trained(Learner::knn());
        let mut lo = std::collections::HashMap::new();
        let mut hi = std::collections::HashMap::new();
        for r in &records {
            let t = r.runtime * 1e6;
            let l = lo.entry(r.uid).or_insert(t);
            *l = l.min(t);
            let h = hi.entry(r.uid).or_insert(t);
            *h = h.max(t);
        }
        let mut checked = 0;
        for r in records.iter().step_by(7) {
            let inst = Instance::new(Collective::Allreduce, r.msize, r.nodes, r.ppn);
            if let Some(pred) = selector.predict_uid(r.uid as usize, &inst) {
                assert!(
                    pred >= lo[&r.uid] - 1e-9 && pred <= hi[&r.uid] + 1e-9,
                    "uid {} pred {pred} outside [{}, {}]",
                    r.uid,
                    lo[&r.uid],
                    hi[&r.uid]
                );
                checked += 1;
            }
        }
        assert!(checked > 10);
    }

    #[test]
    fn excluded_configs_are_never_selected() {
        // d-style bcast library has an excluded config (alg 8).
        let mut spec = DatasetSpec::tiny_for_tests();
        spec.coll = Collective::Bcast;
        let lib = spec.library(None);
        let data = spec.generate(&lib, &BenchConfig::quick());
        let selector = Selector::train(&Learner::knn(), &data.records, lib.configs(spec.coll));
        let configs = lib.configs(spec.coll);
        for m in [1u64, 1024, 1 << 20] {
            let inst = Instance::new(Collective::Bcast, m, 3, 2);
            let (uid, _) = selector.select(&inst);
            assert!(!configs[uid as usize].excluded);
        }
    }

    #[test]
    fn predict_all_covers_all_models() {
        let (selector, _, _) = trained(Learner::gam());
        let inst = Instance::new(Collective::Allreduce, 64, 2, 2);
        let all = selector.predict_all(&inst);
        assert_eq!(all.len(), selector.model_count());
        assert!(all.iter().all(|(_, p)| p.is_finite() && *p > 0.0));
    }
}
