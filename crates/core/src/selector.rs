//! The per-configuration regression selector (Fig. 3 of the paper).
//!
//! One regression model is fitted per algorithm configuration; a query
//! evaluates every model on the instance's feature vector and returns
//! the configuration with the smallest predicted running time. Excluded
//! (benchmark-only) configurations are never trained or selected.
//!
//! Training is **total over partial grids**: benchmark campaigns lose
//! cells to timeouts and node failures, so records may cover only a
//! subset of configurations, carry uids from a newer algorithm registry,
//! or leave a configuration with too few samples to fit. All of that
//! degrades into per-configuration coverage reported by [`TrainReport`]
//! instead of panicking; only a dataset that yields *zero* models is a
//! hard [`SelectorError`]. Queries degrade too: when no trained model
//! covers an instance (or every prediction is non-finite),
//! [`Selector::select_with_fallback`] falls back to the library's
//! hard-coded decision logic and marks the result as degraded.

use std::fmt;

use mpcp_benchmark::Record;
use mpcp_collectives::{AlgorithmConfig, MpiLibrary};
use mpcp_ml::{Dataset, FitError, Learner, Model};
use mpcp_simnet::Topology;
use rayon::prelude::*;

use crate::instance::{Instance, NUM_FEATURES};

/// Targets are modelled in microseconds: strictly positive and in a
/// numerically comfortable range for the Gamma/Tweedie objectives.
const SECS_TO_TARGET: f64 = 1e6;

/// Floor for measured runtimes when used as regression targets, keeping
/// the positive-target objectives valid.
const MIN_TARGET_US: f64 = 1e-3;

/// Model-table index → serialized uid. The table is as long as the
/// algorithm registry (a few dozen configurations), so the cast can
/// never truncate; this helper is the one place that invariant lives.
fn uid32(uid: usize) -> u32 {
    debug_assert!(u32::try_from(uid).is_ok(), "config index {uid} overflows u32");
    uid as u32
}

fn features_of(r: &Record) -> [f64; NUM_FEATURES] {
    [
        ((r.msize + 1) as f64).log2(),
        r.nodes as f64,
        r.ppn as f64,
        (r.nodes * r.ppn) as f64,
    ]
}

/// Why a selector could not be trained at all.
///
/// Partial coverage is *not* an error — it degrades into the
/// [`TrainReport`]. These variants mean there is nothing to select with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SelectorError {
    /// The record set is empty (e.g. every benchmark cell failed).
    NoRecords,
    /// Records exist but no configuration yielded a model: every uid was
    /// excluded, out of range, under the sample threshold, or failed to
    /// fit.
    NoTrainedModels {
        /// Configurations in the registry.
        configs: usize,
        /// Records that mapped to an in-range, non-excluded uid.
        usable_records: usize,
    },
}

impl fmt::Display for SelectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectorError::NoRecords => {
                write!(f, "no training records (did every benchmark cell fail?)")
            }
            SelectorError::NoTrainedModels { configs, usable_records } => write!(
                f,
                "no configuration could be trained ({configs} configs, {usable_records} usable \
                 records) — lower --min-samples or benchmark more cells"
            ),
        }
    }
}

impl std::error::Error for SelectorError {}

/// Training knobs for partial grids.
#[derive(Clone, Copy, Debug)]
pub struct TrainOptions {
    /// Minimum records a configuration needs before a model is fitted;
    /// configurations below the threshold fall back to the library
    /// default at query time. The default of 1 reproduces the paper's
    /// complete-grid behavior exactly.
    pub min_samples: usize,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions { min_samples: 1 }
    }
}

/// Why a configuration has no trained model (or that it has one).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigCoverage {
    /// A model was fitted on this many records.
    Trained {
        /// Training records for this uid.
        samples: usize,
    },
    /// Benchmark-only configuration; never trained or selected.
    Excluded,
    /// No record carried this uid (cell failures, older benchmark file).
    NoData,
    /// Fewer samples than [`TrainOptions::min_samples`].
    BelowThreshold {
        /// Records available.
        samples: usize,
        /// Threshold in force.
        needed: usize,
    },
    /// The learner rejected the configuration's dataset.
    FitFailed {
        /// Records available.
        samples: usize,
        /// The learner's reason.
        error: FitError,
    },
}

/// Per-configuration training coverage — how complete the selector is.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Records that trained some configuration.
    pub records_used: usize,
    /// Records whose uid was outside the registry (newer benchmark file
    /// than the library build); skipped, never fatal.
    pub records_out_of_range: usize,
    /// Coverage per configuration uid.
    pub coverage: Vec<ConfigCoverage>,
}

impl TrainReport {
    /// Configurations with a trained model.
    pub fn trained(&self) -> usize {
        self.coverage
            .iter()
            .filter(|c| matches!(c, ConfigCoverage::Trained { .. }))
            .count()
    }

    /// Selectable configurations that have **no** model and will fall
    /// back to the library default (excluded configs don't count).
    pub fn degraded(&self) -> usize {
        self.coverage
            .iter()
            .filter(|c| {
                matches!(
                    c,
                    ConfigCoverage::NoData
                        | ConfigCoverage::BelowThreshold { .. }
                        | ConfigCoverage::FitFailed { .. }
                )
            })
            .count()
    }

    /// One-line human summary ("7/9 configs trained, 2 degraded, ...").
    pub fn summary(&self) -> String {
        let selectable = self
            .coverage
            .iter()
            .filter(|c| !matches!(c, ConfigCoverage::Excluded))
            .count();
        let mut s = format!("{}/{} selectable configs trained", self.trained(), selectable);
        if self.degraded() > 0 {
            s.push_str(&format!(", {} without a model", self.degraded()));
        }
        if self.records_out_of_range > 0 {
            s.push_str(&format!(
                ", {} record(s) with out-of-range uids skipped",
                self.records_out_of_range
            ));
        }
        s
    }
}

/// One answered query, with its degradation marker.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Selection {
    /// Chosen configuration uid.
    pub uid: u32,
    /// Predicted runtime in microseconds; `None` on the fallback path.
    pub predicted_us: Option<f64>,
    /// `true` when the decision came from the library's hard-coded
    /// decision logic because no trained model produced a finite
    /// prediction (the `DegradedSelection` marker).
    pub degraded: bool,
}

/// A trained algorithm selector for one collective on one machine/library.
#[derive(Debug)]
pub struct Selector {
    learner_name: &'static str,
    /// One model per configuration uid; `None` for excluded uids (or
    /// uids absent from the training records).
    models: Vec<Option<Model>>,
}

impl Selector {
    /// Fit one regression model per selectable configuration from
    /// benchmark records.
    ///
    /// Models are trained on the *measured* (noisy median) runtimes, as
    /// in the paper; training is parallel across configurations. Partial
    /// grids degrade (see [`Selector::train_with_report`]); an empty
    /// record set or one yielding zero models is a [`SelectorError`].
    pub fn train(
        learner: &Learner,
        records: &[Record],
        configs: &[AlgorithmConfig],
    ) -> Result<Selector, SelectorError> {
        Self::train_with_report(learner, records, configs, &TrainOptions::default())
            .map(|(s, _)| s)
    }

    /// [`Selector::train`] plus per-configuration coverage reporting and
    /// a minimum-sample threshold.
    ///
    /// Records with uids outside `configs` (a benchmark file written
    /// against a newer registry) are counted and skipped, never fatal.
    /// Configurations whose dataset the learner rejects are reported as
    /// [`ConfigCoverage::FitFailed`] and left without a model.
    pub fn train_with_report(
        learner: &Learner,
        records: &[Record],
        configs: &[AlgorithmConfig],
        opts: &TrainOptions,
    ) -> Result<(Selector, TrainReport), SelectorError> {
        if records.is_empty() {
            return Err(SelectorError::NoRecords);
        }
        let mut span = mpcp_obs::span("selector.train")
            .attr("learner", learner.name())
            .attr("records", records.len())
            .attr("configs", configs.len());
        let mut per_uid: Vec<Dataset> =
            (0..configs.len()).map(|_| Dataset::new(NUM_FEATURES)).collect();
        let mut records_out_of_range = 0usize;
        let mut records_used = 0usize;
        for r in records {
            let uid = r.uid as usize;
            if uid >= configs.len() {
                records_out_of_range += 1;
                continue;
            }
            if configs[uid].excluded {
                continue;
            }
            let target = (r.runtime * SECS_TO_TARGET).max(MIN_TARGET_US);
            per_uid[uid].push(&features_of(r), target);
            records_used += 1;
        }
        let min_samples = opts.min_samples.max(1);
        let fitted: Vec<(Option<Model>, ConfigCoverage)> = per_uid
            .par_iter()
            .enumerate()
            .map(|(uid, data)| {
                if configs[uid].excluded {
                    return (None, ConfigCoverage::Excluded);
                }
                if data.is_empty() {
                    return (None, ConfigCoverage::NoData);
                }
                if data.len() < min_samples {
                    return (
                        None,
                        ConfigCoverage::BelowThreshold { samples: data.len(), needed: min_samples },
                    );
                }
                let t = mpcp_obs::maybe_now();
                let fit = learner.try_fit(data);
                mpcp_obs::record_elapsed("selector.model_fit_ns", t);
                match fit {
                    Ok(m) => (Some(m), ConfigCoverage::Trained { samples: data.len() }),
                    Err(e) => (None, ConfigCoverage::FitFailed { samples: data.len(), error: e }),
                }
            })
            .collect();
        let mut models = Vec::with_capacity(fitted.len());
        let mut coverage = Vec::with_capacity(fitted.len());
        for (m, c) in fitted {
            models.push(m);
            coverage.push(c);
        }
        let trained = models.iter().filter(|m| m.is_some()).count();
        if trained == 0 {
            return Err(SelectorError::NoTrainedModels {
                configs: configs.len(),
                usable_records: records_used,
            });
        }
        mpcp_obs::counter_add!("selector.models_trained", trained as u64);
        mpcp_obs::counter_add!(
            "selector.configs_degraded",
            coverage
                .iter()
                .filter(|c| {
                    matches!(
                        c,
                        ConfigCoverage::NoData
                            | ConfigCoverage::BelowThreshold { .. }
                            | ConfigCoverage::FitFailed { .. }
                    )
                })
                .count() as u64
        );
        span.set_attr("models", trained);
        let report = TrainReport { records_used, records_out_of_range, coverage };
        Ok((Selector { learner_name: learner.name(), models }, report))
    }

    /// Predicted running time (microseconds) of configuration `uid` on
    /// an instance, if that configuration is selectable.
    pub fn predict_uid(&self, uid: usize, instance: &Instance) -> Option<f64> {
        self.models[uid].as_ref().map(|m| m.predict(&instance.features()))
    }

    /// Predicted runtimes for all selectable configurations.
    pub fn predict_all(&self, instance: &Instance) -> Vec<(u32, f64)> {
        let x = instance.features();
        self.models
            .iter()
            .enumerate()
            .filter_map(|(uid, m)| m.as_ref().map(|m| (uid32(uid), m.predict(&x))))
            .collect()
    }

    /// One fused pass over the model table: every trained model's
    /// prediction folds straight into `(best, runner_up)` — no
    /// intermediate `Vec` on the uncached serving path.
    ///
    /// Tie and NaN semantics exactly mirror the `predict_all` +
    /// `min_by(total_cmp)` formulation this replaces: the *last* of
    /// equally minimal predictions wins, and with `finite_only` set
    /// non-finite predictions are skipped entirely (the `try_select`
    /// rule). The runner-up is the smallest prediction from any
    /// non-chosen uid, folded NaN-insensitively like the old
    /// `f64::min` scan — `+∞` when fewer than two finite candidates
    /// exist.
    fn fused_argmin(&self, x: &[f64; NUM_FEATURES], finite_only: bool) -> (Option<(u32, f64)>, f64) {
        let mut best: Option<(u32, f64)> = None;
        let mut runner_up = f64::INFINITY;
        let mut fold = |uid: u32, p: f64| {
            if finite_only && !p.is_finite() {
                return;
            }
            match best {
                None => best = Some((uid, p)),
                Some((_, bp)) => {
                    if p.total_cmp(&bp) != std::cmp::Ordering::Greater {
                        runner_up = runner_up.min(bp);
                        best = Some((uid, p));
                    } else {
                        runner_up = runner_up.min(p);
                    }
                }
            }
        };
        for (uid, m) in self.models.iter().enumerate() {
            let Some(m) = m else { continue };
            fold(uid32(uid), m.predict(x));
        }
        (best, runner_up)
    }

    /// The paper's selection rule: argmin of predicted runtime.
    /// Returns `(uid, predicted_microseconds)`.
    pub fn select(&self, instance: &Instance) -> (u32, f64) {
        let _span = mpcp_obs::span("select")
            .attr("instances", 1u64)
            .attr("models", self.model_count());
        let t = mpcp_obs::maybe_now();
        // total_cmp inside the fold: a NaN prediction (degenerate model)
        // must order deterministically instead of panicking mid-selection.
        let (best, runner_up) = self.fused_argmin(&instance.features(), false);
        let sel = best.expect("selector has no trained models");
        if mpcp_obs::enabled() {
            mpcp_obs::counter_add!("selector.queries", 1);
            mpcp_obs::counter_add!("selector.models_evaluated", self.model_count() as u64);
            if runner_up.is_finite() && sel.1 > 0.0 {
                let ppm = ((runner_up - sel.1) / sel.1 * 1e6).max(0.0);
                mpcp_obs::hist_record!("selector.margin_ppm", ppm as u64);
            }
        }
        mpcp_obs::record_elapsed("selector.select_ns", t);
        sel
    }

    /// [`Selector::select`] that never panics: `None` when no trained
    /// model produces a finite prediction for the instance.
    pub fn try_select(&self, instance: &Instance) -> Option<(u32, f64)> {
        self.fused_argmin(&instance.features(), true).0
    }

    /// Total selection over partial training coverage: the model argmin
    /// when any trained model yields a finite prediction, otherwise the
    /// library's hard-coded decision logic — marked as a degraded
    /// selection so callers can report coverage honestly.
    ///
    /// On a selector trained from a complete grid this returns exactly
    /// what [`Selector::select`] returns, never degraded.
    pub fn select_with_fallback(&self, instance: &Instance, library: &MpiLibrary) -> Selection {
        let _span = mpcp_obs::span("select")
            .attr("instances", 1u64)
            .attr("models", self.model_count());
        let t = mpcp_obs::maybe_now();
        let sel = if let Some((uid, pred)) = self.try_select(instance) {
            mpcp_obs::counter_add!("selector.queries", 1);
            Selection { uid, predicted_us: Some(pred), degraded: false }
        } else {
            let topo = Topology::new(instance.nodes, instance.ppn);
            let uid = uid32(library.default_choice(instance.coll, instance.msize, &topo));
            mpcp_obs::counter_add!("selector.degraded_selections", 1);
            Selection { uid, predicted_us: None, degraded: true }
        };
        mpcp_obs::record_elapsed("selector.select_ns", t);
        sel
    }

    /// Batched selection: the argmin rule of [`Selector::select`]
    /// applied to a block of instances at once.
    ///
    /// The feature matrix is assembled once (row-major) and split into
    /// row tiles processed in parallel. Within a tile, every model
    /// evaluates the rows through its batch kernel into one reusable
    /// scratch buffer and the predictions fold straight into a fused
    /// per-row `(best, runner_up)` — no per-model prediction vectors are
    /// ever materialized. Agrees elementwise with calling
    /// [`Selector::select`] in a loop (ties broken toward the lower
    /// uid, which is also the order `predict_all` yields).
    pub fn select_batch(&self, instances: &[Instance]) -> Vec<(u32, f64)> {
        /// Rows per parallel tile: large enough to amortize the lockstep
        /// tree kernels, small enough that the scratch buffer stays in L1.
        const TILE: usize = 256;
        let mut span = mpcp_obs::span("select")
            .attr("instances", instances.len())
            .attr("models", self.model_count());
        let t = mpcp_obs::maybe_now();
        let mut xs = Vec::with_capacity(instances.len() * NUM_FEATURES);
        for inst in instances {
            xs.extend_from_slice(&inst.features());
        }
        // One tile of rows per parallel unit; each tile folds every
        // model's predictions (one reusable scratch buffer) into a fused
        // per-row `(best, runner_up)`. The runner-up feeds the margin
        // histogram below without a second pass over models.
        /// Per-tile result: fused `(uid, best)` per row plus the
        /// runner-up predictions feeding the margin histogram.
        type Tile = (Vec<(u32, f64)>, Vec<f64>);
        let ntiles = instances.len().div_ceil(TILE);
        let tiles: Vec<Tile> = (0..ntiles)
            .into_par_iter()
            .map(|tile| {
                let start = tile * TILE;
                let len = TILE.min(instances.len() - start);
                let xs_tile = &xs[start * NUM_FEATURES..][..len * NUM_FEATURES];
                let mut bests = vec![(u32::MAX, f64::INFINITY); len];
                let mut seconds = vec![f64::INFINITY; len];
                let mut preds = vec![0.0f64; len];
                for (uid, m) in self.models.iter().enumerate() {
                    let Some(m) = m else { continue };
                    m.predict_batch_into(xs_tile, NUM_FEATURES, &mut preds);
                    let u = uid32(uid);
                    for ((b, s), &p) in bests.iter_mut().zip(seconds.iter_mut()).zip(&preds) {
                        // `<=` mirrors `Iterator::min_by`, which keeps
                        // the LAST of equally minimal elements — so
                        // exact-tie behavior matches the scalar `select`
                        // path. The displaced best (or the losing
                        // prediction) folds NaN-insensitively into the
                        // runner-up, like `select`'s f64::min scan.
                        if p <= b.1 {
                            *s = s.min(b.1);
                            *b = (u, p);
                        } else {
                            *s = s.min(p);
                        }
                    }
                }
                (bests, seconds)
            })
            .collect();
        let mut best: Vec<(u32, f64)> = Vec::with_capacity(instances.len());
        let mut runner_up: Vec<f64> = Vec::with_capacity(instances.len());
        for (bests, seconds) in tiles {
            best.extend_from_slice(&bests);
            runner_up.extend_from_slice(&seconds);
        }
        assert!(
            instances.is_empty() || best[0].0 != u32::MAX,
            "selector has no trained models"
        );
        if mpcp_obs::enabled() {
            let models = self.model_count();
            mpcp_obs::counter_add!("selector.queries", instances.len() as u64);
            mpcp_obs::counter_add!(
                "selector.models_evaluated",
                (models * instances.len()) as u64
            );
            // Predicted-vs-chosen margin: how far the runner-up sits
            // above the chosen configuration, in parts per million.
            for (&(_, pred), &second) in best.iter().zip(&runner_up) {
                if second.is_finite() && pred > 0.0 {
                    let ppm = ((second - pred) / pred * 1e6).max(0.0);
                    mpcp_obs::hist_record!("selector.margin_ppm", ppm as u64);
                }
            }
            span.set_attr("queries", instances.len());
        }
        mpcp_obs::record_elapsed("selector.select_ns", t);
        best
    }

    /// Name of the underlying learner ("KNN", "GAM", "XGBoost", ...).
    pub fn learner_name(&self) -> &'static str {
        self.learner_name
    }

    /// The full model table, `None` for untrained uids (persistence).
    pub(crate) fn models(&self) -> &[Option<Model>] {
        &self.models
    }

    /// Reassemble a selector from decoded parts (persistence). The
    /// artifact decoder validates the table against its coverage report
    /// before calling this.
    pub(crate) fn from_parts(learner_name: &'static str, models: Vec<Option<Model>>) -> Selector {
        Selector { learner_name, models }
    }

    /// Number of trained (selectable) models.
    pub fn model_count(&self) -> usize {
        self.models.iter().filter(|m| m.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcp_benchmark::{BenchConfig, DatasetSpec};
    use mpcp_collectives::Collective;

    fn trained(learner: Learner) -> (Selector, DatasetSpec, Vec<Record>) {
        let spec = DatasetSpec::tiny_for_tests();
        let lib = spec.library(None);
        let data = spec.generate(&lib, &BenchConfig::quick());
        let selector =
            Selector::train(&learner, &data.records, lib.configs(spec.coll)).unwrap();
        (selector, spec, data.records)
    }

    #[test]
    fn trains_one_model_per_selectable_config() {
        let (selector, spec, _) = trained(Learner::knn());
        let lib = spec.library(None);
        let selectable = lib.selectable(spec.coll).count();
        assert_eq!(selector.model_count(), selectable);
    }

    #[test]
    fn select_returns_a_selectable_uid() {
        for learner in [Learner::knn(), Learner::gam(), Learner::xgboost()] {
            let (selector, spec, _) = trained(learner);
            let lib = spec.library(None);
            let inst = Instance::new(Collective::Allreduce, 1024, 3, 2);
            let (uid, pred) = selector.select(&inst);
            assert!(pred > 0.0, "{}", selector.learner_name());
            assert!(!lib.configs(spec.coll)[uid as usize].excluded);
        }
    }

    #[test]
    fn knn_predictions_stay_within_training_range() {
        // KNN averages K training targets, so every prediction must lie
        // within the per-configuration target range.
        let (selector, _, records) = trained(Learner::knn());
        let mut lo = std::collections::HashMap::new();
        let mut hi = std::collections::HashMap::new();
        for r in &records {
            let t = r.runtime * 1e6;
            let l = lo.entry(r.uid).or_insert(t);
            *l = l.min(t);
            let h = hi.entry(r.uid).or_insert(t);
            *h = h.max(t);
        }
        let mut checked = 0;
        for r in records.iter().step_by(7) {
            let inst = Instance::new(Collective::Allreduce, r.msize, r.nodes, r.ppn);
            if let Some(pred) = selector.predict_uid(r.uid as usize, &inst) {
                assert!(
                    pred >= lo[&r.uid] - 1e-9 && pred <= hi[&r.uid] + 1e-9,
                    "uid {} pred {pred} outside [{}, {}]",
                    r.uid,
                    lo[&r.uid],
                    hi[&r.uid]
                );
                checked += 1;
            }
        }
        assert!(checked > 10);
    }

    #[test]
    fn excluded_configs_are_never_selected() {
        // d-style bcast library has an excluded config (alg 8).
        let mut spec = DatasetSpec::tiny_for_tests();
        spec.coll = Collective::Bcast;
        let lib = spec.library(None);
        let data = spec.generate(&lib, &BenchConfig::quick());
        let selector =
            Selector::train(&Learner::knn(), &data.records, lib.configs(spec.coll)).unwrap();
        let configs = lib.configs(spec.coll);
        for m in [1u64, 1024, 1 << 20] {
            let inst = Instance::new(Collective::Bcast, m, 3, 2);
            let (uid, _) = selector.select(&inst);
            assert!(!configs[uid as usize].excluded);
        }
    }

    #[test]
    fn predict_all_covers_all_models() {
        let (selector, _, _) = trained(Learner::gam());
        let inst = Instance::new(Collective::Allreduce, 64, 2, 2);
        let all = selector.predict_all(&inst);
        assert_eq!(all.len(), selector.model_count());
        assert!(all.iter().all(|(_, p)| p.is_finite() && *p > 0.0));
    }

    #[test]
    fn empty_records_are_a_typed_error() {
        let spec = DatasetSpec::tiny_for_tests();
        let lib = spec.library(None);
        let err = Selector::train(&Learner::knn(), &[], lib.configs(spec.coll)).map(|_| ()).unwrap_err();
        assert_eq!(err, SelectorError::NoRecords);
        assert!(format!("{err}").contains("no training records"));
    }

    #[test]
    fn out_of_range_uids_are_skipped_not_fatal() {
        // A benchmark file written against a newer registry: uids past
        // the end of `configs` must degrade, not abort.
        let spec = DatasetSpec::tiny_for_tests();
        let lib = spec.library(None);
        let configs = lib.configs(spec.coll);
        let mut records = spec.generate(&lib, &BenchConfig::quick()).records;
        let total = records.len();
        let alien = Record { uid: configs.len() as u32 + 3, ..records[0] };
        records.push(alien);
        let (selector, report) = Selector::train_with_report(
            &Learner::knn(),
            &records,
            configs,
            &TrainOptions::default(),
        )
        .unwrap();
        assert_eq!(report.records_out_of_range, 1);
        assert_eq!(report.records_used, total);
        assert_eq!(selector.model_count(), report.trained());
        assert!(report.summary().contains("out-of-range"));
    }

    #[test]
    fn min_samples_threshold_degrades_thin_configs() {
        let spec = DatasetSpec::tiny_for_tests();
        let lib = spec.library(None);
        let configs = lib.configs(spec.coll);
        let data = spec.generate(&lib, &BenchConfig::quick());
        // Keep only two records for uid 0, all records otherwise.
        let mut kept0 = 0;
        let records: Vec<Record> = data
            .records
            .iter()
            .filter(|r| {
                if r.uid != 0 {
                    return true;
                }
                kept0 += 1;
                kept0 <= 2
            })
            .copied()
            .collect();
        let opts = TrainOptions { min_samples: 3 };
        let (selector, report) =
            Selector::train_with_report(&Learner::knn(), &records, configs, &opts).unwrap();
        assert_eq!(
            report.coverage[0],
            ConfigCoverage::BelowThreshold { samples: 2, needed: 3 }
        );
        assert!(selector.predict_uid(0, &Instance::new(spec.coll, 16, 2, 1)).is_none());
        assert_eq!(report.degraded(), 1);
    }

    #[test]
    fn fallback_kicks_in_only_without_models() {
        let spec = DatasetSpec::tiny_for_tests();
        let lib = spec.library(None);
        let data = spec.generate(&lib, &BenchConfig::quick());
        let selector =
            Selector::train(&Learner::knn(), &data.records, lib.configs(spec.coll)).unwrap();
        let inst = Instance::new(spec.coll, 1024, 3, 2);
        // Full coverage: fallback result is exactly select()'s result.
        let sel = selector.select_with_fallback(&inst, &lib);
        let (uid, pred) = selector.select(&inst);
        assert_eq!(sel, Selection { uid, predicted_us: Some(pred), degraded: false });

        // Records for a single uid only: the selector trains, and the
        // fallback never fires because that one model covers queries.
        let only: Vec<Record> = data.records.iter().filter(|r| r.uid == 1).copied().collect();
        let (thin, report) = Selector::train_with_report(
            &Learner::knn(),
            &only,
            lib.configs(spec.coll),
            &TrainOptions::default(),
        )
        .unwrap();
        assert_eq!(report.trained(), 1);
        let sel = thin.select_with_fallback(&inst, &lib);
        assert!(!sel.degraded);
        assert_eq!(sel.uid, 1);
    }

    #[test]
    fn all_records_out_of_range_is_no_trained_models() {
        let spec = DatasetSpec::tiny_for_tests();
        let lib = spec.library(None);
        let configs = lib.configs(spec.coll);
        let data = spec.generate(&lib, &BenchConfig::quick());
        let records: Vec<Record> = data
            .records
            .iter()
            .map(|r| Record { uid: r.uid + configs.len() as u32, ..*r })
            .collect();
        let err = Selector::train(&Learner::knn(), &records, configs).map(|_| ()).unwrap_err();
        assert!(matches!(err, SelectorError::NoTrainedModels { usable_records: 0, .. }));
    }
}
