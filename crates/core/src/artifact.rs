//! Selector persistence: save a trained [`Selector`] — per-config
//! models, [`TrainReport`] coverage, and a provenance manifest — as one
//! versioned, checksummed binary artifact, and load it back without
//! retraining.
//!
//! The on-disk frame and codec live in [`mpcp_ml::persist`] (see
//! DESIGN §12 for the layout diagram); this module adds the
//! selector-level payload:
//!
//! ```text
//! manifest (ArtifactMeta) · learner name · TrainReport · model table
//! ```
//!
//! The manifest leads the payload so tooling can describe an artifact
//! after decoding only its prefix. Loading never panics: I/O problems
//! and every corruption class (truncation, checksum mismatch, unknown
//! version) surface as a typed [`ArtifactError`]. A loaded selector
//! reproduces the saved one's [`crate::Selection`]s bit-identically —
//! the round-trip test suite holds this over the full evaluation grid
//! for all five learners.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use mpcp_collectives::Collective;
use mpcp_ml::model::learner_name_static;
use mpcp_ml::persist::{
    decode_framed, encode_framed, ByteReader, ByteWriter, CodecError, Persist, KIND_SELECTOR,
};
use mpcp_ml::{FitError, Model};
use mpcp_obs::provenance::Provenance;

use crate::selector::{ConfigCoverage, Selector, TrainOptions, TrainReport};

/// Why an artifact could not be saved or loaded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArtifactError {
    /// The file could not be read or written.
    Io {
        /// Path involved.
        path: PathBuf,
        /// Operating-system error text.
        error: String,
    },
    /// The bytes were read but do not decode (truncated, corrupt,
    /// wrong kind, or written by an unknown format version).
    Codec {
        /// Path involved.
        path: PathBuf,
        /// The codec's typed reason.
        error: CodecError,
    },
}

impl ArtifactError {
    /// The codec failure, when this is a decode error.
    pub fn codec(&self) -> Option<&CodecError> {
        match self {
            ArtifactError::Codec { error, .. } => Some(error),
            ArtifactError::Io { .. } => None,
        }
    }
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io { path, error } => {
                write!(f, "{}: {error}", path.display())
            }
            ArtifactError::Codec { path, error } => {
                write!(f, "{}: {error}", path.display())
            }
        }
    }
}

impl std::error::Error for ArtifactError {}

/// The artifact manifest: what was trained, where, and from what.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArtifactMeta {
    /// Collective the selector answers queries for.
    pub collective: Collective,
    /// MPI library name/version the models were trained against
    /// (e.g. "Open MPI 4.0.2").
    pub library: String,
    /// Machine name of the benchmark grid (e.g. "Hydra").
    pub machine: String,
    /// Git commit of the tree that trained the models.
    pub git_sha: String,
    /// Benchmark RNG seed, when the run had one.
    pub seed: Option<u64>,
    /// The [`TrainOptions::min_samples`] threshold in force.
    pub min_samples: u64,
    /// Training wall-clock time, seconds since the Unix epoch.
    pub created_unix: u64,
}

impl ArtifactMeta {
    /// Build a manifest for a training run, capturing git provenance and
    /// wall-clock time via [`Provenance::capture`].
    pub fn capture(
        collective: Collective,
        library: &str,
        machine: &str,
        seed: Option<u64>,
        opts: &TrainOptions,
    ) -> ArtifactMeta {
        let p = Provenance::capture(&format!("selector {library} {machine}"), seed);
        ArtifactMeta {
            collective,
            library: library.to_string(),
            machine: machine.to_string(),
            git_sha: p.git_sha,
            seed,
            min_samples: opts.min_samples as u64,
            created_unix: p.unix_time,
        }
    }
}

impl Persist for ArtifactMeta {
    fn encode(&self, w: &mut ByteWriter) {
        // The collective is stored as its index in `Collective::ALL`
        // (a stable, registry-ordered list).
        let idx = Collective::ALL
            .iter()
            .position(|c| *c == self.collective)
            .unwrap_or(usize::MAX);
        w.put_len(idx);
        w.put_str(&self.library);
        w.put_str(&self.machine);
        w.put_str(&self.git_sha);
        match self.seed {
            None => w.put_u8(0),
            Some(s) => {
                w.put_u8(1);
                w.put_u64(s);
            }
        }
        w.put_u64(self.min_samples);
        w.put_u64(self.created_unix);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<ArtifactMeta, CodecError> {
        let idx = r.get_len(0)?;
        let collective = Collective::ALL
            .get(idx)
            .copied()
            .ok_or_else(|| CodecError::invalid(format!("collective index {idx}")))?;
        let library = r.get_string()?;
        let machine = r.get_string()?;
        let git_sha = r.get_string()?;
        let seed = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_u64()?),
            b => return Err(CodecError::invalid(format!("seed tag {b}"))),
        };
        let min_samples = r.get_u64()?;
        let created_unix = r.get_u64()?;
        Ok(ArtifactMeta { collective, library, machine, git_sha, seed, min_samples, created_unix })
    }
}

impl Persist for ConfigCoverage {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            ConfigCoverage::Trained { samples } => {
                w.put_u8(0);
                w.put_len(*samples);
            }
            ConfigCoverage::Excluded => w.put_u8(1),
            ConfigCoverage::NoData => w.put_u8(2),
            ConfigCoverage::BelowThreshold { samples, needed } => {
                w.put_u8(3);
                w.put_len(*samples);
                w.put_len(*needed);
            }
            ConfigCoverage::FitFailed { samples, error } => {
                w.put_u8(4);
                w.put_len(*samples);
                error.encode(w);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<ConfigCoverage, CodecError> {
        Ok(match r.get_u8()? {
            0 => ConfigCoverage::Trained { samples: r.get_len(0)? },
            1 => ConfigCoverage::Excluded,
            2 => ConfigCoverage::NoData,
            3 => {
                let samples = r.get_len(0)?;
                let needed = r.get_len(0)?;
                ConfigCoverage::BelowThreshold { samples, needed }
            }
            4 => {
                let samples = r.get_len(0)?;
                let error = FitError::decode(r)?;
                ConfigCoverage::FitFailed { samples, error }
            }
            b => return Err(CodecError::invalid(format!("coverage tag {b}"))),
        })
    }
}

impl Persist for TrainReport {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_len(self.records_used);
        w.put_len(self.records_out_of_range);
        mpcp_ml::persist::put_seq(w, &self.coverage);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<TrainReport, CodecError> {
        let records_used = r.get_len(0)?;
        let records_out_of_range = r.get_len(0)?;
        let coverage = mpcp_ml::persist::get_seq(r)?;
        Ok(TrainReport { records_used, records_out_of_range, coverage })
    }
}

/// A loaded artifact: the selector plus everything saved alongside it.
#[derive(Debug)]
pub struct SelectorArtifact {
    /// The reconstructed selector.
    pub selector: Selector,
    /// Per-configuration coverage of the original training run.
    pub report: TrainReport,
    /// The provenance manifest.
    pub meta: ArtifactMeta,
}

impl SelectorArtifact {
    /// Decode an artifact from raw bytes (the file-free half of
    /// [`Selector::load`], usable on in-memory buffers and in tests).
    pub fn from_bytes(bytes: &[u8]) -> Result<SelectorArtifact, CodecError> {
        decode_framed(KIND_SELECTOR, bytes)
    }
}

impl Persist for SelectorArtifact {
    fn encode(&self, w: &mut ByteWriter) {
        encode_selector_payload(&self.selector, &self.report, &self.meta, w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<SelectorArtifact, CodecError> {
        let meta = ArtifactMeta::decode(r)?;
        let name = r.get_string()?;
        let learner_name = learner_name_static(&name)
            .ok_or_else(|| CodecError::invalid(format!("unknown learner name {name:?}")))?;
        let report = TrainReport::decode(r)?;
        let nmodels = r.get_len(0)?;
        let mut models: Vec<Option<Model>> = Vec::with_capacity(nmodels.min(r.remaining() + 1));
        for _ in 0..nmodels {
            models.push(mpcp_ml::persist::get_opt(r)?);
        }
        // The selector and its report must describe the same registry,
        // and `select` requires at least one trained model.
        if models.len() != report.coverage.len() {
            return Err(CodecError::invalid(format!(
                "artifact has {} model slot(s) but coverage for {}",
                models.len(),
                report.coverage.len()
            )));
        }
        if !models.iter().any(Option::is_some) {
            return Err(CodecError::invalid("artifact contains no trained models"));
        }
        for (uid, (m, c)) in models.iter().zip(&report.coverage).enumerate() {
            let covered = matches!(c, ConfigCoverage::Trained { .. });
            if m.is_some() != covered {
                return Err(CodecError::invalid(format!(
                    "model slot {uid} disagrees with its coverage entry"
                )));
            }
        }
        Ok(SelectorArtifact {
            selector: Selector::from_parts(learner_name, models),
            report,
            meta,
        })
    }
}

fn encode_selector_payload(
    selector: &Selector,
    report: &TrainReport,
    meta: &ArtifactMeta,
    w: &mut ByteWriter,
) {
    meta.encode(w);
    w.put_str(selector.learner_name());
    report.encode(w);
    let models = selector.models();
    w.put_len(models.len());
    for m in models {
        mpcp_ml::persist::put_opt(w, m);
    }
}

/// Borrowing encoder mirroring [`SelectorArtifact`]'s `Persist` impl,
/// so `save` does not need to take the selector by value.
struct BorrowedArtifact<'a> {
    selector: &'a Selector,
    report: &'a TrainReport,
    meta: &'a ArtifactMeta,
}

impl Persist for BorrowedArtifact<'_> {
    fn encode(&self, w: &mut ByteWriter) {
        encode_selector_payload(self.selector, self.report, self.meta, w);
    }

    fn decode(_r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Err(CodecError::invalid("borrowed artifacts are encode-only"))
    }
}

impl Selector {
    /// Serialize this selector (with its coverage report and manifest)
    /// to the framed artifact byte format.
    pub fn to_artifact_bytes(&self, report: &TrainReport, meta: &ArtifactMeta) -> Vec<u8> {
        encode_framed(KIND_SELECTOR, &BorrowedArtifact { selector: self, report, meta })
    }

    /// Save this selector as a model artifact at `path`, creating parent
    /// directories as needed.
    pub fn save(
        &self,
        path: &Path,
        report: &TrainReport,
        meta: &ArtifactMeta,
    ) -> Result<(), ArtifactError> {
        let bytes = self.to_artifact_bytes(report, meta);
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::create_dir_all(parent).map_err(|e| ArtifactError::Io {
                path: path.to_path_buf(),
                error: e.to_string(),
            })?;
        }
        fs::write(path, &bytes).map_err(|e| ArtifactError::Io {
            path: path.to_path_buf(),
            error: e.to_string(),
        })?;
        mpcp_obs::counter_add!("artifact.saves", 1);
        mpcp_obs::event("artifact.save").attr("bytes", bytes.len()).emit();
        Ok(())
    }

    /// Load a selector artifact from `path`.
    ///
    /// Never panics: missing files are [`ArtifactError::Io`]; truncated,
    /// corrupted, or unknown-version bytes are [`ArtifactError::Codec`]
    /// with the codec's typed reason inside.
    pub fn load(path: &Path) -> Result<SelectorArtifact, ArtifactError> {
        let bytes = fs::read(path).map_err(|e| ArtifactError::Io {
            path: path.to_path_buf(),
            error: e.to_string(),
        })?;
        let artifact = SelectorArtifact::from_bytes(&bytes).map_err(|error| {
            ArtifactError::Codec { path: path.to_path_buf(), error }
        })?;
        mpcp_obs::counter_add!("artifact.loads", 1);
        Ok(artifact)
    }
}
