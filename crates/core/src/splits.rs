//! Train/test splits over node counts (Table III of the paper).
//!
//! The paper trains on "commonly allocated" node counts and tests on odd
//! node counts never seen in training — the realistic scenario where the
//! model must generalize to an allocation size the benchmark never ran
//! on.

use mpcp_benchmark::Record;

/// Table III row: training (full and small) and test node counts.
#[derive(Clone, Debug, PartialEq)]
pub struct Split {
    /// Full training dataset node counts.
    pub train_full: Vec<u32>,
    /// Small training dataset node counts.
    pub train_small: Vec<u32>,
    /// Test node counts (disjoint from training).
    pub test: Vec<u32>,
}

/// Table III, by machine name.
pub fn paper_split(machine: &str) -> Split {
    match machine.to_ascii_lowercase().as_str() {
        "hydra" => Split {
            train_full: vec![4, 8, 16, 20, 24, 32, 36],
            train_small: vec![4, 16, 36],
            test: vec![7, 13, 19, 27, 35],
        },
        "jupiter" => Split {
            train_full: vec![4, 8, 16, 20, 24, 32],
            train_small: vec![4, 16, 32],
            test: vec![7, 13, 19, 27],
        },
        "supermuc-ng" => Split {
            train_full: vec![20, 32, 48],
            train_small: vec![20, 32, 48],
            test: vec![27, 35],
        },
        other => panic!("no Table III split for machine {other:?}"),
    }
}

/// Records whose node count is in `nodes`.
pub fn filter_records(records: &[Record], nodes: &[u32]) -> Vec<Record> {
    records.iter().filter(|r| nodes.contains(&r.nodes)).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_are_disjoint() {
        for m in ["Hydra", "Jupiter", "SuperMUC-NG"] {
            let s = paper_split(m);
            for t in &s.test {
                assert!(!s.train_full.contains(t), "{m}: {t} in both");
            }
            // Small training set is a subset of the full one.
            for n in &s.train_small {
                assert!(s.train_full.contains(n), "{m}: small ⊄ full");
            }
        }
    }

    #[test]
    fn hydra_matches_table3() {
        let s = paper_split("hydra");
        assert_eq!(s.train_full, vec![4, 8, 16, 20, 24, 32, 36]);
        assert_eq!(s.train_small, vec![4, 16, 36]);
        assert_eq!(s.test, vec![7, 13, 19, 27, 35]);
    }

    #[test]
    #[should_panic(expected = "no Table III split")]
    fn unknown_machine_panics() {
        paper_split("frontier");
    }

    #[test]
    fn filter_selects_by_node_count() {
        let mk = |nodes| Record {
            nodes,
            ppn: 1,
            msize: 1,
            uid: 0,
            alg_id: 1,
            excluded: false,
            runtime: 1.0,
            base: 1.0,
            reps: 1,
        };
        let records = vec![mk(4), mk(7), mk(8), mk(7)];
        let f = filter_records(&records, &[7]);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|r| r.nodes == 7));
    }
}
