//! Property-based tests for the selection framework: the selector's
//! argmin semantics and the evaluation's ordering invariants.

use proptest::prelude::*;

use mpcp_benchmark::Record;
use mpcp_collectives::{AlgKind, AlgorithmConfig, Collective};
use mpcp_core::{evaluate, Instance, RuntimeTable, Selector};
use mpcp_ml::Learner;

/// Synthesize a consistent record grid with the given per-uid runtime
/// functions (deterministic, strictly positive).
fn synth_records(n_uids: u32) -> Vec<Record> {
    let mut records = Vec::new();
    for uid in 0..n_uids {
        for nodes in [2u32, 3, 4, 5] {
            for ppn in [1u32, 2] {
                for msize in [64u64, 4096, 262_144] {
                    // Each uid has a different affine runtime surface so
                    // the best uid varies across the grid.
                    let t = 1e-6
                        * (1.0
                            + uid as f64
                            + msize as f64 * 1e-5 / (1.0 + uid as f64)
                            + nodes as f64 * 0.3
                            + ppn as f64 * 0.2);
                    records.push(Record {
                        nodes,
                        ppn,
                        msize,
                        uid,
                        alg_id: uid + 1,
                        excluded: false,
                        runtime: t,
                        base: t,
                        reps: 10,
                    });
                }
            }
        }
    }
    records
}

fn configs(n: u32) -> Vec<AlgorithmConfig> {
    (0..n)
        .map(|i| AlgorithmConfig::new(i + 1, AlgKind::BcastChain { chains: i + 1, seg: 0 }))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn selector_argmin_matches_per_uid_predictions(
        n_uids in 2u32..6,
        msize in prop::sample::select(vec![64u64, 4096, 262_144]),
        nodes in 2u32..6,
        ppn in 1u32..3,
    ) {
        let records = synth_records(n_uids);
        let cfgs = configs(n_uids);
        let selector = Selector::train(&Learner::knn(), &records, &cfgs).unwrap();
        let inst = Instance::new(Collective::Bcast, msize, nodes, ppn);
        let (uid, pred) = selector.select(&inst);
        for (u, p) in selector.predict_all(&inst) {
            prop_assert!(pred <= p + 1e-12, "uid {uid} pred {pred} vs uid {u} pred {p}");
        }
    }

    #[test]
    fn select_batch_matches_looped_select(
        n_uids in 2u32..6,
        queries in prop::collection::vec(
            (prop::sample::select(vec![64u64, 1024, 65_536, 262_144]), 2u32..8, 1u32..4),
            1..40),
        learner_idx in 0usize..3,
    ) {
        let records = synth_records(n_uids);
        let cfgs = configs(n_uids);
        let learner = [Learner::knn(), Learner::gam(), Learner::xgboost()][learner_idx];
        let selector = Selector::train(&learner, &records, &cfgs).unwrap();
        let instances: Vec<Instance> = queries
            .iter()
            .map(|&(m, nodes, ppn)| Instance::new(Collective::Bcast, m, nodes, ppn))
            .collect();
        let batch = selector.select_batch(&instances);
        prop_assert_eq!(batch.len(), instances.len());
        for (i, inst) in instances.iter().enumerate() {
            let (uid, pred) = selector.select(inst);
            prop_assert_eq!(batch[i].0, uid, "instance {} chose a different uid", i);
            prop_assert!(batch[i].1 == pred,
                "instance {}: batch pred {} vs scalar {}", i, batch[i].1, pred);
        }
    }

    #[test]
    fn runtime_table_best_is_global_minimum(
        n_uids in 2u32..6,
    ) {
        let records = synth_records(n_uids);
        let table = RuntimeTable::new(&records);
        for inst in table.instances(Collective::Bcast) {
            let (_, best) = table.best(&inst).unwrap();
            for uid in 0..n_uids {
                let t = table.runtime(&inst, uid).unwrap();
                prop_assert!(best <= t + 1e-18);
            }
        }
    }

    #[test]
    fn evaluation_orderings_hold_on_synthetic_data(
        n_uids in 2u32..6,
    ) {
        // A selector trained on the full synthetic grid, evaluated on it:
        // best <= predicted and best <= default always.
        let records = synth_records(n_uids);
        let cfgs = configs(n_uids);
        let selector = Selector::train(&Learner::knn(), &records, &cfgs).unwrap();
        // An ad-hoc library is overkill here; reuse evaluate() through
        // the real library only in integration tests. Here check the
        // ordering against the table directly.
        let table = RuntimeTable::new(&records);
        for inst in table.instances(Collective::Bcast) {
            let (uid, _) = selector.select(&inst);
            let (best_uid, best) = table.best(&inst).unwrap();
            let chosen = table.runtime(&inst, uid).unwrap();
            prop_assert!(best <= chosen + 1e-18);
            prop_assert!(table.runtime(&inst, best_uid).unwrap() <= chosen + 1e-18);
        }
        // Silence unused import when the evaluate-based variant is
        // feature-gated out.
        let _ = evaluate;
    }
}
