//! Whole-`Selector` persistence round-trip: for every learner, a
//! trained selector saved to disk and loaded back must reproduce the
//! in-memory selector's `Selection`s **bit-identically** (uid,
//! predicted microseconds via `f64::to_bits`, degraded flag) across
//! the full evaluation grid — plus typed-error checks on corrupted
//! artifact files.

use std::path::PathBuf;

use mpcp_benchmark::{BenchConfig, DatasetSpec};
use mpcp_core::{ArtifactError, ArtifactMeta, Instance, Selector, TrainOptions};
use mpcp_ml::persist::{CodecError, FORMAT_VERSION};
use mpcp_ml::Learner;

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mpcp_artifact_rt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn all_learners() -> Vec<Learner> {
    vec![
        Learner::knn(),
        Learner::gam(),
        Learner::xgboost(),
        Learner::forest(),
        Learner::linear(),
    ]
}

/// The full evaluation grid for the tiny spec: every benchmarked cell
/// plus unseen interpolation/extrapolation points.
fn evaluation_grid(spec: &DatasetSpec) -> Vec<Instance> {
    let mut grid = Vec::new();
    for &m in &spec.msizes {
        for &n in &spec.nodes {
            for &p in &spec.ppn {
                grid.push(Instance::new(spec.coll, m, n, p));
            }
        }
    }
    // Off-lattice probes: sizes and node counts never benchmarked.
    for i in 0..20u64 {
        grid.push(Instance::new(spec.coll, 3 * (i + 1) * 100, 2 + (i % 7) as u32, 1 + (i % 3) as u32));
    }
    grid
}

#[test]
fn selector_round_trips_bit_identically_for_every_learner() {
    let spec = DatasetSpec::tiny_for_tests();
    let lib = spec.library(None);
    let data = spec.generate(&lib, &BenchConfig::quick());
    let grid = evaluation_grid(&spec);
    for learner in all_learners() {
        let (selector, report) = Selector::train_with_report(
            &learner,
            &data.records,
            lib.configs(spec.coll),
            &TrainOptions::default(),
        )
        .unwrap();
        let meta = ArtifactMeta::capture(
            spec.coll,
            &format!("{} {}", lib.name, lib.version),
            &spec.machine.name,
            Some(spec.seed),
            &TrainOptions::default(),
        );
        let path = tmp_path(&format!("{}.mpcp", learner.name()));
        selector.save(&path, &report, &meta).unwrap();
        let loaded = Selector::load(&path).unwrap();

        // Manifest and coverage survive verbatim.
        assert_eq!(loaded.meta, meta, "{}", learner.name());
        assert_eq!(loaded.report.records_used, report.records_used);
        assert_eq!(loaded.report.records_out_of_range, report.records_out_of_range);
        assert_eq!(loaded.report.coverage, report.coverage, "{}", learner.name());
        assert_eq!(loaded.selector.learner_name(), selector.learner_name());
        assert_eq!(loaded.selector.model_count(), selector.model_count());

        // Selections are bit-identical over the whole grid.
        for inst in &grid {
            let a = selector.select_with_fallback(inst, &lib);
            let b = loaded.selector.select_with_fallback(inst, &lib);
            assert_eq!(a.uid, b.uid, "{}: uid drifted on {inst}", learner.name());
            assert_eq!(a.degraded, b.degraded, "{}: {inst}", learner.name());
            assert_eq!(
                a.predicted_us.map(f64::to_bits),
                b.predicted_us.map(f64::to_bits),
                "{}: predicted time drifted on {inst}",
                learner.name()
            );
        }
        // And through the batched kernel.
        let a = selector.select_batch(&grid);
        let b = loaded.selector.select_batch(&grid);
        for (i, ((ua, pa), (ub, pb))) in a.iter().zip(&b).enumerate() {
            assert_eq!(ua, ub, "{}: batch uid row {i}", learner.name());
            assert_eq!(pa.to_bits(), pb.to_bits(), "{}: batch pred row {i}", learner.name());
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn partial_coverage_selector_round_trips() {
    // A fault-shaped dataset (only one uid trained) must round-trip
    // with its degraded coverage intact.
    let spec = DatasetSpec::tiny_for_tests();
    let lib = spec.library(None);
    let data = spec.generate(&lib, &BenchConfig::quick());
    let only: Vec<_> = data.records.iter().filter(|r| r.uid == 1).copied().collect();
    let (selector, report) = Selector::train_with_report(
        &Learner::knn(),
        &only,
        lib.configs(spec.coll),
        &TrainOptions::default(),
    )
    .unwrap();
    assert!(report.degraded() > 0);
    let meta = ArtifactMeta::capture(spec.coll, "Open MPI 4.0.2", "Hydra", None, &TrainOptions::default());
    let path = tmp_path("partial.mpcp");
    selector.save(&path, &report, &meta).unwrap();
    let loaded = Selector::load(&path).unwrap();
    assert_eq!(loaded.report.coverage, report.coverage);
    assert_eq!(loaded.selector.model_count(), 1);
    let inst = Instance::new(spec.coll, 1024, 3, 2);
    let a = selector.select_with_fallback(&inst, &lib);
    let b = loaded.selector.select_with_fallback(&inst, &lib);
    assert_eq!(a.uid, b.uid);
    assert_eq!(a.predicted_us.map(f64::to_bits), b.predicted_us.map(f64::to_bits));
    std::fs::remove_file(&path).ok();
}

/// Save one artifact and return its bytes plus path for corruption.
fn saved_artifact() -> (PathBuf, Vec<u8>) {
    let spec = DatasetSpec::tiny_for_tests();
    let lib = spec.library(None);
    let data = spec.generate(&lib, &BenchConfig::quick());
    let (selector, report) = Selector::train_with_report(
        &Learner::linear(),
        &data.records,
        lib.configs(spec.coll),
        &TrainOptions::default(),
    )
    .unwrap();
    let meta = ArtifactMeta::capture(spec.coll, "Open MPI 4.0.2", "Hydra", None, &TrainOptions::default());
    let path = tmp_path("corrupt_target.mpcp");
    selector.save(&path, &report, &meta).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (path, bytes)
}

#[test]
fn corrupted_artifact_files_load_as_typed_errors() {
    let (path, bytes) = saved_artifact();

    // Truncation at a spread of boundaries (every byte is covered by
    // the ml-level proptests; here we prove the file path surfaces it).
    for cut in [0, 3, 8, 16, 24, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = Selector::load(&path).unwrap_err();
        match err {
            ArtifactError::Codec { ref error, .. } => assert!(
                matches!(
                    error,
                    CodecError::Truncated { .. }
                        | CodecError::BadMagic
                        | CodecError::Invalid { .. }
                ),
                "cut {cut}: {error:?}"
            ),
            other => panic!("cut {cut}: expected codec error, got {other:?}"),
        }
    }

    // Version bump → UnknownVersion with both versions reported.
    let mut v = bytes.clone();
    v[4..8].copy_from_slice(&(FORMAT_VERSION + 7).to_le_bytes());
    std::fs::write(&path, &v).unwrap();
    let err = Selector::load(&path).unwrap_err();
    assert!(
        matches!(
            err.codec(),
            Some(CodecError::UnknownVersion { found, supported })
                if *found == FORMAT_VERSION + 7 && *supported == FORMAT_VERSION
        ),
        "{err:?}"
    );

    // Payload flip → ChecksumMismatch.
    let mut c = bytes.clone();
    let last = c.len() - 1;
    c[last] ^= 0x40;
    std::fs::write(&path, &c).unwrap();
    let err = Selector::load(&path).unwrap_err();
    assert!(matches!(err.codec(), Some(CodecError::ChecksumMismatch { .. })), "{err:?}");

    // Magic smash → BadMagic.
    let mut m = bytes.clone();
    m[0] = b'X';
    std::fs::write(&path, &m).unwrap();
    let err = Selector::load(&path).unwrap_err();
    assert!(matches!(err.codec(), Some(CodecError::BadMagic)), "{err:?}");

    // Missing file → Io, with the path in the message.
    std::fs::remove_file(&path).unwrap();
    let err = Selector::load(&path).unwrap_err();
    assert!(matches!(err, ArtifactError::Io { .. }));
    assert!(format!("{err}").contains("corrupt_target.mpcp"));
}

#[test]
fn wrong_kind_frame_is_rejected() {
    // A model-kind frame is not a selector artifact: loading it must
    // be WrongKind, not a garbage decode.
    let model = Learner::linear().fit(&{
        let mut d = mpcp_ml::Dataset::new(4);
        for i in 0..10 {
            d.push(&[i as f64, 1.0, 2.0, 2.0], 1.0 + i as f64);
        }
        d
    });
    let bytes = mpcp_ml::persist::encode_framed(mpcp_ml::persist::KIND_MODEL, &model);
    let path = tmp_path("wrong_kind.mpcp");
    std::fs::write(&path, &bytes).unwrap();
    let err = Selector::load(&path).unwrap_err();
    assert!(matches!(err.codec(), Some(CodecError::WrongKind { .. })), "{err:?}");
    std::fs::remove_file(&path).ok();
}
