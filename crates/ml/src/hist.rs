//! Histogram-based (quantized) tree growing, LightGBM-style.
//!
//! Features are pre-binned **once per dataset** into at most
//! [`BinnedDataset::MAX_BINS`] buckets ([`BinnedDataset`]). Growing a
//! tree then works on gradient/hessian/count histograms per leaf:
//! finding a split scans `O(bins)` buckets instead of `O(n)` sorted
//! rows, and of the two children produced by a split only the *smaller*
//! one ever builds its histogram from rows — the sibling's is obtained
//! by subtracting the child from the parent (the classic
//! parent − sibling trick), halving histogram-construction work at
//! every level.
//!
//! When a feature has at most `max_bins` distinct values (always true
//! for the paper's grids: a handful of node counts, ppn values and
//! message sizes), every distinct value gets its own bin and the split
//! search is **exactly** equivalent to the exact-greedy search over
//! sorted columns in [`crate::tree`]: the same candidate boundaries are
//! scanned in the same order, producing identical gains and identical
//! training-row partitions. This equivalence is enforced by property
//! tests (`crates/ml/tests/hist_equivalence.rs`).

use rayon::prelude::*;

use crate::dataset::Dataset;
use crate::tree::{GradTree, Node, TreeParams, LEAF};

/// Hard upper bound on bins per feature (bin indices fit in a `u8`).
const MAX_BINS_LIMIT: usize = 256;

/// Row count × feature count below which per-node histogram
/// construction stays sequential (thread spawn would dominate).
const PAR_HIST_CUTOFF: usize = 1 << 16;

/// Rows per parallel chunk when a histogram build goes parallel.
const PAR_HIST_CHUNK: usize = 1 << 14;

/// A dataset quantized to per-feature bins, reusable across all trees
/// of a booster (binning happens once, not once per tree).
pub struct BinnedDataset {
    n: usize,
    nfeat: usize,
    /// Row-major bin codes: `codes[i * nfeat + f]` is the bin of row `i`
    /// for feature `f` — one cache line serves a whole row, so a single
    /// pass over rows can feed every feature's histogram at once.
    codes: Vec<u8>,
    /// Bins per feature (at least 1).
    nbins: Vec<u32>,
    /// Per feature: split threshold after each bin; `thresholds[f][b]`
    /// separates bin `b` (≤) from bin `b+1` (>). Length `nbins[f] - 1`.
    thresholds: Vec<Vec<f64>>,
    /// Targets, carried through for the boosting loop.
    targets: Vec<f64>,
}

impl BinnedDataset {
    /// Default bin budget per feature.
    pub const MAX_BINS: usize = 256;

    /// Quantize `data` into at most `max_bins` bins per feature
    /// (clamped to 256 so codes fit a byte). Bin boundaries fall on
    /// midpoints between adjacent distinct values; when a feature has
    /// ≤ `max_bins` distinct values each value gets its own bin and
    /// histogram splits reproduce exact-greedy splits bit-for-bit on
    /// gains.
    pub fn from_dataset(data: &Dataset, max_bins: usize) -> BinnedDataset {
        assert!(max_bins >= 2, "need at least two bins to ever split");
        let max_bins = max_bins.min(MAX_BINS_LIMIT);
        let n = data.len();
        let nfeat = data.nfeat();
        let per_feature: Vec<(Vec<u8>, Vec<f64>)> = (0..nfeat)
            .into_par_iter()
            .map(|f| bin_feature(data, f, max_bins))
            .collect();
        let mut codes = vec![0u8; n * nfeat];
        let mut nbins = Vec::with_capacity(nfeat);
        let mut thresholds = Vec::with_capacity(nfeat);
        for (f, (col_codes, col_thresholds)) in per_feature.into_iter().enumerate() {
            nbins.push(col_thresholds.len() as u32 + 1);
            for (i, c) in col_codes.into_iter().enumerate() {
                codes[i * nfeat + f] = c;
            }
            thresholds.push(col_thresholds);
        }
        BinnedDataset { n, nfeat, codes, nbins, thresholds, targets: data.targets().to_vec() }
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the dataset has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Features per row.
    #[inline]
    pub fn nfeat(&self) -> usize {
        self.nfeat
    }

    /// Targets of the underlying dataset.
    #[inline]
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// Bins of feature `f` (diagnostics).
    pub fn bins_of(&self, f: usize) -> usize {
        self.nbins[f] as usize
    }

    #[inline]
    fn code(&self, i: usize, f: usize) -> u8 {
        self.codes[i * self.nfeat + f]
    }
}

/// Quantize one feature column: returns (bin codes per row, thresholds).
fn bin_feature(data: &Dataset, f: usize, max_bins: usize) -> (Vec<u8>, Vec<f64>) {
    let n = data.len();
    let mut sorted: Vec<f64> = (0..n).map(|i| data.at(i, f)).collect();
    sorted.sort_by(|a, b| a.total_cmp(b));
    // Distinct values with multiplicities.
    let mut uniques: Vec<(f64, usize)> = Vec::new();
    for &v in &sorted {
        match uniques.last_mut() {
            Some((u, c)) if *u == v => *c += 1,
            _ => uniques.push((v, 1)),
        }
    }
    let mut thresholds = Vec::new();
    if uniques.len() <= max_bins {
        // One bin per distinct value: exact-equivalent quantization.
        for w in uniques.windows(2) {
            thresholds.push(0.5 * (w[0].0 + w[1].0));
        }
    } else {
        // Greedy quantile binning: close a bin once it holds ≥ n/max_bins
        // rows, keeping boundaries on midpoints of adjacent distincts.
        let target = n.div_ceil(max_bins);
        let mut acc = 0usize;
        for (k, &(v, c)) in uniques.iter().enumerate() {
            acc += c;
            let last = k + 1 == uniques.len();
            if !last && acc >= target && thresholds.len() < max_bins - 1 {
                thresholds.push(0.5 * (v + uniques[k + 1].0));
                acc = 0;
            }
        }
    }
    // Assign codes: bin = #thresholds strictly below the value. Training
    // values never tie a threshold except when adjacent floats make the
    // midpoint collapse onto the lower value — strict `<` keeps that row
    // in the lower bin, consistent with `x <= thresh` routing at
    // prediction time.
    let codes = (0..n)
        .map(|i| {
            let x = data.at(i, f);
            thresholds.partition_point(|&t| t < x) as u8
        })
        .collect();
    (codes, thresholds)
}

/// Per-bin gradient statistics: gradient sum, hessian sum. Row counts
/// live in a separate `u32` array ([`Counts`]) — integer increments are
/// exact under parent − child subtraction and keep the scattered FP
/// adds of the build loop to two per feature instead of three.
const STAT: usize = 2;

/// One node's histogram: `STAT`-wide entries over the concatenated bins
/// of all features.
type Histogram = Vec<f64>;

/// One node's per-bin row counts (unweighted presence counts, mirroring
/// the exact scan's candidate rule: a boundary is only real if the bin
/// holds rows).
type Counts = Vec<u32>;

/// Reusable per-thread buffers for [`fit_hist`]. A 200-round booster
/// calls `fit_hist` once per round; without this, every call would
/// re-allocate (and re-zero) the row partition, the partition scratch,
/// and every histogram/count buffer.
#[derive(Default)]
struct Workspace {
    rows: Vec<u32>,
    scratch: Vec<u32>,
    pool: Vec<(Histogram, Counts)>,
    /// Histogram length the pooled buffers were sized for; a different
    /// dataset/bin layout invalidates the pool.
    hist_len: usize,
}

thread_local! {
    static WORKSPACE: std::cell::RefCell<Workspace> =
        std::cell::RefCell::new(Workspace::default());
}

struct HistLayout {
    /// Per-feature offset (in bins) into the concatenated histogram.
    offset: Vec<usize>,
    /// Total bins across features.
    total_bins: usize,
}

impl HistLayout {
    fn new(binned: &BinnedDataset) -> HistLayout {
        let mut offset = Vec::with_capacity(binned.nfeat);
        let mut total = 0usize;
        for f in 0..binned.nfeat {
            offset.push(total);
            total += binned.nbins[f] as usize;
        }
        HistLayout { offset, total_bins: total }
    }
}

/// Best split candidate for one node.
#[derive(Clone, Copy)]
struct HistSplit {
    gain: f64,
    feat: u32,
    bin: u32,
    thresh: f64,
}

/// Grow one tree over gradient statistics using leaf histograms.
///
/// Semantics match [`GradTree::fit`] (level-wise growth, same gain
/// formula, same candidate ordering and tie-breaking); only the split
/// *thresholds* may differ numerically when a candidate boundary abuts
/// a bin that is empty within the node — the induced training-row
/// partition is identical either way.
///
/// Returns the tree plus each row's leaf node id (`u32::MAX` for rows
/// excluded by a zero sample weight), so boosting can update scores —
/// or multiplicative response caches, via per-leaf factors — without
/// re-traversing the tree.
pub fn fit_hist(
    binned: &BinnedDataset,
    g: &[f64],
    h: &[f64],
    params: &TreeParams,
    features: &[usize],
    sample_weight: Option<&[u32]>,
) -> (GradTree, Vec<u32>) {
    let n = binned.len();
    assert_eq!(g.len(), n);
    assert_eq!(h.len(), n);
    let layout = HistLayout::new(binned);

    // In the weighted case, fold the weights into an interleaved (g·w,
    // h·w) array once so the histogram builds carry no weight branch in
    // their inner loop. Unweighted fits read `g`/`h` directly — no
    // extra O(n) packing pass per round.
    let packed: Option<Vec<f64>> = sample_weight.map(|w| {
        let mut gh = Vec::with_capacity(2 * n);
        for i in 0..n {
            let wi = w[i] as f64;
            gh.push(g[i] * wi);
            gh.push(h[i] * wi);
        }
        gh
    });

    // One entry per active node at the current level:
    // (node id, row range start, row range len, totals, histogram).
    struct Active {
        nid: u32,
        start: usize,
        len: usize,
        totals: (f64, f64),
        hist: Histogram,
        counts: Counts,
    }

    WORKSPACE.with(|cell| {
    let ws = &mut *cell.borrow_mut();
    let hist_len = STAT * layout.total_bins;
    if ws.hist_len != hist_len {
        ws.pool.clear();
        ws.hist_len = hist_len;
    }
    // Buffers persist across calls: `pool` holds histogram/count pairs
    // (a settling node's buffers are reused by later children and later
    // rounds), and `rows`/`scratch` keep their capacity.
    let Workspace { rows, scratch, pool, .. } = ws;

    // Active rows, partitioned into contiguous per-node segments.
    rows.clear();
    match sample_weight {
        None => rows.extend(0..n as u32),
        Some(w) => rows.extend((0..n as u32).filter(|&i| w[i as usize] > 0)),
    }
    let mut row_leaf = vec![LEAF; n];

    // Scratch buffer for the stable partition (right-block staging).
    if scratch.len() < rows.len() {
        scratch.resize(rows.len(), 0);
    }
    // Flattened histogram/count offsets per searched feature.
    let offs: Vec<usize> = features.iter().map(|&f| STAT * layout.offset[f]).collect();
    let coffs: Vec<usize> = features.iter().map(|&f| layout.offset[f]).collect();

    // One dispatch on the weight case; every histogram build below goes
    // through this closure with a branch-free row loader.
    let build = |rows: &[u32], hist: &mut [f64], counts: &mut [u32]| {
        let t = mpcp_obs::maybe_now();
        match &packed {
            None => build_histogram(
                binned,
                rows,
                |i| (g[i], h[i]),
                features,
                &offs,
                &coffs,
                hist,
                counts,
            ),
            Some(gh) => build_histogram(
                binned,
                rows,
                |i| (gh[2 * i], gh[2 * i + 1]),
                features,
                &offs,
                &coffs,
                hist,
                counts,
            ),
        }
        mpcp_obs::record_elapsed("gbt.hist.build_ns", t);
    };

    let (mut root_hist, mut root_counts) = pool
        .pop()
        .unwrap_or_else(|| (vec![0.0; hist_len], vec![0u32; layout.total_bins]));
    root_hist.fill(0.0);
    root_counts.fill(0);
    build(&rows[..], &mut root_hist, &mut root_counts);
    // Root totals fall out of the histogram: every row lands in exactly
    // one bin of the first searched feature, so no extra O(n) pass.
    let (g0, h0) = if let Some(&first) = features.first() {
        let mut t = (0.0, 0.0);
        for b in 0..binned.nbins[first] as usize {
            t.0 += root_hist[offs[0] + STAT * b];
            t.1 += root_hist[offs[0] + STAT * b + 1];
        }
        t
    } else {
        rows.iter().fold((0.0, 0.0), |acc, &iu| {
            let i = iu as usize;
            let (gi, hi) = match &packed {
                None => (g[i], h[i]),
                Some(gh) => (gh[2 * i], gh[2 * i + 1]),
            };
            (acc.0 + gi, acc.1 + hi)
        })
    };
    let mut nodes: Vec<Node> = vec![Node {
        feat: LEAF,
        thresh: 0.0,
        left: LEAF,
        right: LEAF,
        value: leaf_value(g0, h0, params.lambda),
    }];
    let mut level = vec![Active {
        nid: 0,
        start: 0,
        len: rows.len(),
        totals: (g0, h0),
        hist: root_hist,
        counts: root_counts,
    }];

    let settle = |a: &Active, rows: &[u32], row_leaf: &mut [u32]| {
        for &iu in &rows[a.start..a.start + a.len] {
            row_leaf[iu as usize] = a.nid;
        }
    };

    for depth in 0..params.max_depth + 1 {
        if level.is_empty() {
            break;
        }
        // Depth exhausted: everything left is a leaf.
        if depth == params.max_depth {
            for a in level.drain(..) {
                settle(&a, rows, &mut row_leaf);
                pool.push((a.hist, a.counts));
            }
            break;
        }
        let mut next: Vec<Active> = Vec::new();
        for a in std::mem::take(&mut level) {
            let t = mpcp_obs::maybe_now();
            let best = best_split(&a.hist, &a.counts, a.totals, binned, &layout, features, params);
            mpcp_obs::record_elapsed("gbt.hist.split_ns", t);
            let Some(b) = best else {
                settle(&a, rows, &mut row_leaf);
                pool.push((a.hist, a.counts));
                continue;
            };
            let mut a = a;
            // Materialize children.
            let li = nodes.len() as u32;
            let ri = li + 1;
            {
                let node = &mut nodes[a.nid as usize];
                node.feat = b.feat;
                node.thresh = b.thresh;
                node.left = li;
                node.right = ri;
            }
            // Stable partition of this node's rows: the left block
            // compacts in place, the right block stages in the scratch
            // buffer and is copied back behind it.
            let seg = &mut rows[a.start..a.start + a.len];
            let fcol = b.feat as usize;
            let (mut nl, mut nr) = (0usize, 0usize);
            // Branchless: both targets are written unconditionally and
            // only the matching cursor advances (`nl <= k` always, so
            // the in-place left write never clobbers an unread row).
            for k in 0..seg.len() {
                let iu = seg[k];
                let left = ((binned.code(iu as usize, fcol) as u32) <= b.bin) as usize;
                seg[nl] = iu;
                scratch[nr] = iu;
                nl += left;
                nr += 1 - left;
            }
            seg[nl..].copy_from_slice(&scratch[..nr]);

            // Left totals come from the histogram prefix scan; right by
            // subtraction from the parent.
            let (gl, hl) = prefix_totals(&a.hist, &layout, fcol, b.bin);
            let (gr, hr) = (a.totals.0 - gl, a.totals.1 - hl);
            nodes.push(Node { feat: LEAF, thresh: 0.0, left: LEAF, right: LEAF, value: leaf_value(gl, hl, params.lambda) });
            nodes.push(Node { feat: LEAF, thresh: 0.0, left: LEAF, right: LEAF, value: leaf_value(gr, hr, params.lambda) });

            // Histograms: build the smaller child from rows, derive the
            // sibling as parent − child (in the parent's buffer).
            let (small_range, small_is_left) = if nl <= a.len - nl {
                (a.start..a.start + nl, true)
            } else {
                (a.start + nl..a.start + a.len, false)
            };
            let (mut small_hist, mut small_counts) = pool
                .pop()
                .unwrap_or_else(|| (vec![0.0; hist_len], vec![0u32; layout.total_bins]));
            small_hist.fill(0.0);
            small_counts.fill(0);
            build(&rows[small_range], &mut small_hist, &mut small_counts);
            for (p, s) in a.hist.iter_mut().zip(&small_hist) {
                *p -= s;
            }
            for (p, s) in a.counts.iter_mut().zip(&small_counts) {
                *p -= s;
            }
            let (left, right) = if small_is_left {
                ((small_hist, small_counts), (a.hist, a.counts))
            } else {
                ((a.hist, a.counts), (small_hist, small_counts))
            };
            next.push(Active {
                nid: li,
                start: a.start,
                len: nl,
                totals: (gl, hl),
                hist: left.0,
                counts: left.1,
            });
            next.push(Active {
                nid: ri,
                start: a.start + nl,
                len: a.len - nl,
                totals: (gr, hr),
                hist: right.0,
                counts: right.1,
            });
        }
        level = next;
    }
    (GradTree { nodes }, row_leaf)
    }) // WORKSPACE.with
}

/// Accumulate the (g, h) histogram and row counts of one row set into
/// `hist`/`counts` (caller zeroes the buffers), chunk-parallel over
/// rows when the work justifies thread spawns.
#[allow(clippy::too_many_arguments)]
fn build_histogram<L: Fn(usize) -> (f64, f64) + Copy + Sync>(
    binned: &BinnedDataset,
    rows: &[u32],
    load: L,
    features: &[usize],
    offs: &[usize],
    coffs: &[usize],
    hist: &mut [f64],
    counts: &mut [u32],
) {
    let par = rows.len() * features.len() >= PAR_HIST_CUTOFF && rayon::current_num_threads() > 1;
    if par {
        // Each chunk fills a private (small) histogram; merge at the end.
        let nchunks = rows.len().div_ceil(PAR_HIST_CHUNK);
        let parts: Vec<(Vec<f64>, Vec<u32>)> = (0..nchunks)
            .into_par_iter()
            .map(|c| {
                let lo = c * PAR_HIST_CHUNK;
                let hi = (lo + PAR_HIST_CHUNK).min(rows.len());
                let mut part = vec![0.0; hist.len()];
                let mut part_counts = vec![0u32; counts.len()];
                accumulate_rows(
                    binned,
                    &rows[lo..hi],
                    load,
                    features,
                    offs,
                    coffs,
                    &mut part,
                    &mut part_counts,
                );
                (part, part_counts)
            })
            .collect();
        for (part, part_counts) in parts {
            for (a, b) in hist.iter_mut().zip(&part) {
                *a += b;
            }
            for (a, b) in counts.iter_mut().zip(&part_counts) {
                *a += b;
            }
        }
    } else {
        accumulate_rows(binned, rows, load, features, offs, coffs, hist, counts);
    }
}

/// One pass over `rows` feeding every feature's histogram: the row's
/// codes share a cache line and its (weight-folded) (g, h) pair is
/// loaded once, instead of once per feature.
///
/// Consecutive rows with **identical code rows** are collapsed into a
/// running (Σg, Σh, count) before touching any bin. Grid-style training
/// sets — the paper's benchmark grids replicate each (collective,
/// message size, nodes, ppn) cell once per repetition — produce long
/// runs of identical rows, and because identical rows always partition
/// to the same side of every split, the runs survive into child builds.
/// One run costs `nfeat` bin updates total instead of `nfeat` per row,
/// and the dependent-add chains that same-bin rows would otherwise form
/// on the FP units disappear. Distinct neighbors cost one extra
/// `nfeat`-byte compare, which is noise.
#[allow(clippy::too_many_arguments)]
#[inline]
fn accumulate_rows<L: Fn(usize) -> (f64, f64) + Copy>(
    binned: &BinnedDataset,
    rows: &[u32],
    load: L,
    features: &[usize],
    offs: &[usize],
    coffs: &[usize],
    out: &mut [f64],
    counts: &mut [u32],
) {
    let nfeat = binned.nfeat;
    let mut flush = |row: usize, gs: f64, hs: f64, cnt: u32| {
        let codes = &binned.codes[row * nfeat..row * nfeat + nfeat];
        for (k, &f) in features.iter().enumerate() {
            let c = codes[f] as usize;
            let b = offs[k] + STAT * c;
            out[b] += gs;
            out[b + 1] += hs;
            counts[coffs[k] + c] += cnt;
        }
    };
    let mut it = rows.iter();
    let Some(&first) = it.next() else { return };
    let mut run = first as usize;
    let (mut gs, mut hs) = load(run);
    let mut cnt = 1u32;
    for &iu in it {
        let i = iu as usize;
        let (gi, hi) = load(i);
        if binned.codes[i * nfeat..i * nfeat + nfeat]
            == binned.codes[run * nfeat..run * nfeat + nfeat]
        {
            gs += gi;
            hs += hi;
            cnt += 1;
        } else {
            flush(run, gs, hs, cnt);
            run = i;
            gs = gi;
            hs = hi;
            cnt = 1;
        }
    }
    flush(run, gs, hs, cnt);
}

/// Left-prefix (g, h) totals of feature `f` up to and including `bin`.
fn prefix_totals(hist: &Histogram, layout: &HistLayout, f: usize, bin: u32) -> (f64, f64) {
    let off = STAT * layout.offset[f];
    let (mut gl, mut hl) = (0.0, 0.0);
    for b in 0..=bin as usize {
        gl += hist[off + STAT * b];
        hl += hist[off + STAT * b + 1];
    }
    (gl, hl)
}

/// Scan every feature's bins for the best split of one node.
///
/// Candidate ordering matches the exact scan: features in `features`
/// order, boundaries in ascending value order, strict improvement
/// required — so gain ties resolve identically. A boundary after bin
/// `b` is a candidate only when bin `b` holds rows of this node and
/// some later bin does too (i.e. it separates adjacent present values,
/// exactly the exact scan's candidate set).
fn best_split(
    hist: &Histogram,
    counts: &Counts,
    totals: (f64, f64),
    binned: &BinnedDataset,
    layout: &HistLayout,
    features: &[usize],
    params: &TreeParams,
) -> Option<HistSplit> {
    let (gt, ht) = totals;
    let mut best: Option<HistSplit> = None;
    for &f in features {
        let off = STAT * layout.offset[f];
        let coff = layout.offset[f];
        let nb = binned.nbins[f] as usize;
        // Total row count of this node on this feature.
        let ct: u32 = (0..nb).map(|b| counts[coff + b]).sum();
        let (mut gl, mut hl, mut cl) = (0.0, 0.0, 0u32);
        for b in 0..nb.saturating_sub(1) {
            let e = off + STAT * b;
            let cb = counts[coff + b];
            gl += hist[e];
            hl += hist[e + 1];
            cl += cb;
            if cb == 0 || cl == 0 || ct <= cl {
                continue;
            }
            let (gr, hr) = (gt - gl, ht - hl);
            if hl < params.min_child_weight || hr < params.min_child_weight {
                continue;
            }
            let gain = split_gain(gl, hl, gr, hr, gt, ht, params.lambda) - params.gamma;
            if gain > 1e-12 && best.is_none_or(|s| gain > s.gain) {
                best = Some(HistSplit {
                    gain,
                    feat: f as u32,
                    bin: b as u32,
                    thresh: binned.thresholds[f][b],
                });
            }
        }
    }
    best
}

#[inline]
fn leaf_value(g: f64, h: f64, lambda: f64) -> f64 {
    if h + lambda <= 0.0 {
        0.0
    } else {
        -g / (h + lambda)
    }
}

#[inline]
fn split_gain(gl: f64, hl: f64, gr: f64, hr: f64, gt: f64, ht: f64, lambda: f64) -> f64 {
    0.5 * (gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - gt * gt / (ht + lambda))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squared_error_stats(y: &[f64]) -> (Vec<f64>, Vec<f64>) {
        (y.iter().map(|v| -v).collect(), vec![1.0; y.len()])
    }

    fn fit_ls(data: &Dataset, params: &TreeParams) -> (GradTree, Vec<u32>) {
        let (g, h) = squared_error_stats(data.targets());
        let binned = BinnedDataset::from_dataset(data, BinnedDataset::MAX_BINS);
        let feats: Vec<usize> = (0..data.nfeat()).collect();
        fit_hist(&binned, &g, &h, params, &feats, None)
    }

    #[test]
    fn splits_a_step_function_exactly() {
        let mut d = Dataset::new(1);
        for i in 0..20 {
            let x = i as f64;
            d.push(&[x], if x < 10.0 { 1.0 } else { 5.0 });
        }
        let params = TreeParams { lambda: 0.0, ..Default::default() };
        let (t, leaf) = fit_ls(&d, &params);
        assert!((t.predict(&[3.0]) - 1.0).abs() < 1e-9);
        assert!((t.predict(&[15.0]) - 5.0).abs() < 1e-9);
        // Leaf assignments from the fit agree with tree traversal.
        for (i, (x, _)) in d.iter().enumerate() {
            assert_eq!(t.nodes[leaf[i] as usize].value, t.predict(x));
        }
    }

    #[test]
    fn binning_collapses_to_quantiles_beyond_the_budget() {
        let mut d = Dataset::new(1);
        for i in 0..2000 {
            d.push(&[i as f64], 0.0);
        }
        let binned = BinnedDataset::from_dataset(&d, 64);
        assert!(binned.bins_of(0) <= 64);
        assert!(binned.bins_of(0) >= 32, "quantile binning degenerated");
    }

    #[test]
    fn one_bin_per_distinct_value_within_budget() {
        let mut d = Dataset::new(1);
        for i in 0..500 {
            d.push(&[(i % 7) as f64], 0.0);
        }
        let binned = BinnedDataset::from_dataset(&d, 256);
        assert_eq!(binned.bins_of(0), 7);
    }

    #[test]
    fn depth_zero_returns_mean() {
        let mut d = Dataset::new(1);
        for (x, y) in [(0.0, 2.0), (1.0, 4.0), (2.0, 6.0)] {
            d.push(&[x], y);
        }
        let params = TreeParams { max_depth: 0, lambda: 0.0, ..Default::default() };
        let (t, leaf) = fit_ls(&d, &params);
        assert!((t.predict(&[1.0]) - 4.0).abs() < 1e-9);
        assert_eq!(t.node_count(), 1);
        assert!(leaf.iter().all(|&l| l == 0));
    }

    #[test]
    fn sample_weights_zero_excludes_rows() {
        let mut d = Dataset::new(1);
        d.push(&[0.0], 0.0);
        d.push(&[1.0], 100.0);
        d.push(&[2.0], 100.0);
        let (g, h) = squared_error_stats(d.targets());
        let binned = BinnedDataset::from_dataset(&d, 256);
        let params = TreeParams { lambda: 0.0, min_child_weight: 0.5, ..Default::default() };
        let (t, leaf) = fit_hist(&binned, &g, &h, &params, &[0], Some(&[0, 1, 1]));
        assert!((t.predict(&[0.0]) - 100.0).abs() < 1e-9);
        // Excluded row keeps the sentinel leaf id.
        assert_eq!(leaf[0], LEAF);
        assert_ne!(leaf[1], LEAF);
    }

    #[test]
    fn min_child_weight_blocks_thin_splits() {
        let mut d = Dataset::new(1);
        d.push(&[0.0], 0.0);
        d.push(&[1.0], 100.0);
        let params = TreeParams { min_child_weight: 2.0, lambda: 0.0, ..Default::default() };
        let (t, _) = fit_ls(&d, &params);
        assert_eq!(t.node_count(), 1);
        assert!((t.predict(&[0.0]) - 50.0).abs() < 1e-9);
    }
}
