//! Random-forest regression — the learner the paper's earlier work
//! (PMBS'18) used and the present paper moved away from; kept as an
//! ablation baseline.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::error::{validate, FitError};
use crate::tree::{GradTree, SortedColumns, TreeParams};

/// Forest hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees.
    pub trees: usize,
    /// Maximum depth per tree (deeper than boosting stumps; forests rely
    /// on low-bias trees).
    pub max_depth: usize,
    /// Features sampled per tree (random-subspace variant); `0` = all.
    pub features_per_tree: usize,
    /// Bootstrap seed (forests are the only randomized learner here; a
    /// fixed seed keeps the whole pipeline reproducible).
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams { trees: 100, max_depth: 12, features_per_tree: 0, seed: 0x5EED }
    }
}

/// A fitted random forest.
#[derive(Debug)]
pub struct ForestModel {
    trees: Vec<GradTree>,
}

impl ForestModel {
    /// Fit `trees` bootstrap-sampled least-squares trees.
    ///
    /// Panics on degenerate datasets; see [`ForestModel::try_fit`].
    pub fn fit(data: &Dataset, params: &ForestParams) -> ForestModel {
        Self::try_fit(data, params).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible fit: empty or non-finite data is a [`FitError`].
    pub fn try_fit(data: &Dataset, params: &ForestParams) -> Result<ForestModel, FitError> {
        validate("RandomForest", data, false)?;
        let n = data.len();
        let d = data.nfeat();
        let sorted = SortedColumns::new(data);
        // Least squares as gradient stats: g = -y, h = 1 (leaf = mean).
        let g: Vec<f64> = data.targets().iter().map(|y| -y).collect();
        let h = vec![1.0; n];
        let tree_params = TreeParams {
            max_depth: params.max_depth,
            min_child_weight: 1.0,
            lambda: 0.0,
            gamma: 0.0,
        };
        let nfeat_per_tree = if params.features_per_tree == 0 {
            d
        } else {
            params.features_per_tree.min(d)
        };
        let mut rng = StdRng::seed_from_u64(params.seed);
        let trees = (0..params.trees)
            .map(|_| {
                // Bootstrap: multinomial counts via n draws.
                let mut weight = vec![0u32; n];
                for _ in 0..n {
                    weight[rng.random_range(0..n)] += 1;
                }
                // Random feature subspace.
                let mut feats: Vec<usize> = (0..d).collect();
                for i in (1..feats.len()).rev() {
                    let j = rng.random_range(0..=i);
                    feats.swap(i, j);
                }
                feats.truncate(nfeat_per_tree);
                GradTree::fit(data, &sorted, &g, &h, &tree_params, &feats, Some(&weight))
            })
            .collect();
        Ok(ForestModel { trees })
    }

    /// Mean prediction over all trees.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True if the forest has no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

impl crate::persist::Persist for ForestModel {
    fn encode(&self, w: &mut crate::persist::ByteWriter) {
        crate::persist::put_seq(w, &self.trees);
    }

    fn decode(
        r: &mut crate::persist::ByteReader<'_>,
    ) -> Result<ForestModel, crate::persist::CodecError> {
        let trees: Vec<GradTree> = crate::persist::get_seq(r)?;
        if trees.is_empty() {
            // `predict` divides by the tree count.
            return Err(crate::persist::CodecError::invalid("forest has no trees"));
        }
        Ok(ForestModel { trees })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mape;

    fn surface() -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..25 {
            for j in 0..8 {
                let (x0, x1) = (i as f64, j as f64);
                d.push(&[x0, x1], 10.0 + x0 * x1 + x0);
            }
        }
        d
    }

    #[test]
    fn forest_fits_interaction_surface() {
        let d = surface();
        let m = ForestModel::fit(&d, &ForestParams { trees: 50, ..Default::default() });
        let preds: Vec<f64> = (0..d.len()).map(|i| m.predict(d.row(i))).collect();
        assert!(mape(d.targets(), &preds) < 0.1);
        assert_eq!(m.len(), 50);
    }

    #[test]
    fn fixed_seed_is_deterministic() {
        let d = surface();
        let a = ForestModel::fit(&d, &ForestParams::default());
        let b = ForestModel::fit(&d, &ForestParams::default());
        for i in (0..d.len()).step_by(17) {
            assert_eq!(a.predict(d.row(i)), b.predict(d.row(i)));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let d = surface();
        let a = ForestModel::fit(&d, &ForestParams { trees: 10, seed: 1, ..Default::default() });
        let b = ForestModel::fit(&d, &ForestParams { trees: 10, seed: 2, ..Default::default() });
        let diff = (0..d.len()).any(|i| a.predict(d.row(i)) != b.predict(d.row(i)));
        assert!(diff);
    }

    #[test]
    fn feature_subspace_still_predicts() {
        let d = surface();
        let m = ForestModel::fit(&d, &ForestParams {
            trees: 30,
            features_per_tree: 1,
            ..Default::default()
        });
        let preds: Vec<f64> = (0..d.len()).map(|i| m.predict(d.row(i))).collect();
        // Single-feature trees cannot represent the x0·x1 interaction;
        // the fit is much coarser than the full forest but must stay
        // finite and in the right ballpark.
        assert!(preds.iter().all(|p| p.is_finite() && *p > 0.0));
        let full = ForestModel::fit(&d, &ForestParams { trees: 30, ..Default::default() });
        let full_preds: Vec<f64> = (0..d.len()).map(|i| full.predict(d.row(i))).collect();
        assert!(mape(d.targets(), &full_preds) < mape(d.targets(), &preds));
    }
}
