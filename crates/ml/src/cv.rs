//! Cross-validation utilities (used for the overfitting monitoring the
//! paper mentions, and by the test suite).

use crate::dataset::Dataset;
use crate::model::Learner;

/// Deterministic k-fold split: returns `(train, test)` index pairs.
/// Rows are assigned to folds round-robin after a fixed-stride shuffle,
/// so folds are reproducible without an RNG.
pub fn kfold_indices(n: usize, k: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold needs k >= 2");
    let k = k.min(n.max(2));
    // Stride permutation: visits all indices when stride ⊥ n.
    let stride = largest_coprime_stride(n);
    let order: Vec<usize> = (0..n).map(|i| (i * stride) % n.max(1)).collect();
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (pos, &idx) in order.iter().enumerate() {
        folds[pos % k].push(idx);
    }
    (0..k)
        .map(|f| {
            let test = folds[f].clone();
            let train: Vec<usize> = (0..k).filter(|&g| g != f).flat_map(|g| folds[g].clone()).collect();
            (train, test)
        })
        .collect()
}

fn largest_coprime_stride(n: usize) -> usize {
    if n <= 2 {
        return 1;
    }
    let mut s = n / 2 + 1;
    while gcd(s, n) != 1 {
        s += 1;
    }
    s
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Mean k-fold MAPE of a learner on a dataset.
pub fn cv_mape(data: &Dataset, learner: &Learner, k: usize) -> f64 {
    let folds = kfold_indices(data.len(), k);
    let mut total = 0.0;
    for (train_idx, test_idx) in &folds {
        let train = data.subset(train_idx);
        let test = data.subset(test_idx);
        let model = learner.fit(&train);
        let preds: Vec<f64> = (0..test.len()).map(|i| model.predict(test.row(i))).collect();
        total += crate::metrics::mape(test.targets(), &preds);
    }
    total / folds.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_partition_all_indices() {
        for n in [10usize, 37, 100] {
            for k in [2usize, 5] {
                let folds = kfold_indices(n, k);
                assert_eq!(folds.len(), k);
                let mut seen = vec![false; n];
                for (train, test) in &folds {
                    assert_eq!(train.len() + test.len(), n);
                    for &i in test {
                        assert!(!seen[i], "index {i} in two test folds");
                        seen[i] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn cv_detects_generalization() {
        // A smooth surface: KNN should generalize across folds.
        let mut d = Dataset::new(1);
        for i in 0..100 {
            d.push(&[i as f64], (i as f64 * 0.1).exp());
        }
        let err = cv_mape(&d, &Learner::knn(), 5);
        assert!(err < 0.5, "CV MAPE {err}");
    }
}
