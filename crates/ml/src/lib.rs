//! # mpcp-ml — from-scratch regression learners
//!
//! The paper fits one runtime-regression model per algorithm
//! configuration using three learners chosen for out-of-the-box
//! robustness: **XGBoost** (gradient-boosted trees with a Tweedie/Gamma
//! objective), **KNN** (K = 5, standardized inputs), and **GAM** (Gamma
//! family, log link, spline smoothers). This crate implements all three
//! from first principles — no external ML or linear-algebra
//! dependencies — plus the baselines the paper tried and rejected
//! (random forest, linear regression), so the rejection can be
//! reproduced too.
//!
//! * [`gbt`] — second-order (Newton) gradient boosting; squared-error,
//!   Gamma-deviance and Tweedie objectives with a log link, matching
//!   `xgboost`'s `reg:gamma` / `reg:tweedie`. Two split kernels: the
//!   exact-greedy sorted-column search ([`tree`]) and the default
//!   quantized-histogram search ([`hist`]) with parent − sibling
//!   subtraction; fitted ensembles are flattened to structure-of-arrays
//!   form ([`flat`]) for fast scalar and batched prediction.
//! * [`knn`] — z-scored features, kd-tree accelerated, mean aggregation.
//! * [`gam`] — penalized cubic B-spline additive model fitted by P-IRLS
//!   with the Gamma family and log link (the paper's `mgcv` call).
//! * [`forest`], [`linear`] — rejected-baseline ablations.
//! * [`linalg`], [`bspline`], [`kdtree`] — the supporting numerics.
//!
//! All learners implement the same [`Learner`] → [`Model`] flow and are
//! deliberately run with fixed default hyper-parameters (the paper's
//! "no tuning" protocol). Fitted models additionally implement
//! [`persist::Persist`], a hand-rolled checksummed little-endian codec
//! whose round trip is bit-identical (no serde — the workspace shim is
//! a no-op).

#![deny(unsafe_op_in_unsafe_fn)]

pub mod bspline;
pub mod cv;
pub mod dataset;
pub mod error;
pub mod flat;
pub mod forest;
pub mod gam;
pub mod gbt;
pub mod hist;
pub mod kdtree;
pub mod knn;
pub mod linalg;
pub mod linear;
pub mod metrics;
pub mod model;
pub mod persist;
pub mod scaling;
pub mod tree;

pub use dataset::Dataset;
pub use error::FitError;
pub use model::{Learner, Model};
pub use persist::{CodecError, Persist};
