//! Unified learner/model façade used by the selection framework.

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::error::FitError;
use crate::forest::{ForestModel, ForestParams};
use crate::gam::{GamModel, GamParams};
use crate::gbt::{GbtModel, GbtParams};
use crate::knn::{KnnModel, KnnParams};
use crate::linear::{LinearModel, LinearParams};

/// A learner configuration: everything needed to fit a [`Model`].
///
/// The three paper learners are [`Learner::knn`], [`Learner::gam`] and
/// [`Learner::xgboost`]; [`Learner::forest`] and [`Learner::linear`] are
/// the rejected baselines.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum Learner {
    /// K-nearest neighbours.
    Knn(KnnParams),
    /// Generalized additive model.
    Gam(GamParams),
    /// Gradient-boosted trees (XGBoost-style).
    Xgb(GbtParams),
    /// Random forest (baseline).
    Forest(ForestParams),
    /// Ridge linear regression (baseline).
    Linear(LinearParams),
}

impl Learner {
    /// The paper's KNN setup (K = 5, scaled inputs).
    pub fn knn() -> Learner {
        Learner::Knn(KnnParams::default())
    }

    /// The paper's GAM setup (Gamma family, log link).
    pub fn gam() -> Learner {
        Learner::Gam(GamParams::default())
    }

    /// The paper's XGBoost setup (Tweedie objective, 200 rounds).
    pub fn xgboost() -> Learner {
        Learner::Xgb(GbtParams::default())
    }

    /// Random-forest baseline.
    pub fn forest() -> Learner {
        Learner::Forest(ForestParams::default())
    }

    /// Linear baseline.
    pub fn linear() -> Learner {
        Learner::Linear(LinearParams::default())
    }

    /// The three learners evaluated in the paper, in Table IV order.
    pub fn paper_learners() -> Vec<(&'static str, Learner)> {
        vec![
            ("KNN", Learner::knn()),
            ("GAM", Learner::gam()),
            ("XGBoost", Learner::xgboost()),
        ]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Learner::Knn(_) => "KNN",
            Learner::Gam(_) => "GAM",
            Learner::Xgb(_) => "XGBoost",
            Learner::Forest(_) => "RandomForest",
            Learner::Linear(_) => "Linear",
        }
    }

    /// Fit on a dataset. Panics on degenerate inputs (empty dataset,
    /// non-finite values, non-positive targets for positive-target
    /// objectives); use [`Learner::try_fit`] on partial grids.
    pub fn fit(&self, data: &Dataset) -> Model {
        self.try_fit(data).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible fit: degenerate inputs are a typed [`FitError`] the
    /// selection layer maps to "no model for this configuration".
    pub fn try_fit(&self, data: &Dataset) -> Result<Model, FitError> {
        Ok(match self {
            Learner::Knn(p) => Model::Knn(KnnModel::try_fit(data, p)?),
            Learner::Gam(p) => Model::Gam(GamModel::try_fit(data, p)?),
            Learner::Xgb(p) => Model::Xgb(GbtModel::try_fit(data, p)?),
            Learner::Forest(p) => Model::Forest(ForestModel::try_fit(data, p)?),
            Learner::Linear(p) => Model::Linear(LinearModel::try_fit(data, p)?),
        })
    }
}

/// A fitted regression model.
#[derive(Debug)]
pub enum Model {
    /// Fitted KNN.
    Knn(KnnModel),
    /// Fitted GAM.
    Gam(GamModel),
    /// Fitted boosted ensemble.
    Xgb(GbtModel),
    /// Fitted forest.
    Forest(ForestModel),
    /// Fitted linear model.
    Linear(LinearModel),
}

impl Model {
    /// Predict the response for one feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        match self {
            Model::Knn(m) => m.predict(x),
            Model::Gam(m) => m.predict(x),
            Model::Xgb(m) => m.predict(x),
            Model::Forest(m) => m.predict(x),
            Model::Linear(m) => m.predict(x),
        }
    }

    /// Predict responses for a row-major block of feature vectors
    /// (`xs.len()` must be a multiple of `nfeat`).
    ///
    /// Boosted ensembles use their flattened-tree batch kernel; the
    /// other learners fall back to per-row scalar prediction, so the
    /// result always agrees elementwise with [`Model::predict`].
    pub fn predict_batch(&self, xs: &[f64], nfeat: usize) -> Vec<f64> {
        assert!(nfeat > 0, "nfeat must be positive");
        assert_eq!(xs.len() % nfeat, 0, "row-major shape mismatch");
        let mut out = vec![0.0; xs.len() / nfeat];
        self.predict_batch_into(xs, nfeat, &mut out);
        out
    }

    /// [`Model::predict_batch`] into a caller-owned buffer (overwritten,
    /// not accumulated), so a fused multi-model argmin can reuse one
    /// scratch buffer instead of materializing a prediction vector per
    /// model. `out.len()` must equal the row count.
    pub fn predict_batch_into(&self, xs: &[f64], nfeat: usize, out: &mut [f64]) {
        assert!(nfeat > 0, "nfeat must be positive");
        assert_eq!(xs.len(), out.len() * nfeat, "row-major shape mismatch");
        match self {
            Model::Xgb(m) => m.predict_batch_into(xs, nfeat, out),
            _ => {
                for (row, o) in xs.chunks_exact(nfeat).zip(out.iter_mut()) {
                    *o = self.predict(row);
                }
            }
        }
    }
}

/// Map a learner display name back to its `&'static str` canonical
/// form (persistence stores names as plain strings; the in-memory types
/// keep `&'static str`).
pub fn learner_name_static(name: &str) -> Option<&'static str> {
    match name {
        "KNN" => Some("KNN"),
        "GAM" => Some("GAM"),
        "XGBoost" => Some("XGBoost"),
        "RandomForest" => Some("RandomForest"),
        "Linear" => Some("Linear"),
        _ => None,
    }
}

impl crate::persist::Persist for Model {
    fn encode(&self, w: &mut crate::persist::ByteWriter) {
        match self {
            Model::Knn(m) => {
                w.put_u8(0);
                m.encode(w);
            }
            Model::Gam(m) => {
                w.put_u8(1);
                m.encode(w);
            }
            Model::Xgb(m) => {
                w.put_u8(2);
                m.encode(w);
            }
            Model::Forest(m) => {
                w.put_u8(3);
                m.encode(w);
            }
            Model::Linear(m) => {
                w.put_u8(4);
                m.encode(w);
            }
        }
    }

    fn decode(
        r: &mut crate::persist::ByteReader<'_>,
    ) -> Result<Model, crate::persist::CodecError> {
        Ok(match r.get_u8()? {
            0 => Model::Knn(crate::persist::Persist::decode(r)?),
            1 => Model::Gam(crate::persist::Persist::decode(r)?),
            2 => Model::Xgb(crate::persist::Persist::decode(r)?),
            3 => Model::Forest(crate::persist::Persist::decode(r)?),
            4 => Model::Linear(crate::persist::Persist::decode(r)?),
            b => return Err(crate::persist::CodecError::invalid(format!("model tag {b}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mape;

    fn runtime_like() -> Dataset {
        let mut d = Dataset::new(3);
        for mi in 0..12 {
            let m = (1u64 << mi) as f64;
            for p in [4.0f64, 8.0, 16.0, 32.0] {
                d.push(&[m.ln(), p, m / p], 3.0 + 0.05 * m / p + 2.0 * p.ln());
            }
        }
        d
    }

    #[test]
    fn every_learner_fits_and_predicts() {
        let d = runtime_like();
        for (name, learner) in [
            ("KNN", Learner::knn()),
            ("GAM", Learner::gam()),
            ("XGBoost", Learner::xgboost()),
            ("RandomForest", Learner::forest()),
            ("Linear", Learner::linear()),
        ] {
            assert_eq!(learner.name(), name);
            let model = learner.fit(&d);
            let preds: Vec<f64> = (0..d.len()).map(|i| model.predict(d.row(i))).collect();
            let err = mape(d.targets(), &preds);
            assert!(err < 0.6, "{name} trains terribly: MAPE {err}");
            assert!(preds.iter().all(|p| p.is_finite()), "{name} produced non-finite preds");
        }
    }

    #[test]
    fn paper_learners_are_the_table4_rows() {
        let names: Vec<&str> = Learner::paper_learners().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["KNN", "GAM", "XGBoost"]);
    }

    #[test]
    fn nonlinear_learners_beat_linear_on_crossover_surface() {
        // A crossover surface (who-wins flips with message size) is the
        // reason the paper rejected plain linear regression.
        let mut d = Dataset::new(1);
        for i in 0..60 {
            let x = i as f64;
            d.push(&[x], (x - 30.0).abs() + 1.0);
        }
        let lin = Learner::linear().fit(&d);
        let xgb = Learner::xgboost().fit(&d);
        let err = |m: &Model| {
            mape(
                d.targets(),
                &(0..d.len()).map(|i| m.predict(d.row(i))).collect::<Vec<_>>(),
            )
        };
        assert!(err(&xgb) < err(&lin) / 2.0);
    }
}
