//! Minimal dense linear algebra: column-major matrices and a Cholesky
//! solver — everything the GAM/linear fitters need, nothing more.

// Index-based loops are clearer for these numeric kernels.
#![allow(clippy::needless_range_loop)]

/// A dense column-major matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Mat {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Mat {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major nested-slice literal (test convenience).
    pub fn from_rows(rows: &[&[f64]]) -> Mat {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut m = Mat::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Row count.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Column `j` as a slice (column-major storage makes this free).
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutable column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// `self^T · self + penalty` (the normal-equations Gram matrix), with
    /// rows optionally weighted: computes `Xᵀ W X` where `W = diag(w)`.
    pub fn gram_weighted(&self, w: Option<&[f64]>) -> Mat {
        let (n, d) = (self.rows, self.cols);
        if let Some(w) = w {
            assert_eq!(w.len(), n);
        }
        let mut g = Mat::zeros(d, d);
        for j in 0..d {
            let cj = self.col(j);
            for k in j..d {
                let ck = self.col(k);
                let mut s = 0.0;
                match w {
                    Some(w) => {
                        for i in 0..n {
                            s += cj[i] * ck[i] * w[i];
                        }
                    }
                    None => {
                        for i in 0..n {
                            s += cj[i] * ck[i];
                        }
                    }
                }
                g[(j, k)] = s;
                g[(k, j)] = s;
            }
        }
        g
    }

    /// `Xᵀ W z` for the normal equations right-hand side.
    pub fn tmul_weighted(&self, z: &[f64], w: Option<&[f64]>) -> Vec<f64> {
        let (n, d) = (self.rows, self.cols);
        assert_eq!(z.len(), n);
        let mut out = vec![0.0; d];
        for j in 0..d {
            let cj = self.col(j);
            let mut s = 0.0;
            match w {
                Some(w) => {
                    for i in 0..n {
                        s += cj[i] * z[i] * w[i];
                    }
                }
                None => {
                    for i in 0..n {
                        s += cj[i] * z[i];
                    }
                }
            }
            out[j] = s;
        }
        out
    }

    /// `X · beta`.
    pub fn mul_vec(&self, beta: &[f64]) -> Vec<f64> {
        assert_eq!(beta.len(), self.cols);
        let mut out = vec![0.0; self.rows];
        for j in 0..self.cols {
            let c = self.col(j);
            let b = beta[j];
            if b != 0.0 {
                for i in 0..self.rows {
                    out[i] += c[i] * b;
                }
            }
        }
        out
    }

    /// Add `other` in place.
    pub fn add_assign(&mut self, other: &Mat) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// Add `v` to the diagonal (ridge jitter).
    pub fn add_diag(&mut self, v: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += v;
        }
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[j * self.rows + i]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[j * self.rows + i]
    }
}

/// Cholesky factorization of a symmetric positive-definite matrix;
/// returns `None` if the matrix is not (numerically) SPD.
pub struct Cholesky {
    l: Mat,
}

impl Cholesky {
    /// Factor `a = L·Lᵀ`.
    pub fn new(a: &Mat) -> Option<Cholesky> {
        let n = a.rows();
        assert_eq!(a.cols(), n, "Cholesky needs a square matrix");
        let mut l = Mat::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return None;
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        Some(Cholesky { l })
    }

    /// Solve `A·x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n);
        // Forward substitution: L·y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.l[(i, k)] * y[k];
            }
            y[i] /= self.l[(i, i)];
        }
        // Back substitution: Lᵀ·x = y.
        let mut x = y;
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                x[i] -= self.l[(k, i)] * x[k];
            }
            x[i] /= self.l[(i, i)];
        }
        x
    }
}

/// Solve the ridge-regularized SPD system `(A + jitter·I) x = b`,
/// escalating the jitter until the factorization succeeds. Panics only if
/// the system stays unsolvable at absurd regularization (non-finite
/// inputs).
pub fn solve_spd_with_jitter(a: &Mat, b: &[f64], base_jitter: f64) -> Vec<f64> {
    let mut jitter = base_jitter.max(0.0);
    for _ in 0..24 {
        let mut m = a.clone();
        if jitter > 0.0 {
            m.add_diag(jitter);
        }
        if let Some(ch) = Cholesky::new(&m) {
            let x = ch.solve(b);
            if x.iter().all(|v| v.is_finite()) {
                return x;
            }
        }
        jitter = if jitter == 0.0 { 1e-10 } else { jitter * 10.0 };
    }
    panic!("solve_spd_with_jitter: system unsolvable even with jitter {jitter}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_solves_known_system() {
        // A = [[4,2],[2,3]], b = [10, 9] → x = [2, 5/3... ] compute:
        // 4x+2y=10, 2x+3y=9 → x=1.5, y=2.
        let a = Mat::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let ch = Cholesky::new(&a).unwrap();
        let x = ch.solve(&[10.0, 9.0]);
        assert!((x[0] - 1.5).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigvals 3, -1
        assert!(Cholesky::new(&a).is_none());
    }

    #[test]
    fn jitter_recovers_singular_system() {
        let a = Mat::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let x = solve_spd_with_jitter(&a, &[2.0, 2.0], 1e-8);
        // Minimum-norm-ish solution: x0 + x1 ≈ 2.
        assert!((x[0] + x[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn gram_and_tmul() {
        let x = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = x.gram_weighted(None);
        assert!((g[(0, 0)] - 35.0).abs() < 1e-12);
        assert!((g[(0, 1)] - 44.0).abs() < 1e-12);
        assert!((g[(1, 1)] - 56.0).abs() < 1e-12);
        let v = x.tmul_weighted(&[1.0, 1.0, 1.0], None);
        assert_eq!(v, vec![9.0, 12.0]);
        let w = x.tmul_weighted(&[1.0, 1.0, 1.0], Some(&[1.0, 0.0, 1.0]));
        assert_eq!(w, vec![6.0, 8.0]);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let x = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(x.mul_vec(&[1.0, -1.0]), vec![-1.0, -1.0]);
    }

    #[test]
    fn weighted_gram() {
        let x = Mat::from_rows(&[&[1.0], &[2.0]]);
        let g = x.gram_weighted(Some(&[2.0, 3.0]));
        assert!((g[(0, 0)] - (2.0 + 12.0)).abs() < 1e-12);
    }

    #[test]
    fn solve_random_spd_roundtrip() {
        // Build SPD as MᵀM + I, check A·x(b) ≈ b.
        let m = Mat::from_rows(&[
            &[0.5, -1.2, 2.0],
            &[1.1, 0.3, -0.7],
            &[-0.4, 0.9, 1.5],
            &[2.2, -0.1, 0.6],
        ]);
        let mut a = m.gram_weighted(None);
        a.add_diag(1.0);
        let b = [1.0, 2.0, 3.0];
        let x = Cholesky::new(&a).unwrap().solve(&b);
        // Verify residual.
        for i in 0..3 {
            let mut s = 0.0;
            for j in 0..3 {
                s += a[(i, j)] * x[j];
            }
            assert!((s - b[i]).abs() < 1e-9);
        }
    }
}
