//! Flattened (structure-of-arrays) tree ensembles for batched
//! inference.
//!
//! [`crate::tree::GradTree`] stores nodes as a `Vec` of structs, which
//! is fine for growing but wasteful to traverse: every hop loads a
//! 40-byte node to use at most 16 bytes of it. [`FlatTrees`] re-packs an
//! ensemble into 16-byte traversal nodes (threshold + feature + left
//! child) plus a separate leaf-value array, all trees concatenated,
//! exploiting the builder invariant that a node's right child directly
//! follows its left child — so only the left index is stored and
//! `right = left + 1`.
//!
//! Leaves are encoded as **self-loops**: a leaf routes every row back
//! to itself (`feat = 0`, `thresh = +∞`, `left = self`). Together with
//! the stored per-tree depth this removes the am-I-at-a-leaf branch
//! from batched traversal entirely: stepping any cursor exactly
//! `depth` times is guaranteed to land (and stay) on its leaf, so
//! [`FlatTrees::predict_batch_into`] walks a block of rows in lockstep
//! with no data-dependent branches — the block's loads overlap instead
//! of serializing on one row's (unpredictable) branch pattern.
//!
//! Feature values must not be NaN: a NaN comparison would step a
//! parked cursor off its leaf. (The growers never produce NaN
//! thresholds, and the paper's feature pipeline is NaN-free.)

use crate::tree::{GradTree, LEAF};

/// Rows traversed in lockstep per block by the batched kernel. Big
/// enough to hide load latency behind independent work, small enough
/// that cursor state stays in registers.
const BLOCK: usize = 16;

/// One traversal node, packed to 16 bytes so a hop is a single
/// cache-friendly load (leaf values live in a separate array — they are
/// only read once per tree, at the end of the walk).
#[derive(Clone, Copy, Debug)]
struct Node {
    /// Split threshold (`x[feat] <= thresh` routes left); leaves store
    /// `+∞` so every comparison routes "left".
    thresh: f64,
    /// Split feature; leaves store 0 (self-loop encoding).
    feat: u32,
    /// Absolute index of the left child (right child is `left + 1`);
    /// leaves store their own index, so `left == self` identifies a leaf
    /// and traversal parks there.
    left: u32,
}

/// An ensemble of regression trees packed into parallel arrays.
#[derive(Clone, Debug, Default)]
pub struct FlatTrees {
    /// Traversal nodes for all trees, concatenated.
    nodes: Vec<Node>,
    /// Leaf value per node (already scaled by the caller's factor).
    value: Vec<f64>,
    /// Root node index of each tree.
    roots: Vec<u32>,
    /// Depth of each tree: traversal steps that guarantee leaf arrival.
    depth: Vec<u32>,
    /// Largest split-feature index across all nodes; lets
    /// [`FlatTrees::predict_batch_into`] validate feature accesses once
    /// per call instead of once per traversal step.
    max_feat: u32,
}

impl FlatTrees {
    /// Flatten an ensemble, scaling every leaf value by `scale`
    /// (boosters pass the learning rate so prediction is a plain sum).
    pub fn from_trees<'a>(trees: impl IntoIterator<Item = &'a GradTree>, scale: f64) -> FlatTrees {
        let mut flat = FlatTrees::default();
        let mut stack: Vec<(usize, u32)> = Vec::new();
        for tree in trees {
            let base = flat.nodes.len() as u32;
            flat.roots.push(base);
            for (i, node) in tree.nodes.iter().enumerate() {
                let leaf = node.left == LEAF;
                if !leaf {
                    // The growers allocate children adjacently and
                    // in-range; the packed layout (and the unchecked
                    // batch traversal) depend on it.
                    debug_assert_eq!(node.right, node.left + 1, "node {i} children not adjacent");
                    assert!((node.right as usize) < tree.nodes.len(), "node {i} child out of range");
                    flat.max_feat = flat.max_feat.max(node.feat);
                }
                flat.nodes.push(Node {
                    thresh: if leaf { f64::INFINITY } else { node.thresh },
                    feat: if leaf { 0 } else { node.feat },
                    left: if leaf { base + i as u32 } else { base + node.left },
                });
                flat.value.push(node.value * scale);
            }
            // Tree depth = the step count after which every cursor has
            // reached (and self-loops on) a leaf.
            let mut maxd = 0u32;
            stack.clear();
            stack.push((base as usize, 0));
            while let Some((i, d)) = stack.pop() {
                let l = flat.nodes[i].left as usize;
                if l == i {
                    maxd = maxd.max(d);
                } else {
                    stack.push((l, d + 1));
                    stack.push((l + 1, d + 1));
                }
            }
            flat.depth.push(maxd);
        }
        flat
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.roots.len()
    }

    /// Total node count across trees.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Sum of (scaled) leaf values over all trees for one row.
    #[inline]
    pub fn predict_one(&self, x: &[f64]) -> f64 {
        self.predict_one_from(x, 0.0)
    }

    /// Like [`FlatTrees::predict_one`] but accumulates onto `init`,
    /// using the same summation order as [`FlatTrees::predict_batch_into`]
    /// — so a scalar prediction seeded with the booster's base score is
    /// bitwise identical to the batched one.
    #[inline]
    pub fn predict_one_from(&self, x: &[f64], init: f64) -> f64 {
        let mut s = init;
        for &root in &self.roots {
            let mut i = root as usize;
            loop {
                let n = self.nodes[i];
                let l = n.left as usize;
                if l == i {
                    s += self.value[i];
                    break;
                }
                let go_left = x[n.feat as usize] <= n.thresh;
                i = l + usize::from(!go_left);
            }
        }
        s
    }

    /// Add each row's ensemble sum into `out` (`out[r] += Σ trees(x_r)`).
    ///
    /// `xs` is row-major with `nfeat` features per row; `out.len()` must
    /// equal the row count. Trees form the outer loop so each tree's
    /// arrays stay cache-resident while rows stream through; rows go
    /// through in blocks of [`BLOCK`] independent cursors stepped the
    /// tree's depth in lockstep — leaf self-loops make the extra steps
    /// of early-arriving rows free of branches, so the whole block runs
    /// without data-dependent control flow.
    pub fn predict_batch_into(&self, xs: &[f64], nfeat: usize, out: &mut [f64]) {
        assert!(nfeat > 0, "nfeat must be positive");
        assert_eq!(xs.len(), out.len() * nfeat, "row-major shape mismatch");
        assert!(
            self.nodes.is_empty() || (self.max_feat as usize) < nfeat,
            "model uses feature {} but rows have only {nfeat}",
            self.max_feat,
        );
        let rows = out.len();
        let full = rows - rows % BLOCK;
        for (t, &root) in self.roots.iter().enumerate() {
            let depth = self.depth[t];
            if depth == 0 {
                // Single-leaf tree (late boosting rounds often converge
                // to these): the whole block gets the same constant.
                let v = self.value[root as usize];
                for o in out.iter_mut() {
                    *o += v;
                }
                continue;
            }
            for r0 in (0..full).step_by(BLOCK) {
                let mut idx = [root as usize; BLOCK];
                for _ in 0..depth {
                    for (b, i) in idx.iter_mut().enumerate() {
                        // SAFETY: `*i` is `root` or a child index; both
                        // are < `nodes.len()` by construction (checked
                        // in `from_trees`). The feature index is ≤
                        // `max_feat` < `nfeat` (asserted on entry) and
                        // `r0 + b` < `full` ≤ `rows`, so the `xs` index
                        // is < `rows * nfeat` = `xs.len()` (asserted on
                        // entry). Eliding the per-step bounds checks
                        // matters: the kernel is load-throughput bound.
                        let (n, x) = unsafe {
                            let n = *self.nodes.get_unchecked(*i);
                            let x = *xs.get_unchecked((r0 + b) * nfeat + n.feat as usize);
                            (n, x)
                        };
                        let go_left = x <= n.thresh;
                        *i = n.left as usize + usize::from(!go_left);
                    }
                }
                for (b, &i) in idx.iter().enumerate() {
                    out[r0 + b] += self.value[i];
                }
            }
            // Tail rows: ordinary early-exit traversal (identical
            // arithmetic — one leaf value added per tree).
            for r in full..rows {
                let x = &xs[r * nfeat..(r + 1) * nfeat];
                let mut i = root as usize;
                loop {
                    let n = self.nodes[i];
                    let l = n.left as usize;
                    if l == i {
                        out[r] += self.value[i];
                        break;
                    }
                    let go_left = x[n.feat as usize] <= n.thresh;
                    i = l + usize::from(!go_left);
                }
            }
        }
    }
}

impl crate::persist::Persist for FlatTrees {
    fn encode(&self, w: &mut crate::persist::ByteWriter) {
        // `depth` and `max_feat` are derived state — recomputed on
        // decode rather than trusted from the wire, because the unsafe
        // batch kernel relies on them.
        w.put_len(self.nodes.len());
        for n in &self.nodes {
            w.put_f64(n.thresh);
            w.put_u32(n.feat);
            w.put_u32(n.left);
        }
        w.put_f64s(&self.value);
        w.put_u32s(&self.roots);
    }

    fn decode(
        r: &mut crate::persist::ByteReader<'_>,
    ) -> Result<FlatTrees, crate::persist::CodecError> {
        use crate::persist::CodecError;
        let n = r.get_len(16)?;
        if u32::try_from(n).is_err() {
            return Err(CodecError::invalid(format!("{n} flat nodes exceed u32 indexing")));
        }
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            let thresh = r.get_f64()?;
            let feat = r.get_u32()?;
            let left = r.get_u32()?;
            nodes.push(Node { thresh, feat, left });
        }
        let value = r.get_f64s()?;
        if value.len() != n {
            return Err(CodecError::invalid(format!(
                "flat ensemble has {n} node(s) but {} leaf value(s)",
                value.len()
            )));
        }
        let roots = r.get_u32s()?;
        // Roots must partition [0, n) into contiguous per-tree segments.
        if roots.is_empty() && n != 0 {
            return Err(CodecError::invalid("flat ensemble has nodes but no roots"));
        }
        if let Some(&first) = roots.first() {
            if first != 0 {
                return Err(CodecError::invalid("first flat tree does not start at node 0"));
            }
        }
        for t in 0..roots.len() {
            let start = roots[t] as usize;
            let end = roots.get(t + 1).map_or(n, |&e| e as usize);
            if start >= end || end > n {
                return Err(CodecError::invalid(format!(
                    "flat tree {t} spans [{start}, {end}) of {n} node(s)"
                )));
            }
            // Within a segment every node is either a self-loop leaf or
            // an internal node whose children (left, left+1) lie
            // strictly deeper in the same segment — this is exactly the
            // acyclicity/progress invariant `from_trees` establishes and
            // the `get_unchecked` traversal in `predict_batch_into`
            // depends on.
            for (i, node) in nodes.iter().enumerate().take(end).skip(start) {
                let l = node.left as usize;
                if l == i {
                    // The self-loop only parks cursors when the stored
                    // threshold compares ≥ every feature value; anything
                    // but +∞ would let the lockstep kernel walk off the
                    // leaf (and potentially out of bounds).
                    if node.thresh != f64::INFINITY {
                        return Err(CodecError::invalid(format!(
                            "flat leaf {i} threshold is not +inf"
                        )));
                    }
                    continue;
                }
                if l <= i || l + 1 >= end {
                    return Err(CodecError::invalid(format!(
                        "flat node {i} has children [{l}, {}] outside ({i}, {end})",
                        l + 1
                    )));
                }
            }
        }
        // Re-derive depth (per tree) and max_feat (over every node, so
        // the kernel's one-shot feature bound covers leaves too).
        let mut flat = FlatTrees {
            nodes,
            value,
            roots,
            depth: Vec::new(),
            max_feat: 0,
        };
        for node in &flat.nodes {
            flat.max_feat = flat.max_feat.max(node.feat);
        }
        let mut stack: Vec<(usize, u32)> = Vec::new();
        for t in 0..flat.roots.len() {
            let mut maxd = 0u32;
            stack.clear();
            stack.push((flat.roots[t] as usize, 0));
            while let Some((i, d)) = stack.pop() {
                let l = flat.nodes[i].left as usize;
                if l == i {
                    maxd = maxd.max(d);
                } else {
                    stack.push((l, d + 1));
                    stack.push((l + 1, d + 1));
                }
            }
            flat.depth.push(maxd);
        }
        Ok(flat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::tree::{GradTree, SortedColumns, TreeParams};

    fn grown_tree() -> (Dataset, GradTree) {
        let mut d = Dataset::new(2);
        for i in 0..50 {
            let (a, b) = ((i % 10) as f64, (i / 10) as f64);
            d.push(&[a, b], a * 3.0 + b * b);
        }
        let g: Vec<f64> = d.targets().iter().map(|y| -y).collect();
        let h = vec![1.0; d.len()];
        let sorted = SortedColumns::new(&d);
        let params = TreeParams { lambda: 0.0, ..Default::default() };
        let t = GradTree::fit(&d, &sorted, &g, &h, &params, &[0, 1], None);
        (d, t)
    }

    #[test]
    fn flat_matches_pointer_traversal() {
        let (d, t) = grown_tree();
        let flat = FlatTrees::from_trees([&t], 1.0);
        assert_eq!(flat.num_trees(), 1);
        assert_eq!(flat.num_nodes(), t.node_count());
        for (x, _) in d.iter() {
            assert_eq!(flat.predict_one(x), t.predict(x));
        }
    }

    #[test]
    fn scale_multiplies_leaf_values() {
        let (d, t) = grown_tree();
        let flat = FlatTrees::from_trees([&t], 0.25);
        for (x, _) in d.iter() {
            assert!((flat.predict_one(x) - 0.25 * t.predict(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn batch_accumulates_over_initialized_output() {
        let (d, t) = grown_tree();
        let flat = FlatTrees::from_trees([&t, &t], 1.0);
        let mut xs = Vec::new();
        for (x, _) in d.iter() {
            xs.extend_from_slice(x);
        }
        let mut out = vec![10.0; d.len()];
        flat.predict_batch_into(&xs, d.nfeat(), &mut out);
        for (i, (x, _)) in d.iter().enumerate() {
            assert!((out[i] - (10.0 + 2.0 * t.predict(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn batch_matches_scalar_on_blocked_and_tail_rows() {
        let (d, t) = grown_tree();
        let flat = FlatTrees::from_trees([&t], 1.0);
        // 50 rows = 3 full blocks of 16 + a tail of 2: both paths run.
        let mut xs = Vec::new();
        for (x, _) in d.iter() {
            xs.extend_from_slice(x);
        }
        let mut out = vec![0.0; d.len()];
        flat.predict_batch_into(&xs, d.nfeat(), &mut out);
        for (i, (x, _)) in d.iter().enumerate() {
            assert_eq!(out[i], flat.predict_one(x), "row {i}");
        }
    }

    #[test]
    fn depth_zero_stump_predicts_in_batch() {
        // A single-leaf tree exercises the depth-0 fast path.
        let mut d = Dataset::new(1);
        d.push(&[1.0], 3.0);
        let g = vec![-3.0];
        let h = vec![1.0];
        let sorted = SortedColumns::new(&d);
        let params = TreeParams { max_depth: 0, lambda: 0.0, ..Default::default() };
        let t = GradTree::fit(&d, &sorted, &g, &h, &params, &[0], None);
        let flat = FlatTrees::from_trees([&t], 1.0);
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mut out = vec![0.0; 20];
        flat.predict_batch_into(&xs, 1, &mut out);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, flat.predict_one(&xs[i..i + 1]));
        }
    }
}
